"""In-house dense two-phase primal simplex solver.

This backend exists for two reasons: it removes any dependence of the
headline VDD-HOPPING result on scipy's HiGHS binding, and it gives the test
suite an independent implementation to cross-validate against.  It is a
textbook tableau implementation:

* the model is first lowered to standard form ``min c'y  s.t.  A y = b,
  y >= 0, b >= 0`` (lower bounds shifted away, upper bounds turned into
  rows, free variables split, slack variables added);
* phase 1 minimises the sum of artificial variables to find a basic
  feasible solution;
* phase 2 minimises the real objective;
* pivoting uses Dantzig's rule with an automatic switch to Bland's rule
  after a run of degenerate pivots, which guarantees termination.

It is intentionally simple (dense matrices, no presolve, no revised
factorisation); the problems produced by this library have at most a few
thousand nonzeros, where the tableau method is perfectly adequate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import LinearProgram, LPSolution, LPStatus

__all__ = ["solve_with_simplex", "SimplexError"]

_TOL = 1e-9
_DEGENERATE_SWITCH = 50


class SimplexError(RuntimeError):
    """Internal simplex failure (should not happen on well-posed models)."""


@dataclass
class _StandardForm:
    """Standard-form data plus the recipe to map solutions back."""

    A: np.ndarray
    b: np.ndarray
    c: np.ndarray
    # mapping: original variable -> list of (column, scale, offset) where
    # x_orig = offset + sum(scale * y_col)
    recipe: list[list[tuple[int, float]]]
    offsets: np.ndarray


def _standardise(model: LinearProgram) -> _StandardForm:
    arrays = model.to_arrays()
    n = model.num_variables
    bounds = arrays["bounds"]

    # Build the variable substitution: x_j = offset_j + sum(scale * y_col).
    columns: list[dict[int, float]] = [dict() for _ in range(n)]  # y columns per x
    recipe: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    offsets = np.zeros(n)
    extra_upper_rows: list[tuple[int, float]] = []  # (y column, bound)
    next_col = 0
    for j, (lo, hi) in enumerate(bounds):
        lo_f = -np.inf if lo is None else float(lo)
        hi_f = np.inf if hi is None else float(hi)
        if np.isfinite(lo_f):
            offsets[j] = lo_f
            recipe[j].append((next_col, 1.0))
            if np.isfinite(hi_f):
                extra_upper_rows.append((next_col, hi_f - lo_f))
            next_col += 1
        elif np.isfinite(hi_f):
            # x = hi - y, y >= 0
            offsets[j] = hi_f
            recipe[j].append((next_col, -1.0))
            next_col += 1
        else:
            # free variable: x = y+ - y-
            recipe[j].append((next_col, 1.0))
            recipe[j].append((next_col + 1, -1.0))
            next_col += 2

    num_y = next_col

    def substitute(row: np.ndarray) -> tuple[np.ndarray, float]:
        """Rewrite a row over x as a row over y, returning (new_row, constant)."""
        new_row = np.zeros(num_y)
        constant = 0.0
        for j in range(n):
            coeff = row[j]
            # repro: allow[REP006] -- skip structurally-zero coefficients;
            # exact zero is the intent (a near-zero must stay in the row)
            if coeff == 0.0:
                continue
            constant += coeff * offsets[j]
            for col, scale in recipe[j]:
                new_row[col] += coeff * scale
        return new_row, constant

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    senses: list[str] = []

    A_ub, b_ub = arrays["A_ub"], arrays["b_ub"]
    for i in range(A_ub.shape[0]):
        new_row, const = substitute(A_ub[i])
        rows.append(new_row)
        rhs.append(float(b_ub[i]) - const)
        senses.append("<=")
    A_eq, b_eq = arrays["A_eq"], arrays["b_eq"]
    for i in range(A_eq.shape[0]):
        new_row, const = substitute(A_eq[i])
        rows.append(new_row)
        rhs.append(float(b_eq[i]) - const)
        senses.append("==")
    for col, bound in extra_upper_rows:
        row = np.zeros(num_y)
        row[col] = 1.0
        rows.append(row)
        rhs.append(float(bound))
        senses.append("<=")

    num_slacks = sum(1 for s in senses if s == "<=")
    m = len(rows)
    A = np.zeros((m, num_y + num_slacks))
    b = np.zeros(m)
    slack_idx = 0
    for i, (row, r, sense) in enumerate(zip(rows, rhs, senses)):
        A[i, :num_y] = row
        b[i] = r
        if sense == "<=":
            A[i, num_y + slack_idx] = 1.0
            slack_idx += 1

    # Objective over y (constant part handled by the caller).
    c_x = arrays["c"]
    c = np.zeros(num_y + num_slacks)
    obj_const = 0.0
    for j in range(n):
        coeff = c_x[j]
        # repro: allow[REP006] -- skip structurally-zero coefficients;
        # exact zero is the intent (a near-zero must stay in the objective)
        if coeff == 0.0:
            continue
        obj_const += coeff * offsets[j]
        for col, scale in recipe[j]:
            c[col] += coeff * scale

    # Make the RHS non-negative.
    for i in range(m):
        if b[i] < 0:
            A[i] *= -1.0
            b[i] *= -1.0

    sf = _StandardForm(A=A, b=b, c=c, recipe=recipe, offsets=offsets)
    sf.obj_const = obj_const  # type: ignore[attr-defined]
    sf.num_y = num_y  # type: ignore[attr-defined]
    return sf


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > 0:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_simplex(A: np.ndarray, b: np.ndarray, c: np.ndarray,
                 basis: np.ndarray, *, max_iter: int = 20000) -> tuple[str, np.ndarray, int]:
    """Primal simplex on ``min c x, Ax=b, x>=0`` starting from a basic feasible basis.

    ``basis`` holds the column index of the basic variable of each row and is
    updated in place.  Returns ``(status, x, iterations)``.
    """
    m, n = A.shape
    # Tableau layout: [A | b] with an extra objective row [c_reduced | -obj].
    tableau = np.zeros((m + 1, n + 1))
    tableau[:m, :n] = A
    tableau[:m, n] = b
    tableau[m, :n] = c
    # Canonicalise: the basic columns must form an identity (the caller's
    # basis is feasible but A is given in its original, un-pivoted form when
    # entering phase 2).  Pivot rows are chosen by partial pivoting among the
    # rows not yet assigned to a basic column, and the row<->basic-variable
    # association is rebuilt accordingly.  Finally the basic columns are
    # priced out of the objective row.
    basic_columns = [int(col) for col in basis]
    available_rows = list(range(m))
    new_basis = np.full(m, -1, dtype=int)
    for col in basic_columns:
        r = max(available_rows, key=lambda rr: abs(tableau[rr, col]))
        pivot_value = tableau[r, col]
        if abs(pivot_value) <= _TOL:
            raise SimplexError("singular basis passed to the simplex kernel")
        tableau[r] /= pivot_value
        for rr in range(m):
            if rr != r and abs(tableau[rr, col]) > 0:
                tableau[rr] -= tableau[rr, col] * tableau[r]
        new_basis[r] = col
        available_rows.remove(r)
    basis[:] = new_basis
    for r, col in enumerate(basis):
        if abs(tableau[m, col]) > 0:
            tableau[m] -= tableau[m, col] * tableau[r]

    degenerate_run = 0
    use_bland = False
    iterations = 0
    while iterations < max_iter:
        iterations += 1
        reduced = tableau[m, :n]
        if use_bland:
            candidates = np.where(reduced < -_TOL)[0]
            if candidates.size == 0:
                break
            col = int(candidates[0])
        else:
            col = int(np.argmin(reduced))
            if reduced[col] >= -_TOL:
                break
        column = tableau[:m, col]
        positive = column > _TOL
        if not np.any(positive):
            return LPStatus.UNBOUNDED, np.zeros(n), iterations
        ratios = np.full(m, np.inf)
        ratios[positive] = tableau[:m, n][positive] / column[positive]
        row = int(np.argmin(ratios))
        if use_bland:
            # Bland: among minimum-ratio rows pick the one whose basic
            # variable has the smallest index.
            min_ratio = ratios[row]
            tied = [r for r in range(m) if ratios[r] <= min_ratio + _TOL]
            row = min(tied, key=lambda r: basis[r])
        leaving_value = tableau[row, n]
        _pivot(tableau, basis, row, col)
        if leaving_value <= _TOL:
            degenerate_run += 1
            if degenerate_run >= _DEGENERATE_SWITCH:
                use_bland = True
        else:
            degenerate_run = 0

    if iterations >= max_iter:
        raise SimplexError("simplex did not converge within the iteration limit")

    x = np.zeros(n)
    for r, col in enumerate(basis):
        if col < n:
            x[col] = tableau[r, n]
    return LPStatus.OPTIMAL, x, iterations


def solve_with_simplex(model: LinearProgram) -> LPSolution:
    """Solve a pure LP with the in-house two-phase simplex."""
    if model.has_integer_variables():
        raise ValueError(
            "the simplex backend only handles continuous LPs; "
            "use repro.lp.branch_and_bound for integer models"
        )
    sf = _standardise(model)
    A, b, c = sf.A, sf.b, sf.c
    m, n = A.shape

    if m == 0:
        # No constraints at all: in standard form every variable is y >= 0
        # with no upper-bound row, so a negative objective coefficient means
        # the problem is unbounded; otherwise y = 0 is optimal.
        if np.any(c < -_TOL):
            return LPSolution(status=LPStatus.UNBOUNDED, objective=float("nan"),
                              values={}, x=None, backend="simplex")
        x_y = np.zeros(n)
        status = LPStatus.OPTIMAL
        total_iterations = 0
    else:
        # ---------------- phase 1 ----------------
        A1 = np.hstack([A, np.eye(m)])
        c1 = np.concatenate([np.zeros(n), np.ones(m)])
        basis = np.arange(n, n + m)
        status, x1, it1 = _run_simplex(A1, b, c1, basis)
        if status != LPStatus.OPTIMAL:
            return LPSolution(status=LPStatus.INFEASIBLE, objective=float("nan"),
                              values={}, x=None, backend="simplex")
        phase1_obj = float(np.dot(c1, np.concatenate([x1[:n], x1[n:]]) if x1.size == n + m else x1))
        phase1_obj = float(np.sum(x1[n:])) if x1.size == n + m else phase1_obj
        if phase1_obj > 1e-6:
            return LPSolution(status=LPStatus.INFEASIBLE, objective=float("nan"),
                              values={}, x=None, backend="simplex",
                              iterations=it1)

        # Drive artificial variables out of the basis where possible.
        keep_rows = list(range(m))
        for r in range(m):
            if basis[r] >= n:
                pivot_col = None
                for j in range(n):
                    if abs(A1[r, j]) > _TOL:
                        pivot_col = j
                        break
                # Rebuild a local tableau-free pivot: easier to just mark the
                # row; rows whose artificial stays basic at zero level are
                # redundant and can be dropped for phase 2.
                if pivot_col is None:
                    keep_rows.remove(r)

        # ---------------- phase 2 ----------------
        # Rebuild the phase-2 problem from the phase-1 basis.  Columns of the
        # artificial variables are forbidden by giving them a huge cost and a
        # fixed value of zero; simpler and numerically safe is to keep only
        # original columns and re-run from the feasible basis when that basis
        # contains no artificial, otherwise keep artificials with +inf cost.
        if all(basis[r] < n for r in keep_rows):
            A2 = A[keep_rows, :]
            b2 = b[keep_rows]
            basis2 = np.array([basis[r] for r in keep_rows])
            status, x_y, it2 = _run_simplex(A2, b2, c, basis2)
        else:
            big = 1e9 * (1.0 + float(np.max(np.abs(c))) if c.size else 1.0)
            A2 = A1[keep_rows, :]
            b2 = b[keep_rows]
            c2 = np.concatenate([c, np.full(m, big)])
            basis2 = np.array([basis[r] for r in keep_rows])
            status, x_full, it2 = _run_simplex(A2, b2, c2, basis2)
            x_y = x_full[:n]
        total_iterations = it1 + it2
        if status != LPStatus.OPTIMAL:
            return LPSolution(status=status, objective=float("nan"), values={},
                              x=None, backend="simplex", iterations=total_iterations)

    # Map standard-form variables back to the model's variables.
    num_model_vars = model.num_variables
    x_model = np.zeros(num_model_vars)
    for j in range(num_model_vars):
        value = sf.offsets[j]
        for col, scale in sf.recipe[j]:
            value += scale * x_y[col]
        x_model[j] = value

    arrays = model.to_arrays()
    raw_obj = float(np.dot(arrays["c"], x_model)) + arrays["offset"]
    objective = -raw_obj if arrays["maximize"] else raw_obj
    values = {var.name: float(x_model[var.index]) for var in model.variables}
    return LPSolution(status=LPStatus.OPTIMAL, objective=objective, values=values,
                      x=x_model, backend="simplex", iterations=total_iterations)
