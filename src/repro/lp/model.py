"""A small linear-programming modelling layer.

The paper's polynomial-time result for BI-CRIT under the VDD-HOPPING model
is "a linear program"; commercial modelling tools (AMPL, CPLEX, PuLP) are not
available offline, so this package provides its own modelling layer:

* :class:`Variable`, :class:`LinearExpression`, :class:`Constraint` and
  :class:`LinearProgram` let solvers state LPs/MILPs symbolically with
  operator overloading (``2 * x + y <= 3``);
* :func:`LinearProgram.to_arrays` lowers a model to the dense matrix form
  consumed by the backends;
* backends: :mod:`repro.lp.scipy_backend` (HiGHS via
  :func:`scipy.optimize.linprog` / :func:`scipy.optimize.milp`),
  :mod:`repro.lp.simplex` (an in-house dense two-phase simplex) and
  :mod:`repro.lp.branch_and_bound` (an in-house MILP solver on top of either
  LP backend).  The backends are cross-validated in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "Variable",
    "LinearExpression",
    "Constraint",
    "LinearProgram",
    "LPSolution",
    "LPStatus",
]


class LPStatus:
    """Status strings shared by all backends."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


class LinearExpression:
    """An affine expression ``sum_i coeff_i * x_i + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[int, float] | None = None, constant: float = 0.0):
        self.coeffs: dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)

    # -- construction helpers -------------------------------------------------
    @staticmethod
    def _as_expression(other) -> "LinearExpression":
        if isinstance(other, LinearExpression):
            return other
        if isinstance(other, Variable):
            return LinearExpression({other.index: 1.0})
        if isinstance(other, (int, float)):
            return LinearExpression({}, float(other))
        raise TypeError(f"cannot interpret {other!r} as a linear expression")

    def copy(self) -> "LinearExpression":
        return LinearExpression(dict(self.coeffs), self.constant)

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other) -> "LinearExpression":
        other = self._as_expression(other)
        out = self.copy()
        for idx, c in other.coeffs.items():
            out.coeffs[idx] = out.coeffs.get(idx, 0.0) + c
        out.constant += other.constant
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "LinearExpression":
        return self + (self._as_expression(other) * -1.0)

    def __rsub__(self, other) -> "LinearExpression":
        return self._as_expression(other) + (self * -1.0)

    def __mul__(self, scalar) -> "LinearExpression":
        if not isinstance(scalar, (int, float)):
            raise TypeError("linear expressions can only be scaled by numbers")
        out = LinearExpression(
            {idx: c * float(scalar) for idx, c in self.coeffs.items()},
            self.constant * float(scalar),
        )
        return out

    __rmul__ = __mul__

    def __truediv__(self, scalar) -> "LinearExpression":
        return self * (1.0 / float(scalar))

    def __neg__(self) -> "LinearExpression":
        return self * -1.0

    # -- comparisons build constraints ----------------------------------------
    def __le__(self, other) -> "Constraint":
        return Constraint(self - self._as_expression(other), "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - self._as_expression(other), ">=")

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - self._as_expression(other), "==")

    def __hash__(self):  # expressions are mutable -> identity hash
        return id(self)

    # -- evaluation -----------------------------------------------------------
    def value(self, x: Sequence[float]) -> float:
        return self.constant + sum(c * x[idx] for idx, c in self.coeffs.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = " + ".join(f"{c:g}*x{idx}" for idx, c in sorted(self.coeffs.items()))
        return f"LinearExpression({terms} + {self.constant:g})"


class Variable(LinearExpression):
    """A decision variable.  Also usable directly as an expression."""

    __slots__ = ("name", "index", "lower", "upper", "is_integer")

    def __init__(self, name: str, index: int, lower: float = 0.0,
                 upper: float | None = None, is_integer: bool = False):
        super().__init__({index: 1.0})
        self.name = name
        self.index = index
        self.lower = lower
        self.upper = upper
        self.is_integer = is_integer

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Variable({self.name!r})"

    def __hash__(self):
        return hash((self.name, self.index))


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` with an optional name."""

    expression: LinearExpression
    sense: str
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown constraint sense {self.sense!r}")

    def violation(self, x: Sequence[float]) -> float:
        """How much the constraint is violated at ``x`` (0 when satisfied)."""
        v = self.expression.value(x)
        if self.sense == "<=":
            return max(0.0, v)
        if self.sense == ">=":
            return max(0.0, -v)
        return abs(v)


class LinearProgram:
    """A linear (or mixed-integer linear) program under construction."""

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinearExpression = LinearExpression()
        self.sense: str = "min"

    # ------------------------------------------------------------------
    def add_variable(self, name: str, *, lower: float = 0.0,
                     upper: float | None = None,
                     integer: bool = False) -> Variable:
        """Create a new decision variable and register it with the model."""
        if upper is not None and upper < lower:
            raise ValueError(f"variable {name!r} has upper bound {upper} < lower bound {lower}")
        var = Variable(name, len(self.variables), lower=lower, upper=upper,
                       is_integer=integer)
        self.variables.append(var)
        return var

    def add_variables(self, names: Iterable[str], **kwargs) -> list[Variable]:
        return [self.add_variable(n, **kwargs) for n in names]

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint (build one with <=, >= or ==)"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expression: LinearExpression, sense: str = "min") -> None:
        if sense not in ("min", "max"):
            raise ValueError("objective sense must be 'min' or 'max'")
        self.objective = LinearExpression._as_expression(expression)
        self.sense = sense

    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def has_integer_variables(self) -> bool:
        return any(v.is_integer for v in self.variables)

    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray | list | float]:
        """Lower the model to dense arrays.

        Returns a dict with keys ``c`` (objective, always minimisation --
        maximisation is negated), ``offset`` (objective constant),
        ``A_ub, b_ub, A_eq, b_eq`` (possibly empty), ``bounds`` (list of
        ``(lower, upper)`` tuples) and ``integrality`` (0/1 array).
        """
        n = self.num_variables
        c = np.zeros(n)
        for idx, coeff in self.objective.coeffs.items():
            c[idx] = coeff
        offset = self.objective.constant
        if self.sense == "max":
            c = -c
            offset = -offset

        rows_ub: list[np.ndarray] = []
        rhs_ub: list[float] = []
        rows_eq: list[np.ndarray] = []
        rhs_eq: list[float] = []
        for con in self.constraints:
            row = np.zeros(n)
            for idx, coeff in con.expression.coeffs.items():
                row[idx] = coeff
            rhs = -con.expression.constant
            if con.sense == "<=":
                rows_ub.append(row)
                rhs_ub.append(rhs)
            elif con.sense == ">=":
                rows_ub.append(-row)
                rhs_ub.append(-rhs)
            else:
                rows_eq.append(row)
                rhs_eq.append(rhs)

        bounds = [(v.lower, v.upper) for v in self.variables]
        integrality = np.array([1 if v.is_integer else 0 for v in self.variables])
        return {
            "c": c,
            "offset": float(offset),
            "A_ub": np.array(rows_ub) if rows_ub else np.zeros((0, n)),
            "b_ub": np.array(rhs_ub) if rhs_ub else np.zeros(0),
            "A_eq": np.array(rows_eq) if rows_eq else np.zeros((0, n)),
            "b_eq": np.array(rhs_eq) if rhs_eq else np.zeros(0),
            "bounds": bounds,
            "integrality": integrality,
            "maximize": self.sense == "max",
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "MILP" if self.has_integer_variables() else "LP"
        return (
            f"LinearProgram({self.name!r}, {kind}, vars={self.num_variables}, "
            f"cons={self.num_constraints})"
        )


@dataclass
class LPSolution:
    """Solution returned by every backend."""

    status: str
    objective: float
    values: dict[str, float]
    x: np.ndarray | None = None
    backend: str = ""
    iterations: int | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status == LPStatus.OPTIMAL

    def __getitem__(self, variable: Variable | str) -> float:
        name = variable.name if isinstance(variable, Variable) else variable
        return self.values[name]
