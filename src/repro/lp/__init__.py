"""LP / MILP substrate: modelling layer plus interchangeable backends."""

from .branch_and_bound import BranchAndBoundStats, solve_with_branch_and_bound
from .model import (
    Constraint,
    LinearExpression,
    LinearProgram,
    LPSolution,
    LPStatus,
    Variable,
)
from .scipy_backend import solve_with_scipy
from .simplex import SimplexError, solve_with_simplex

__all__ = [
    "LinearProgram",
    "LinearExpression",
    "Variable",
    "Constraint",
    "LPSolution",
    "LPStatus",
    "solve_with_scipy",
    "solve_with_simplex",
    "solve_with_branch_and_bound",
    "SimplexError",
    "BranchAndBoundStats",
    "solve",
]


def solve(model: LinearProgram, backend: str = "scipy", **kwargs) -> LPSolution:
    """Solve a model with the named backend.

    ``backend`` is one of ``"scipy"`` (HiGHS LP/MILP), ``"simplex"``
    (in-house tableau simplex, pure LP only) or ``"branch_and_bound"``
    (in-house MILP on top of an LP backend).  Integer models passed to
    ``"scipy"`` are handled by HiGHS directly.
    """
    if backend == "scipy":
        return solve_with_scipy(model, **kwargs)
    if backend == "simplex":
        return solve_with_simplex(model, **kwargs)
    if backend == "branch_and_bound":
        return solve_with_branch_and_bound(model, **kwargs)
    raise ValueError(f"unknown LP backend {backend!r}")
