"""In-house branch-and-bound MILP solver.

Used (a) as an independent cross-check of scipy's HiGHS MILP on the
NP-complete DISCRETE / INCREMENTAL BI-CRIT formulations, and (b) to measure
the exponential growth of the search tree for the complexity experiments
(E5): the solver reports the number of explored nodes.

The algorithm is textbook best-first branch and bound on the LP relaxation:

* solve the LP relaxation of the node;
* if the relaxation is infeasible or its bound is worse than the incumbent,
  prune;
* if the relaxation is integral (within tolerance), update the incumbent;
* otherwise branch on the most fractional integer variable, adding floor /
  ceil bound constraints.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from .model import Constraint, LinearExpression, LinearProgram, LPSolution, LPStatus
from .scipy_backend import solve_with_scipy
from .simplex import solve_with_simplex

__all__ = ["solve_with_branch_and_bound", "BranchAndBoundStats"]

_INT_TOL = 1e-6


@dataclass
class BranchAndBoundStats:
    """Search statistics attached to the returned solution."""

    nodes_explored: int = 0
    nodes_pruned_bound: int = 0
    nodes_pruned_infeasible: int = 0
    incumbents_found: int = 0
    best_bound: float = math.inf


def _clone_with_bounds(model: LinearProgram, extra_bounds: dict[int, tuple[float, float]]) -> LinearProgram:
    """Copy a model, tightening variable bounds according to ``extra_bounds``."""
    clone = LinearProgram(model.name)
    for var in model.variables:
        lo, hi = var.lower, var.upper
        if var.index in extra_bounds:
            new_lo, new_hi = extra_bounds[var.index]
            lo = max(lo, new_lo) if lo is not None else new_lo
            hi = new_hi if hi is None else min(hi, new_hi)
        clone.add_variable(var.name, lower=lo, upper=hi, integer=False)
    for con in model.constraints:
        clone.add_constraint(
            Constraint(con.expression.copy(), con.sense, con.name)
        )
    clone.set_objective(model.objective.copy(), model.sense)
    return clone


def solve_with_branch_and_bound(model: LinearProgram, *, lp_backend: str = "scipy",
                                max_nodes: int = 100_000,
                                gap_tol: float = 1e-9) -> LPSolution:
    """Solve a MILP by branch and bound on its LP relaxation.

    ``lp_backend`` selects the relaxation solver: ``"scipy"`` (HiGHS) or
    ``"simplex"`` (the in-house tableau simplex).  The returned solution's
    ``iterations`` field holds the number of explored nodes and a
    :class:`BranchAndBoundStats` object is attached as ``solution.stats``.
    """
    if lp_backend == "scipy":
        solve_lp = solve_with_scipy
    elif lp_backend == "simplex":
        solve_lp = solve_with_simplex
    else:
        raise ValueError(f"unknown LP backend {lp_backend!r}")

    integer_indices = [v.index for v in model.variables if v.is_integer]
    maximize = model.sense == "max"
    sign = -1.0 if maximize else 1.0

    stats = BranchAndBoundStats()
    best_solution: LPSolution | None = None
    best_value = math.inf  # in minimisation convention (sign-adjusted)

    counter = itertools.count()
    # Node: (priority=parent bound, tiebreak, extra bounds dict)
    root: dict[int, tuple[float, float]] = {}
    heap: list[tuple[float, int, dict[int, tuple[float, float]]]] = [(-math.inf, next(counter), root)]

    while heap and stats.nodes_explored < max_nodes:
        parent_bound, _, extra_bounds = heapq.heappop(heap)
        if parent_bound >= best_value - gap_tol:
            stats.nodes_pruned_bound += 1
            continue
        stats.nodes_explored += 1
        node_model = _clone_with_bounds(model, extra_bounds)
        relaxation = solve_lp(node_model)
        if relaxation.status != LPStatus.OPTIMAL:
            stats.nodes_pruned_infeasible += 1
            continue
        node_value = sign * relaxation.objective
        if node_value >= best_value - gap_tol:
            stats.nodes_pruned_bound += 1
            continue
        # Find the most fractional integer variable.
        assert relaxation.x is not None
        fractional_index = None
        worst_fraction = _INT_TOL
        for idx in integer_indices:
            value = relaxation.x[idx]
            fraction = abs(value - round(value))
            if fraction > worst_fraction:
                worst_fraction = fraction
                fractional_index = idx
        if fractional_index is None:
            # Integral solution: new incumbent.
            stats.incumbents_found += 1
            best_value = node_value
            rounded = {
                name: (round(v) if any(model.variables[i].name == name for i in integer_indices
                                       if model.variables[i].name == name) else v)
                for name, v in relaxation.values.items()
            }
            best_solution = LPSolution(
                status=LPStatus.OPTIMAL,
                objective=relaxation.objective,
                values=relaxation.values,
                x=relaxation.x,
                backend=f"branch_and_bound[{lp_backend}]",
            )
            continue
        value = relaxation.x[fractional_index]
        floor_v, ceil_v = math.floor(value), math.ceil(value)
        var = model.variables[fractional_index]
        lo = var.lower if var.lower is not None else -math.inf
        hi = var.upper if var.upper is not None else math.inf
        down = dict(extra_bounds)
        down[fractional_index] = (
            max(lo, extra_bounds.get(fractional_index, (lo, hi))[0]),
            min(float(floor_v), extra_bounds.get(fractional_index, (lo, hi))[1]),
        )
        up = dict(extra_bounds)
        up[fractional_index] = (
            max(float(ceil_v), extra_bounds.get(fractional_index, (lo, hi))[0]),
            min(hi, extra_bounds.get(fractional_index, (lo, hi))[1]),
        )
        for child in (down, up):
            lo_c, hi_c = child[fractional_index]
            if lo_c <= hi_c + _INT_TOL:
                heapq.heappush(heap, (node_value, next(counter), child))

    if best_solution is None:
        result = LPSolution(status=LPStatus.INFEASIBLE, objective=float("nan"),
                            values={}, x=None,
                            backend=f"branch_and_bound[{lp_backend}]")
    else:
        result = best_solution
    result.iterations = stats.nodes_explored
    result.stats = stats  # type: ignore[attr-defined]
    return result
