"""LP/MILP backend based on scipy's HiGHS solvers.

This is the primary backend: :func:`scipy.optimize.linprog` (HiGHS dual
simplex / interior point) for pure LPs and :func:`scipy.optimize.milp`
(HiGHS branch and cut) for models with integer variables.  The in-house
backends in :mod:`repro.lp.simplex` and :mod:`repro.lp.branch_and_bound`
exist both as a fallback and as an independent cross-check.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize as sciopt
from scipy import sparse

from .model import LinearProgram, LPSolution, LPStatus

__all__ = ["solve_with_scipy"]


def _bounds_for_linprog(bounds):
    return [(lo, hi) for lo, hi in bounds]


def solve_with_scipy(model: LinearProgram, *, method: str = "highs") -> LPSolution:
    """Solve a :class:`LinearProgram` with scipy (HiGHS).

    Mixed-integer models are routed to :func:`scipy.optimize.milp`; pure LPs
    go through :func:`scipy.optimize.linprog`.
    """
    arrays = model.to_arrays()
    c = arrays["c"]
    offset = arrays["offset"]
    maximize = arrays["maximize"]
    n = model.num_variables

    if model.has_integer_variables():
        constraints = []
        if arrays["A_ub"].shape[0]:
            constraints.append(
                sciopt.LinearConstraint(arrays["A_ub"], -np.inf, arrays["b_ub"])
            )
        if arrays["A_eq"].shape[0]:
            constraints.append(
                sciopt.LinearConstraint(arrays["A_eq"], arrays["b_eq"], arrays["b_eq"])
            )
        lower = np.array([lo for lo, _ in arrays["bounds"]], dtype=float)
        upper = np.array(
            [np.inf if hi is None else hi for _, hi in arrays["bounds"]], dtype=float
        )
        res = sciopt.milp(
            c=c,
            constraints=constraints,
            bounds=sciopt.Bounds(lower, upper),
            integrality=arrays["integrality"],
        )
        if res.status == 0 and res.x is not None:
            status = LPStatus.OPTIMAL
        elif res.status == 2:
            status = LPStatus.INFEASIBLE
        elif res.status == 3:
            status = LPStatus.UNBOUNDED
        else:
            status = LPStatus.ERROR
        x = res.x if res.x is not None else None
    else:
        res = sciopt.linprog(
            c=c,
            A_ub=arrays["A_ub"] if arrays["A_ub"].shape[0] else None,
            b_ub=arrays["b_ub"] if arrays["A_ub"].shape[0] else None,
            A_eq=arrays["A_eq"] if arrays["A_eq"].shape[0] else None,
            b_eq=arrays["b_eq"] if arrays["A_eq"].shape[0] else None,
            bounds=_bounds_for_linprog(arrays["bounds"]),
            method=method,
        )
        if res.status == 0:
            status = LPStatus.OPTIMAL
        elif res.status == 2:
            status = LPStatus.INFEASIBLE
        elif res.status == 3:
            status = LPStatus.UNBOUNDED
        else:
            status = LPStatus.ERROR
        x = res.x if res.x is not None else None

    if x is None:
        return LPSolution(status=status, objective=float("nan"), values={},
                          x=None, backend="scipy")

    raw_obj = float(np.dot(c, x)) + offset
    objective = -raw_obj if maximize else raw_obj
    values = {var.name: float(x[var.index]) for var in model.variables}
    return LPSolution(status=status, objective=objective, values=values,
                      x=np.asarray(x, dtype=float), backend="scipy")
