"""Serialisation of task graphs (JSON and Graphviz DOT).

The experiment harness stores generated instances as JSON so that a
benchmark run can be replayed exactly; DOT export is provided for visual
inspection of small instances.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .taskgraph import TaskGraph

__all__ = [
    "taskgraph_to_dict",
    "taskgraph_from_dict",
    "save_json",
    "load_json",
    "to_dot",
]

_FORMAT_VERSION = 1


def taskgraph_to_dict(graph: TaskGraph) -> dict[str, Any]:
    """JSON-serialisable representation of a task graph."""
    return {
        "format_version": _FORMAT_VERSION,
        "tasks": [
            {"id": str(t), "weight": graph.weight(t)} for t in graph.topological_order()
        ],
        "edges": [[str(u), str(v)] for u, v in sorted(map(lambda e: (str(e[0]), str(e[1])), graph.edges()))],
    }


def taskgraph_from_dict(data: dict[str, Any]) -> TaskGraph:
    """Inverse of :func:`taskgraph_to_dict`."""
    version = data.get("format_version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported task-graph format version {version}")
    weights = {entry["id"]: float(entry["weight"]) for entry in data["tasks"]}
    edges = [(u, v) for u, v in data["edges"]]
    return TaskGraph(weights, edges)


def save_json(graph: TaskGraph, path: str | Path) -> None:
    """Write a task graph to a JSON file."""
    path = Path(path)
    # repro: allow[REP002] -- pretty human-readable file, not a cache key
    path.write_text(json.dumps(taskgraph_to_dict(graph), indent=2, sort_keys=True))


def load_json(path: str | Path) -> TaskGraph:
    """Read a task graph from a JSON file written by :func:`save_json`."""
    data = json.loads(Path(path).read_text())
    return taskgraph_from_dict(data)


def to_dot(graph: TaskGraph, *, name: str = "taskgraph") -> str:
    """Graphviz DOT description of the graph (weights become node labels)."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for t in graph.topological_order():
        label = f"{t}\\nw={graph.weight(t):g}"
        lines.append(f'  "{t}" [label="{label}"];')
    for u, v in graph.edges():
        lines.append(f'  "{u}" -> "{v}";')
    lines.append("}")
    return "\n".join(lines)
