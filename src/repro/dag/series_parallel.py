"""Series-parallel task graphs: construction, recognition and decomposition.

The paper's closed-form results for the BI-CRIT CONTINUOUS problem apply to
"special execution graph structures (trees, series-parallel graphs)".  This
module defines the series-parallel (SP) decomposition tree used by the
closed-form solver in :mod:`repro.continuous.closed_form`:

* :class:`SPLeaf` -- a single task,
* :class:`SPSeries` -- sequential composition (every sink of the left part
  precedes every source of the right part),
* :class:`SPParallel` -- parallel composition (disjoint union, the branches
  run concurrently on disjoint processor sets).

The composition here is on *tasks* (node-weighted SP graphs), matching the
paper's model where weights sit on tasks, not edges.  A fork with source
``T0`` and children ``T1..Tn`` is ``Series(Leaf(T0), Parallel(T1, ..., Tn))``
and a fork-join adds a trailing ``Leaf(sink)`` to the series.

:func:`decompose` recognises whether a :class:`TaskGraph` is series-parallel
in this sense and returns its decomposition tree; :func:`is_series_parallel`
is the boolean convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import networkx as nx

from .taskgraph import TaskGraph, TaskId

__all__ = [
    "SPNode",
    "SPLeaf",
    "SPSeries",
    "SPParallel",
    "NotSeriesParallelError",
    "sp_tree_to_taskgraph",
    "decompose",
    "is_series_parallel",
    "sp_leaves",
    "sp_depth",
]


class NotSeriesParallelError(ValueError):
    """Raised when a task graph is not series-parallel."""


@dataclass(frozen=True)
class SPLeaf:
    """Decomposition-tree leaf: a single task."""

    task_id: TaskId
    weight: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("task weight must be non-negative")


@dataclass(frozen=True)
class SPSeries:
    """Sequential composition of two or more SP sub-structures."""

    children: tuple["SPNode", ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("a series composition needs at least two children")


@dataclass(frozen=True)
class SPParallel:
    """Parallel composition of two or more SP sub-structures."""

    children: tuple["SPNode", ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("a parallel composition needs at least two children")


SPNode = SPLeaf | SPSeries | SPParallel


# ----------------------------------------------------------------------
# SP tree -> TaskGraph
# ----------------------------------------------------------------------
def sp_tree_to_taskgraph(tree: SPNode) -> TaskGraph:
    """Materialise a decomposition tree into a :class:`TaskGraph`."""
    weights: dict[TaskId, float] = {}
    edges: list[tuple[TaskId, TaskId]] = []

    def build(node: SPNode) -> tuple[list[TaskId], list[TaskId]]:
        """Return (sources, sinks) of the materialised subgraph."""
        if isinstance(node, SPLeaf):
            if node.task_id in weights:
                raise ValueError(f"duplicate task id {node.task_id!r} in SP tree")
            weights[node.task_id] = float(node.weight)
            return [node.task_id], [node.task_id]
        if isinstance(node, SPSeries):
            first_sources: list[TaskId] | None = None
            prev_sinks: list[TaskId] | None = None
            for child in node.children:
                c_sources, c_sinks = build(child)
                if prev_sinks is not None:
                    edges.extend((u, v) for u in prev_sinks for v in c_sources)
                if first_sources is None:
                    first_sources = c_sources
                prev_sinks = c_sinks
            assert first_sources is not None and prev_sinks is not None
            return first_sources, prev_sinks
        if isinstance(node, SPParallel):
            sources: list[TaskId] = []
            sinks: list[TaskId] = []
            for child in node.children:
                c_sources, c_sinks = build(child)
                sources.extend(c_sources)
                sinks.extend(c_sinks)
            return sources, sinks
        raise TypeError(f"unknown SP node type: {type(node)!r}")

    build(tree)
    return TaskGraph(weights, edges)


# ----------------------------------------------------------------------
# TaskGraph -> SP tree (recognition / decomposition)
# ----------------------------------------------------------------------
def decompose(graph: TaskGraph) -> SPNode:
    """Decompose a task graph into its series-parallel tree.

    Raises :class:`NotSeriesParallelError` when the graph is not
    series-parallel under the node-composition semantics described in the
    module docstring.

    The algorithm is recursive:

    1. a single task is a leaf;
    2. a weakly disconnected graph is the parallel composition of its
       components;
    3. otherwise the graph must admit a *series cut*: a proper prefix ``A``
       of a topological order such that the crossing edges from ``A`` to the
       remainder ``B`` are exactly ``sinks(A) x sources(B)``.  If a cut
       exists, the graph is ``Series(decompose(A), decompose(B))``;
       otherwise the graph is not series-parallel.

    Correctness of the prefix search relies on the fact that in a series
    composition every task of the first part is an ancestor of every source
    of the second part, hence precedes the whole second part in every
    topological order.
    """
    n = graph.num_tasks
    if n == 0:
        raise NotSeriesParallelError("empty graph has no decomposition")
    if n == 1:
        (task_id,) = graph.tasks()
        return SPLeaf(task_id, graph.weight(task_id))

    undirected = graph.graph.to_undirected(as_view=True)
    components = list(nx.connected_components(undirected))
    if len(components) > 1:
        children = tuple(
            decompose(graph.subgraph(component)) for component in components
        )
        return _flatten_parallel(children)

    topo = graph.topological_order()
    prefix: set[TaskId] = set()
    for cut in range(1, n):
        prefix.add(topo[cut - 1])
        if _is_series_cut(graph, prefix):
            left = decompose(graph.subgraph(prefix))
            right = decompose(graph.subgraph(set(topo[cut:])))
            return _flatten_series((left, right))
    raise NotSeriesParallelError(
        "graph is connected but admits no series cut; it is not series-parallel"
    )


def _is_series_cut(graph: TaskGraph, prefix: set[TaskId]) -> bool:
    """Check whether ``prefix`` induces a valid series cut of ``graph``."""
    rest = [t for t in graph.tasks() if t not in prefix]
    if not rest:
        return False
    crossing = [(u, v) for u, v in graph.edges() if u in prefix and v not in prefix]
    if not crossing:
        return False
    # sinks of the prefix subgraph and sources of the suffix subgraph
    prefix_sinks = {
        t for t in prefix if all(s not in prefix for s in graph.successors(t))
    }
    # Sources of the suffix: tasks whose predecessors (if any) all lie in the
    # prefix.  A suffix source with no predecessors at all cannot appear in a
    # valid series cut because the bipartite-completeness check below would
    # then require an edge from every prefix sink to it.
    rest_sources = {
        t for t in rest if all(p in prefix for p in graph.predecessors(t))
    }
    expected = {(u, v) for u in prefix_sinks for v in rest_sources}
    return set(crossing) == expected and len(expected) > 0


def _flatten_series(children: Sequence[SPNode]) -> SPSeries:
    """Merge nested series nodes into a single n-ary series node."""
    flat: list[SPNode] = []
    for child in children:
        if isinstance(child, SPSeries):
            flat.extend(child.children)
        else:
            flat.append(child)
    return SPSeries(tuple(flat))


def _flatten_parallel(children: Sequence[SPNode]) -> SPParallel:
    """Merge nested parallel nodes into a single n-ary parallel node."""
    flat: list[SPNode] = []
    for child in children:
        if isinstance(child, SPParallel):
            flat.extend(child.children)
        else:
            flat.append(child)
    return SPParallel(tuple(flat))


def is_series_parallel(graph: TaskGraph) -> bool:
    """``True`` when :func:`decompose` succeeds on ``graph``."""
    try:
        decompose(graph)
    except NotSeriesParallelError:
        return False
    return True


# ----------------------------------------------------------------------
# SP-tree utilities
# ----------------------------------------------------------------------
def sp_leaves(tree: SPNode) -> list[SPLeaf]:
    """All leaves of a decomposition tree, left to right."""
    if isinstance(tree, SPLeaf):
        return [tree]
    result: list[SPLeaf] = []
    for child in tree.children:
        result.extend(sp_leaves(child))
    return result


def sp_depth(tree: SPNode) -> int:
    """Depth of the decomposition tree (a leaf has depth 1)."""
    if isinstance(tree, SPLeaf):
        return 1
    return 1 + max(sp_depth(child) for child in tree.children)
