"""Synthetic task-graph generators.

The paper evaluates its heuristics on "a wide class of problem instances";
the companion research reports use linear chains, forks/joins, trees,
series-parallel graphs and random layered DAGs.  This module provides
deterministic and random generators for all of those classes, plus a few
structured application-like DAGs (FFT butterflies, stencil sweeps,
fork-join phases) that stand in for real HPC workloads.

All random generators accept either an integer seed or a
:class:`numpy.random.Generator` so that experiments are reproducible.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from ..core.rng import resolve_rng
from .taskgraph import TaskGraph

__all__ = [
    "chain",
    "fork",
    "join",
    "fork_join",
    "out_tree",
    "in_tree",
    "random_chain",
    "random_fork",
    "random_weights",
    "random_series_parallel",
    "random_layered_dag",
    "random_dag_erdos",
    "fft_butterfly",
    "stencil_1d",
    "phase_fork_join",
    "GENERATOR_REGISTRY",
]


def _rng(seed) -> np.random.Generator:
    return resolve_rng(seed)


def _positive_weights(rng: np.random.Generator, n: int, low: float, high: float) -> np.ndarray:
    if low <= 0 or high < low:
        raise ValueError("need 0 < low <= high for random weights")
    return rng.uniform(low, high, size=n)


# ----------------------------------------------------------------------
# deterministic elementary structures
# ----------------------------------------------------------------------
def chain(weights: Sequence[float], *, prefix: str = "T") -> TaskGraph:
    """Linear chain ``T0 -> T1 -> ... -> T_{n-1}`` with the given weights."""
    weights = list(weights)
    if not weights:
        raise ValueError("a chain needs at least one task")
    names = [f"{prefix}{i}" for i in range(len(weights))]
    w = dict(zip(names, weights))
    edges = list(zip(names[:-1], names[1:]))
    return TaskGraph(w, edges)


def fork(source_weight: float, child_weights: Sequence[float], *,
         prefix: str = "T") -> TaskGraph:
    """Fork graph of the paper's theorem: source ``T0`` feeding ``n`` children."""
    child_weights = list(child_weights)
    names = [f"{prefix}{i}" for i in range(len(child_weights) + 1)]
    w = {names[0]: float(source_weight)}
    for name, cw in zip(names[1:], child_weights):
        w[name] = float(cw)
    edges = [(names[0], c) for c in names[1:]]
    return TaskGraph(w, edges)


def join(child_weights: Sequence[float], sink_weight: float, *,
         prefix: str = "T") -> TaskGraph:
    """Join graph: ``n`` independent tasks all feeding a final sink task."""
    child_weights = list(child_weights)
    names = [f"{prefix}{i}" for i in range(len(child_weights) + 1)]
    w = {}
    for name, cw in zip(names[:-1], child_weights):
        w[name] = float(cw)
    w[names[-1]] = float(sink_weight)
    edges = [(c, names[-1]) for c in names[:-1]]
    return TaskGraph(w, edges)


def fork_join(source_weight: float, middle_weights: Sequence[float],
              sink_weight: float, *, prefix: str = "T") -> TaskGraph:
    """Fork-join: source -> n parallel tasks -> sink.  A series-parallel graph."""
    middle_weights = list(middle_weights)
    n = len(middle_weights)
    names = [f"{prefix}{i}" for i in range(n + 2)]
    w = {names[0]: float(source_weight), names[-1]: float(sink_weight)}
    for name, mw in zip(names[1:-1], middle_weights):
        w[name] = float(mw)
    edges = [(names[0], m) for m in names[1:-1]] + [(m, names[-1]) for m in names[1:-1]]
    return TaskGraph(w, edges)


def out_tree(depth: int, branching: int, weights: Sequence[float] | float = 1.0,
             *, prefix: str = "T") -> TaskGraph:
    """Complete out-tree (rooted tree, edges directed away from the root).

    ``depth`` is the number of levels (depth 1 = a single root); ``branching``
    is the number of children of every internal node.  ``weights`` is either a
    constant weight or a sequence with one entry per node in BFS order.
    """
    if depth < 1 or branching < 1:
        raise ValueError("depth and branching must be at least 1")
    num_nodes = sum(branching ** level for level in range(depth))
    if isinstance(weights, (int, float)):
        weight_list = [float(weights)] * num_nodes
    else:
        weight_list = [float(w) for w in weights]
        if len(weight_list) != num_nodes:
            raise ValueError(
                f"expected {num_nodes} weights for depth={depth}, branching={branching}"
            )
    names = [f"{prefix}{i}" for i in range(num_nodes)]
    w = dict(zip(names, weight_list))
    edges = []
    # BFS numbering: node i has children branching*i + 1 ... branching*i + branching.
    for i in range(num_nodes):
        for c in range(branching * i + 1, branching * i + branching + 1):
            if c < num_nodes:
                edges.append((names[i], names[c]))
    return TaskGraph(w, edges)


def in_tree(depth: int, branching: int, weights: Sequence[float] | float = 1.0,
            *, prefix: str = "T") -> TaskGraph:
    """Complete in-tree (edges directed towards the root)."""
    return out_tree(depth, branching, weights, prefix=prefix).reversed()


# ----------------------------------------------------------------------
# random instances
# ----------------------------------------------------------------------
def random_weights(n: int, seed=None, *, low: float = 1.0, high: float = 10.0) -> np.ndarray:
    """``n`` i.i.d. uniform task weights in ``[low, high]``."""
    rng = _rng(seed)
    return _positive_weights(rng, n, low, high)


def random_chain(n: int, seed=None, *, low: float = 1.0, high: float = 10.0) -> TaskGraph:
    """Linear chain of ``n`` tasks with uniform random weights."""
    return chain(random_weights(n, seed, low=low, high=high))


def random_fork(n_children: int, seed=None, *, low: float = 1.0,
                high: float = 10.0) -> TaskGraph:
    """Fork with ``n_children`` children and uniform random weights."""
    rng = _rng(seed)
    w = _positive_weights(rng, n_children + 1, low, high)
    return fork(w[0], w[1:])


def random_series_parallel(n_leaves: int, seed=None, *, low: float = 1.0,
                           high: float = 10.0, parallel_bias: float = 0.5) -> TaskGraph:
    """Random two-terminal series-parallel DAG with ``n_leaves`` atomic tasks.

    The graph is built top-down: a composition over ``n_leaves`` leaves is
    either a series or a parallel composition of two random sub-compositions,
    chosen with probability ``parallel_bias`` for parallel.  Parallel
    composition of task sets here means the two subgraphs share no edges and
    are glued between a common (possibly empty) pair of terminals -- we use
    the standard "source/sink chain" encoding where a parallel composition is
    bracketed by zero-weight synchronisation is avoided by composing only
    with series glue when a terminal is needed.  The resulting graph has the
    property that the equivalent-weight recursion of
    :mod:`repro.continuous.closed_form` applies exactly.

    Returns the :class:`TaskGraph`; the matching decomposition can be
    recovered with :func:`repro.dag.series_parallel.decompose`.
    """
    from .series_parallel import SPLeaf, SPSeries, SPParallel, sp_tree_to_taskgraph

    if n_leaves < 1:
        raise ValueError("need at least one leaf")
    rng = _rng(seed)
    weights = _positive_weights(rng, n_leaves, low, high)
    counter = iter(range(n_leaves))

    def build(k: int):
        if k == 1:
            idx = next(counter)
            return SPLeaf(f"T{idx}", float(weights[idx]))
        split = int(rng.integers(1, k))
        left = build(split)
        right = build(k - split)
        if rng.random() < parallel_bias:
            return SPParallel((left, right))
        return SPSeries((left, right))

    tree = build(n_leaves)
    return sp_tree_to_taskgraph(tree)


def random_layered_dag(num_layers: int, width: int, seed=None, *,
                       low: float = 1.0, high: float = 10.0,
                       edge_probability: float = 0.4,
                       ensure_connected: bool = True) -> TaskGraph:
    """Random layered DAG: ``num_layers`` layers of ``width`` tasks each.

    Edges only go from one layer to the next; each potential edge is present
    with probability ``edge_probability``.  When ``ensure_connected`` is set,
    every task in layer ``l+1`` gets at least one predecessor in layer ``l``
    (so that the DAG depth equals ``num_layers``), which mimics the layered
    synthetic DAGs used in the DAG-scheduling literature.
    """
    if num_layers < 1 or width < 1:
        raise ValueError("num_layers and width must be at least 1")
    if not (0.0 <= edge_probability <= 1.0):
        raise ValueError("edge_probability must be in [0, 1]")
    rng = _rng(seed)
    n = num_layers * width
    weights = _positive_weights(rng, n, low, high)
    names = [f"L{layer}_{j}" for layer in range(num_layers) for j in range(width)]
    w = dict(zip(names, weights))
    edges: list[tuple[str, str]] = []
    for layer in range(num_layers - 1):
        for j in range(width):
            dst = f"L{layer + 1}_{j}"
            preds = []
            for i in range(width):
                if rng.random() < edge_probability:
                    preds.append(f"L{layer}_{i}")
            if ensure_connected and not preds:
                preds.append(f"L{layer}_{int(rng.integers(0, width))}")
            edges.extend((p, dst) for p in preds)
    return TaskGraph(w, edges)


def random_dag_erdos(n: int, edge_probability: float, seed=None, *,
                     low: float = 1.0, high: float = 10.0) -> TaskGraph:
    """Erdos-Renyi style random DAG on ``n`` tasks.

    Tasks are ordered ``T0 < T1 < ... < T_{n-1}`` and each forward pair
    ``(Ti, Tj)``, ``i < j`` is an edge with probability ``edge_probability``.
    """
    if n < 1:
        raise ValueError("need at least one task")
    if not (0.0 <= edge_probability <= 1.0):
        raise ValueError("edge_probability must be in [0, 1]")
    rng = _rng(seed)
    weights = _positive_weights(rng, n, low, high)
    names = [f"T{i}" for i in range(n)]
    w = dict(zip(names, weights))
    edges = [
        (names[i], names[j])
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < edge_probability
    ]
    return TaskGraph(w, edges)


# ----------------------------------------------------------------------
# application-like structured DAGs
# ----------------------------------------------------------------------
def fft_butterfly(stages: int, *, weight: float = 1.0, prefix: str = "fft") -> TaskGraph:
    """Butterfly DAG of an FFT over ``2**stages`` points.

    Each of the ``stages`` levels contains ``2**stages`` tasks; task ``j`` of
    level ``l+1`` depends on tasks ``j`` and ``j XOR 2**l`` of level ``l``.
    """
    if stages < 1:
        raise ValueError("need at least one stage")
    n = 2 ** stages
    w = {}
    edges = []
    for level in range(stages + 1):
        for j in range(n):
            w[f"{prefix}_{level}_{j}"] = float(weight)
    for level in range(stages):
        for j in range(n):
            dst = f"{prefix}_{level + 1}_{j}"
            edges.append((f"{prefix}_{level}_{j}", dst))
            edges.append((f"{prefix}_{level}_{j ^ (1 << level)}", dst))
    return TaskGraph(w, edges)


def stencil_1d(width: int, steps: int, *, weight: float = 1.0,
               prefix: str = "st") -> TaskGraph:
    """1-D stencil sweep: ``steps`` time steps over ``width`` cells.

    Cell ``j`` at step ``t+1`` depends on cells ``j-1, j, j+1`` at step ``t``.
    """
    if width < 1 or steps < 1:
        raise ValueError("width and steps must be at least 1")
    w = {}
    edges = []
    for t in range(steps + 1):
        for j in range(width):
            w[f"{prefix}_{t}_{j}"] = float(weight)
    for t in range(steps):
        for j in range(width):
            dst = f"{prefix}_{t + 1}_{j}"
            for dj in (-1, 0, 1):
                src_j = j + dj
                if 0 <= src_j < width:
                    edges.append((f"{prefix}_{t}_{src_j}", dst))
    return TaskGraph(w, edges)


def phase_fork_join(num_phases: int, width: int, seed=None, *, low: float = 1.0,
                    high: float = 10.0, prefix: str = "ph") -> TaskGraph:
    """Bulk-synchronous application: a chain of fork-join phases.

    Each phase is a zero-fan-in synchronisation-free fork-join: a sequential
    task, then ``width`` parallel tasks, then another sequential task which
    is also the entry of the next phase.  This models iterative BSP-style
    HPC applications (the "highly parallelizable DAGs" the paper's second
    heuristic family targets).
    """
    if num_phases < 1 or width < 1:
        raise ValueError("num_phases and width must be at least 1")
    rng = _rng(seed)
    w: dict[str, float] = {}
    edges: list[tuple[str, str]] = []
    prev_sync: str | None = None
    for ph in range(num_phases):
        entry = f"{prefix}{ph}_in"
        exit_ = f"{prefix}{ph}_out"
        w[entry] = float(rng.uniform(low, high))
        w[exit_] = float(rng.uniform(low, high))
        if prev_sync is not None:
            edges.append((prev_sync, entry))
        for j in range(width):
            mid = f"{prefix}{ph}_p{j}"
            w[mid] = float(rng.uniform(low, high))
            edges.append((entry, mid))
            edges.append((mid, exit_))
        prev_sync = exit_
    return TaskGraph(w, edges)


#: Registry used by the experiment suites to enumerate instance classes by name.
GENERATOR_REGISTRY = {
    "chain": random_chain,
    "fork": random_fork,
    "series_parallel": random_series_parallel,
    "layered": random_layered_dag,
    "erdos": random_dag_erdos,
    "fork_join_phases": phase_fork_join,
}
