"""Weighted task graphs (DAGs) -- the application model of the paper.

An application consists of ``n`` tasks ``T_1 ... T_n`` with dependence
constraints forming a directed acyclic graph; task ``T_i`` carries a weight
``w_i`` equal to its computation requirement.  :class:`TaskGraph` wraps a
:class:`networkx.DiGraph` and adds the operations the scheduling algorithms
need: weight access, topological iteration, critical-path computation,
structural queries (chain / fork / join detection) and immutability-friendly
copies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence

import networkx as nx
import numpy as np

__all__ = ["TaskGraph", "Task"]

TaskId = Hashable


@dataclass(frozen=True)
class Task:
    """A single task: identifier plus computational weight."""

    task_id: TaskId
    weight: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"task weight must be non-negative, got {self.weight}")


class TaskGraph:
    """A weighted directed acyclic task graph.

    Parameters
    ----------
    weights:
        Mapping from task identifier to computational weight ``w_i > 0``.
    edges:
        Iterable of ``(u, v)`` precedence constraints meaning ``u`` must
        complete before ``v`` starts.

    The constructor validates acyclicity and that every edge endpoint has a
    weight.
    """

    def __init__(self, weights: Mapping[TaskId, float],
                 edges: Iterable[tuple[TaskId, TaskId]] = ()) -> None:
        g = nx.DiGraph()
        for task_id, w in weights.items():
            w = float(w)
            if w < 0 or not math.isfinite(w):
                raise ValueError(
                    f"task {task_id!r} has invalid weight {w}; weights must be finite and >= 0"
                )
            g.add_node(task_id, weight=w)
        for u, v in edges:
            if u not in g or v not in g:
                raise ValueError(f"edge ({u!r}, {v!r}) references an unknown task")
            if u == v:
                raise ValueError(f"self-loop on task {u!r}")
            g.add_edge(u, v)
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise ValueError(f"task graph contains a cycle: {cycle}")
        self._g = g
        self._topo_cache: tuple[TaskId, ...] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, graph: nx.DiGraph, *, weight_attr: str = "weight") -> "TaskGraph":
        """Build a :class:`TaskGraph` from an existing networkx DiGraph."""
        weights = {}
        for node, data in graph.nodes(data=True):
            if weight_attr not in data:
                raise ValueError(f"node {node!r} is missing the {weight_attr!r} attribute")
            weights[node] = float(data[weight_attr])
        return cls(weights, graph.edges())

    def copy(self) -> "TaskGraph":
        """Deep copy of the task graph."""
        return TaskGraph(dict(self.weights()), list(self.edges()))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.DiGraph:
        """Underlying networkx graph (treat as read-only)."""
        return self._g

    def __len__(self) -> int:
        return self._g.number_of_nodes()

    def __contains__(self, task_id: TaskId) -> bool:
        return task_id in self._g

    def __iter__(self) -> Iterator[TaskId]:
        return iter(self._g.nodes())

    @property
    def num_tasks(self) -> int:
        return self._g.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._g.number_of_edges()

    def tasks(self) -> list[TaskId]:
        """All task identifiers (insertion order)."""
        return list(self._g.nodes())

    def weight(self, task_id: TaskId) -> float:
        """Weight ``w_i`` of a task."""
        return float(self._g.nodes[task_id]["weight"])

    def weights(self) -> dict[TaskId, float]:
        """Mapping of all task weights."""
        return {t: float(d["weight"]) for t, d in self._g._node.items()}

    def weight_array(self, order: Sequence[TaskId] | None = None) -> np.ndarray:
        """Weights as a NumPy array, in ``order`` (default: topological)."""
        ids = list(order) if order is not None else self.topological_order()
        return np.array([self.weight(t) for t in ids], dtype=float)

    def total_weight(self) -> float:
        """Sum of all task weights."""
        return float(sum(d["weight"] for d in self._g._node.values()))

    def edges(self) -> list[tuple[TaskId, TaskId]]:
        return list(self._g.edges())

    def predecessors(self, task_id: TaskId) -> list[TaskId]:
        return list(self._g.predecessors(task_id))

    def successors(self, task_id: TaskId) -> list[TaskId]:
        return list(self._g.successors(task_id))

    def sources(self) -> list[TaskId]:
        """Tasks without predecessors (entry tasks)."""
        # Raw adjacency dicts: these probes run once per solver dispatch,
        # and the networkx degree/adjacency views cost more than the whole
        # closed form they gate.
        return [t for t, preds in self._g._pred.items() if not preds]

    def sinks(self) -> list[TaskId]:
        """Tasks without successors (exit tasks)."""
        return [t for t, succs in self._g._succ.items() if not succs]

    # ------------------------------------------------------------------
    # orderings and paths
    # ------------------------------------------------------------------
    def topological_order(self) -> list[TaskId]:
        """A deterministic topological ordering (lexicographic tie-break)."""
        if self._topo_cache is None:
            try:
                order = list(nx.lexicographical_topological_sort(self._g, key=str))
            except TypeError:  # pragma: no cover - heterogeneous unorderable ids
                order = list(nx.topological_sort(self._g))
            self._topo_cache = tuple(order)
        return list(self._topo_cache)

    def ancestors(self, task_id: TaskId) -> set[TaskId]:
        return set(nx.ancestors(self._g, task_id))

    def descendants(self, task_id: TaskId) -> set[TaskId]:
        return set(nx.descendants(self._g, task_id))

    def critical_path_weight(self) -> float:
        """Maximum total weight over all paths (the *critical path*).

        Under the CONTINUOUS model at ``fmax`` this is a lower bound on the
        achievable makespan: ``D >= critical_path_weight() / fmax``.
        """
        longest: dict[TaskId, float] = {}
        for t in self.topological_order():
            preds = self.predecessors(t)
            best = max((longest[p] for p in preds), default=0.0)
            longest[t] = best + self.weight(t)
        return max(longest.values(), default=0.0)

    def critical_path(self) -> list[TaskId]:
        """A maximum-weight path, as a list of tasks from a source to a sink."""
        longest: dict[TaskId, float] = {}
        choice: dict[TaskId, TaskId | None] = {}
        for t in self.topological_order():
            preds = self.predecessors(t)
            if preds:
                best_pred = max(preds, key=lambda p: longest[p])
                longest[t] = longest[best_pred] + self.weight(t)
                choice[t] = best_pred
            else:
                longest[t] = self.weight(t)
                choice[t] = None
        if not longest:
            return []
        end = max(longest, key=lambda t: longest[t])
        path = [end]
        while choice[path[-1]] is not None:
            path.append(choice[path[-1]])
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def is_chain(self) -> bool:
        """True when the graph is a single linear chain of tasks."""
        if self.num_tasks == 0:
            return False
        if self.num_tasks == 1:
            return True
        pred, succ = self._g._pred, self._g._succ
        degrees_ok = all(len(pred[t]) <= 1 and len(succ[t]) <= 1 for t in pred)
        # With all degrees <= 1, an *acyclic* graph (guaranteed by the
        # constructor) is a disjoint union of paths, and a union of k paths
        # on n nodes has exactly n - k edges -- so n - 1 edges means one
        # connected path; no separate connectivity scan is needed.
        return degrees_ok and self.num_edges == self.num_tasks - 1

    def is_fork(self) -> tuple[bool, TaskId | None]:
        """Is the graph a fork (one source with edges to all other tasks)?

        Returns ``(True, source)`` for a fork with at least one child, or a
        single isolated task (degenerate fork with zero children); otherwise
        ``(False, None)``.
        """
        if self.num_tasks == 0:
            return False, None
        pred, succ = self._g._pred, self._g._succ
        sources = [t for t, p in pred.items() if not p]
        if len(sources) != 1:
            return False, None
        src = sources[0]
        for t, p in pred.items():
            if t == src:
                continue
            if len(p) != 1 or src not in p or succ[t]:
                return False, None
        if len(succ[src]) != self.num_tasks - 1:
            return False, None
        return True, src

    def is_join(self) -> tuple[bool, TaskId | None]:
        """Is the graph a join (all tasks feed one sink)?  Mirror of a fork."""
        if self.num_tasks == 0:
            return False, None
        pred, succ = self._g._pred, self._g._succ
        sinks = [t for t, s in succ.items() if not s]
        if len(sinks) != 1:
            return False, None
        sink = sinks[0]
        for t, s in succ.items():
            if t == sink:
                continue
            if len(s) != 1 or sink not in s or pred[t]:
                return False, None
        if len(pred[sink]) != self.num_tasks - 1:
            return False, None
        return True, sink

    def chain_order(self) -> list[TaskId]:
        """Tasks of a chain graph in execution order (raises if not a chain)."""
        if not self.is_chain():
            raise ValueError("graph is not a linear chain")
        return self.topological_order()

    def reversed(self) -> "TaskGraph":
        """Graph with all edges reversed (used by the join closed form)."""
        return TaskGraph(self.weights(), [(v, u) for u, v in self.edges()])

    # ------------------------------------------------------------------
    # mutation-by-copy helpers
    # ------------------------------------------------------------------
    def with_weights(self, new_weights: Mapping[TaskId, float]) -> "TaskGraph":
        """Copy of the graph with some task weights replaced."""
        weights = self.weights()
        for t, w in new_weights.items():
            if t not in weights:
                raise KeyError(f"unknown task {t!r}")
            weights[t] = float(w)
        return TaskGraph(weights, self.edges())

    def subgraph(self, task_ids: Iterable[TaskId]) -> "TaskGraph":
        """Induced subgraph on the given tasks."""
        keep = set(task_ids)
        unknown = keep - set(self._g.nodes())
        if unknown:
            raise KeyError(f"unknown tasks: {sorted(map(str, unknown))}")
        weights = {t: self.weight(t) for t in keep}
        edges = [(u, v) for u, v in self.edges() if u in keep and v in keep]
        return TaskGraph(weights, edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskGraph(n={self.num_tasks}, m={self.num_edges}, W={self.total_weight():.3g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return (
            self.weights() == other.weights()
            and set(self.edges()) == set(other.edges())
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(
            (frozenset(self.weights().items()), frozenset(self.edges()))
        )
