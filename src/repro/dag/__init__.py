"""Task-graph substrate: weighted DAGs, generators, analysis and serialisation."""

from . import analysis, generators, io
from .series_parallel import (
    NotSeriesParallelError,
    SPLeaf,
    SPNode,
    SPParallel,
    SPSeries,
    decompose,
    is_series_parallel,
    sp_tree_to_taskgraph,
)
from .taskgraph import Task, TaskGraph

__all__ = [
    "TaskGraph",
    "Task",
    "generators",
    "analysis",
    "io",
    "SPNode",
    "SPLeaf",
    "SPSeries",
    "SPParallel",
    "decompose",
    "is_series_parallel",
    "sp_tree_to_taskgraph",
    "NotSeriesParallelError",
]
