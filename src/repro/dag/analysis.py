"""Structural analysis of task graphs used by mappers, heuristics and bounds.

These are the classic quantities of DAG scheduling:

* *top level* ``tl(T)``: longest (weight-)path ending just before ``T`` --
  the earliest time ``T`` could start when running every task at unit speed
  on infinitely many processors;
* *bottom level* ``bl(T)``: longest path starting at ``T`` and including it
  -- the classic priority of critical-path list scheduling;
* *levels* (depth layers), *slack*, parallelism profile, and makespan /
  energy lower bounds derived from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

import numpy as np

from .taskgraph import TaskGraph, TaskId

__all__ = [
    "top_levels",
    "bottom_levels",
    "depth_layers",
    "slack",
    "parallelism_profile",
    "max_parallelism",
    "makespan_lower_bound",
    "energy_lower_bound",
    "GraphSummary",
    "summarize",
]


def top_levels(graph: TaskGraph) -> dict[TaskId, float]:
    """Longest weighted path strictly before each task (0 for sources)."""
    tl: dict[TaskId, float] = {}
    for t in graph.topological_order():
        preds = graph.predecessors(t)
        tl[t] = max((tl[p] + graph.weight(p) for p in preds), default=0.0)
    return tl


def bottom_levels(graph: TaskGraph) -> dict[TaskId, float]:
    """Longest weighted path starting at each task, including its own weight."""
    bl: dict[TaskId, float] = {}
    for t in reversed(graph.topological_order()):
        succs = graph.successors(t)
        bl[t] = graph.weight(t) + max((bl[s] for s in succs), default=0.0)
    return bl


def depth_layers(graph: TaskGraph) -> list[list[TaskId]]:
    """Partition of tasks into precedence layers (layer 0 = sources)."""
    depth: dict[TaskId, int] = {}
    for t in graph.topological_order():
        preds = graph.predecessors(t)
        depth[t] = max((depth[p] + 1 for p in preds), default=0)
    if not depth:
        return []
    layers: list[list[TaskId]] = [[] for _ in range(max(depth.values()) + 1)]
    for t, d in depth.items():
        layers[d].append(t)
    return layers


def slack(graph: TaskGraph, deadline: float | None = None) -> dict[TaskId, float]:
    """Scheduling slack of each task at unit speed.

    ``slack(T) = horizon - tl(T) - bl(T)`` where ``horizon`` is the deadline
    when given, otherwise the critical-path weight.  Tasks on a critical
    path have zero slack (when the horizon is the critical-path weight).
    """
    tl = top_levels(graph)
    bl = bottom_levels(graph)
    horizon = deadline if deadline is not None else graph.critical_path_weight()
    return {t: horizon - tl[t] - bl[t] for t in graph.tasks()}


def parallelism_profile(graph: TaskGraph) -> list[int]:
    """Number of tasks per depth layer -- a cheap parallelism signature."""
    return [len(layer) for layer in depth_layers(graph)]


def max_parallelism(graph: TaskGraph) -> int:
    """Maximum width over the depth layers (upper-bounded by true parallelism)."""
    profile = parallelism_profile(graph)
    return max(profile) if profile else 0


def makespan_lower_bound(graph: TaskGraph, num_processors: int, fmax: float) -> float:
    """Classic two-part lower bound on the makespan at speed ``fmax``.

    The makespan of any schedule on ``p`` processors running at most at
    ``fmax`` is at least the critical-path time and at least the total-work
    time ``W / (p * fmax)``.
    """
    if num_processors < 1:
        raise ValueError("need at least one processor")
    if fmax <= 0:
        raise ValueError("fmax must be positive")
    cp = graph.critical_path_weight() / fmax
    area = graph.total_weight() / (num_processors * fmax)
    return max(cp, area)


def energy_lower_bound(graph: TaskGraph, deadline: float, *,
                       exponent: float = 3.0) -> float:
    """Lower bound on energy for any schedule meeting ``deadline``.

    Every task must individually finish within the deadline, so task ``i``
    consumes at least ``w_i^a / D^{a-1}``... summing that is weak; a better
    and still universally valid bound uses the critical path: the tasks of a
    weight-maximal path are serialised, hence consume at least
    ``(sum of their weights)^a / D^{a-1}``.  The returned value is the
    maximum of the per-task bound sum restricted to the critical path and
    the all-tasks individual bound.
    """
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    weights = np.array(list(graph.weights().values()), dtype=float)
    individual = float(np.sum(weights ** exponent / deadline ** (exponent - 1.0)))
    cp_weight = graph.critical_path_weight()
    cp_bound = cp_weight ** exponent / deadline ** (exponent - 1.0)
    return max(individual, cp_bound)


@dataclass(frozen=True)
class GraphSummary:
    """Compact structural signature of a task graph, used in reports."""

    num_tasks: int
    num_edges: int
    total_weight: float
    critical_path_weight: float
    depth: int
    max_width: int
    is_chain: bool
    is_fork: bool

    @property
    def parallelism_ratio(self) -> float:
        """Total weight divided by critical-path weight (average parallelism)."""
        if self.critical_path_weight == 0:
            return 0.0
        return self.total_weight / self.critical_path_weight


def summarize(graph: TaskGraph) -> GraphSummary:
    """Build the :class:`GraphSummary` of a task graph."""
    layers = depth_layers(graph)
    return GraphSummary(
        num_tasks=graph.num_tasks,
        num_edges=graph.num_edges,
        total_weight=graph.total_weight(),
        critical_path_weight=graph.critical_path_weight(),
        depth=len(layers),
        max_width=max((len(l) for l in layers), default=0),
        is_chain=graph.is_chain(),
        is_fork=graph.is_fork()[0],
    )
