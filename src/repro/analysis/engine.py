"""The AST lint engine: file walking, suppression comments, rendering.

Rules are small visitors over one :class:`FileContext` (parsed tree +
comment map + module name).  The engine owns everything rule-independent:

* discovering Python files under the given paths;
* mapping files to dotted module names (``src/repro/api/engine.py`` ->
  ``repro.api.engine``), which rules use for path-scoped exemptions;
* the suppression protocol -- ``# repro: allow[REP001]`` (optionally
  ``allow[REP001,REP005] -- reason``) either trailing any line the
  flagged statement spans, or on a comment-only line directly above it
  (further comment lines may continue the reason).  Suppressed findings
  are flagged, not deleted, so ``--include-suppressed`` can still audit
  the deliberate exceptions;
* ``# guarded-by: <lock>`` / ``# requires: <lock>`` comment parsing for
  the lock-discipline rule (kept here because it is comment-layer, not
  AST-layer, and tokenization happens once per file);
* stable ordering and the human/JSON renderings.

The engine is stdlib-only on purpose: it has to run in every environment
the tier-1 suite runs in, including containers without ruff or mypy.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = [
    "AnalysisError",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "iter_python_files",
    "render_json",
    "render_text",
]

#: ``# repro: allow[REP001]`` / ``# repro: allow[REP001,REP005] -- reason``
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9*,\s-]+)\]")
#: ``# guarded-by: _lock`` on an attribute/global declaration line.
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
#: ``# requires: _lock`` on a ``def`` line: callers hold the lock.
_REQUIRES_RE = re.compile(r"#\s*requires:\s*([A-Za-z_][A-Za-z0-9_]*)")


class AnalysisError(RuntimeError):
    """Raised for unanalysable input (unreadable file, syntax error)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    suppressed: bool = False

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "suppressed": self.suppressed,
        }


class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    def __init__(self, path: Path, source: str, *,
                 module: str | None = None) -> None:
        self.path = path
        self.source = source
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise AnalysisError(f"{path}: cannot parse: {exc}") from exc
        self.module = module if module is not None else module_name_for(path)
        #: lineno -> set of rule ids allowed on that line ("*" allows all).
        self.allowed: dict[int, frozenset[str]] = {}
        #: lineno -> lock name declared via ``# guarded-by: <lock>``.
        self.guarded_lines: dict[int, str] = {}
        #: lineno -> lock name declared via ``# requires: <lock>``.
        self.requires_lines: dict[int, str] = {}
        self._scan_comments()

    def _scan_comments(self) -> None:
        lines = self.source.splitlines()
        comment_only: set[int] = set()
        standalone_allows: list[tuple[int, frozenset[str]]] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                lineno, col = tok.start
                own_line = not lines[lineno - 1][:col].strip() \
                    if lineno <= len(lines) else False
                if own_line:
                    comment_only.add(lineno)
                match = _ALLOW_RE.search(tok.string)
                if match:
                    ids = frozenset(part.strip().upper()
                                    for part in match.group(1).split(",")
                                    if part.strip())
                    self.allowed[lineno] = self.allowed.get(
                        lineno, frozenset()) | ids
                    if own_line:
                        standalone_allows.append((lineno, ids))
                match = _GUARDED_RE.search(tok.string)
                if match:
                    self.guarded_lines[lineno] = match.group(1)
                match = _REQUIRES_RE.search(tok.string)
                if match:
                    self.requires_lines[lineno] = match.group(1)
        except tokenize.TokenError:
            # A tokenization hiccup only costs comment-layer features;
            # the AST rules still run.
            pass
        # A comment-only allow line attaches to the next statement line
        # (skipping continuation comment lines carrying the reason).  A
        # blank line breaks the association.
        for lineno, ids in standalone_allows:
            target = lineno + 1
            while target in comment_only:
                target += 1
            if target <= len(lines) and lines[target - 1].strip():
                self.allowed[target] = self.allowed.get(
                    target, frozenset()) | ids

    # -- suppression ---------------------------------------------------
    def is_suppressed(self, rule_id: str, node: ast.AST) -> bool:
        """True when any line the node spans carries an allow comment for
        ``rule_id`` (or the wildcard ``*``), whether trailing the line or
        standing alone directly above the statement."""
        first = getattr(node, "lineno", None)
        if first is None:
            return False
        last = getattr(node, "end_lineno", None) or first
        for lineno in range(first, last + 1):
            ids = self.allowed.get(lineno)
            if ids and (rule_id.upper() in ids or "*" in ids):
                return True
        return False

    def finding(self, rule: "Rule", node: ast.AST, message: str, *,
                hint: str | None = None) -> Finding:
        """Build a finding for ``node``, applying the suppression protocol."""
        return Finding(
            rule=rule.rule_id,
            path=str(self.path),
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=rule.hint if hint is None else hint,
            suppressed=self.is_suppressed(rule.rule_id, node),
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check` as a
    generator of :class:`Finding` (use :meth:`FileContext.finding` so the
    suppression protocol is applied uniformly).
    """

    rule_id: str = "REP000"
    name: str = "unnamed"
    summary: str = ""
    hint: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.rule_id} {self.name}>"


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``.

    Anchored at the last ``repro`` path component so the same file maps to
    the same module whether scanned as ``src/repro/...``, an absolute
    path, or a path inside an installed tree.  Files outside the package
    (rule-test fixtures) map to their bare stem, which never matches a
    path-scoped exemption -- exactly what fixture tests need.
    """
    parts = list(path.resolve().parts)
    name = path.stem
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        inside = list(parts[anchor:-1]) + ([] if name == "__init__"
                                           else [name])
        return ".".join(inside)
    return name


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """All ``*.py`` files under the given files/directories, sorted.

    ``__pycache__`` trees are skipped; a missing path is an error (a typo
    must not silently analyse nothing).
    """
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py")
                       if "__pycache__" not in p.parts)
        elif path.is_file():
            out.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(out)


def all_rules() -> list[Rule]:
    """One instance of every registered rule, in rule-id order."""
    from .rules import RULE_CLASSES

    return [cls() for cls in RULE_CLASSES]


def analyze_paths(paths: Sequence[str | Path], *,
                  rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Run ``rules`` (default: all) over every Python file under ``paths``.

    Returns all findings -- suppressed ones included, flagged as such --
    in (path, line, col, rule) order.
    """
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        ctx = FileContext(path, source)
        for rule in active:
            findings.extend(rule.check(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def render_text(findings: Sequence[Finding], *,
                include_suppressed: bool = False) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per
    finding plus a summary line (always present, even when clean)."""
    lines = []
    shown = [f for f in findings if include_suppressed or not f.suppressed]
    for f in shown:
        tag = " [suppressed]" if f.suppressed else ""
        lines.append(f"{f.location}: {f.rule}{tag} {f.message}")
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    unsuppressed = sum(1 for f in findings if not f.suppressed)
    suppressed = sum(1 for f in findings if f.suppressed)
    lines.append(f"{unsuppressed} finding(s), {suppressed} suppressed")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], *,
                include_suppressed: bool = True) -> str:
    """Machine-readable report (stable key order, one object per finding)."""
    shown = [f for f in findings if include_suppressed or not f.suppressed]
    payload = {
        "findings": [f.to_dict() for f in shown],
        "unsuppressed": sum(1 for f in findings if not f.suppressed),
        "suppressed": sum(1 for f in findings if f.suppressed),
    }
    # repro: allow[REP002] -- lint report on stdout, never hashed into a key
    return json.dumps(payload, indent=2, sort_keys=True)
