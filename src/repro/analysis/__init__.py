"""``repro.analysis``: the repo-specific static-analysis toolkit.

A small AST-based lint engine plus the rule catalogue that encodes the
invariants this repository has historically broken and then fixed by hand
(see DESIGN.md, "Static analysis & typing").  Each rule descends from a
real bug:

* **REP001 nondeterministic-order** -- a ``set`` (hash-ordered) iterated
  into an order-sensitive construct; the ``list(set(edges))`` bug that
  leaked hash-randomised edge orders into convex-solver results.
* **REP002 non-canonical-json** -- ``json.dumps``/``json.dump`` outside
  :mod:`repro.store.canonical`; raw dumps on keyed paths fork the cache-key
  definition the whole store tier depends on.
* **REP003 seed-discipline** -- RNG construction outside
  :mod:`repro.core.rng`; ad-hoc ``default_rng``/``random.*`` calls break
  the deterministic child-seed derivation campaigns rely on.
* **REP004 registry-bypass** -- importing a *registered solver entry
  point* directly instead of going through the registry/dispatch layer,
  which reintroduces the 12-vs-14 ``max_tasks`` admissibility drift.
* **REP005 lock-discipline** -- attributes declared ``# guarded-by:
  <lock>`` read or written outside a ``with <lock>`` block.
* **REP006 float-equality** -- ``==``/``!=`` against float literals, the
  water-filling NaN-via-underflow bug class.

Violations are suppressed inline with ``# repro: allow[RULE-ID] -- reason``
on (any line of) the offending statement.  The engine is dependency-free
and runs as ``python -m repro.analysis`` or ``make analyze``; a tier-1
self-check test keeps ``src/repro`` at zero unsuppressed findings.
"""

from __future__ import annotations

from .engine import (
    AnalysisError,
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    iter_python_files,
    render_json,
    render_text,
)

__all__ = [
    "AnalysisError",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "iter_python_files",
    "render_json",
    "render_text",
]
