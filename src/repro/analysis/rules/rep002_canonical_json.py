"""REP002 non-canonical-json: ``json.dumps`` outside the canonical module.

Every cache key, store checksum and coalescing key in this repository is a
SHA-256 over the canonical JSON form owned by
:mod:`repro.store.canonical`.  A raw ``json.dumps`` on a keyed path forks
that definition -- different container types, key order or float rendering
silently produce a *different key for the same configuration*, which reads
as a miss (cold-path recompute) at best and as two divergent cached
truths at worst.

The rule flags every ``json.dumps``/``json.dump`` call site outside
``repro.store.canonical`` and forces each one to be classified: keyed
paths route through :func:`repro.store.canonical.canonical_blob`;
genuinely non-keyed output (human-readable files, HTTP response bodies,
transport encodings) carries ``# repro: allow[REP002] -- <reason>``
stating why canonical form is not required there.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Finding, Rule

#: The one module allowed to call json.dumps for key/checksum material.
_CANONICAL_MODULE = "repro.store.canonical"


class NonCanonicalJsonRule(Rule):
    rule_id = "REP002"
    name = "non-canonical-json"
    summary = ("json.dumps/json.dump call outside repro.store.canonical; "
               "keyed paths must share one canonical-form definition")
    hint = ("use repro.store.canonical.canonical_blob (keys/checksums) or "
            "suppress with '# repro: allow[REP002] -- <why this output is "
            "not keyed>'")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module == _CANONICAL_MODULE:
            return
        # Names ``dumps``/``dump`` bound via ``from json import ...`` count
        # too; track what this file imported them as.
        json_aliases: set[str] = set()
        direct_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "json":
                        json_aliases.add(alias.asname or "json")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "json" and node.level == 0:
                    for alias in node.names:
                        if alias.name in ("dumps", "dump"):
                            direct_names.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged = False
            if isinstance(func, ast.Attribute) and func.attr in ("dumps", "dump"):
                if isinstance(func.value, ast.Name) \
                        and func.value.id in json_aliases:
                    flagged = True
            elif isinstance(func, ast.Name) and func.id in direct_names:
                flagged = True
            if flagged:
                yield ctx.finding(
                    self, node,
                    f"raw json.{func.attr if isinstance(func, ast.Attribute) else func.id}"  # noqa: E501
                    " outside repro.store.canonical; a keyed path here forks "
                    "the cache-key definition")
