"""REP006 float-equality: ``==``/``!=`` against float expressions.

The water-filling bug (fixed in PR 9): an energy form computed
``lambda0 * exp(...)`` and compared the result with ``==`` to decide a
degenerate bracket; at extreme speeds the product underflowed to a value
that compared unequal, and NaNs propagated out of the closed form.  Exact
equality on computed floats is almost always a latent underflow/rounding
bug -- the robust forms are ``math.isclose``, an explicit epsilon, or
restructuring so the sentinel is not a computed float.

The rule flags ``==``/``!=`` comparisons in which any operand is
*syntactically* float-valued: a float literal, arithmetic containing a
float literal, or a ``float(...)``/``np.float64(...)`` cast.  Deliberate
exact comparisons (bisection endpoints hit exactly, simplex zero-pivot
skips, masks over values assigned -- not computed -- as ``0.0``) document
themselves with ``# repro: allow[REP006] -- <reason>``; symbolic
operator-overloading expressions (LP constraint builders) are the other
legitimate suppression class.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Finding, Rule

_FLOAT_CASTS = frozenset({"float", "float32", "float64", "longdouble"})


def _is_floatish(node: ast.AST, depth: int = 0) -> bool:
    """Is ``node`` syntactically a float-valued expression?"""
    if depth > 4:           # deep expressions: stay cheap and conservative
        return False
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand, depth + 1)
    if isinstance(node, ast.BinOp):
        return (_is_floatish(node.left, depth + 1)
                or _is_floatish(node.right, depth + 1))
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _FLOAT_CASTS
    return False


class FloatEqualityRule(Rule):
    rule_id = "REP006"
    name = "float-equality"
    summary = "== / != comparison against a float-valued expression"
    hint = ("compare with math.isclose / an explicit tolerance, or "
            "restructure so the sentinel is assigned rather than computed; "
            "suppress with '# repro: allow[REP006] -- <why exact equality "
            "is sound here>'")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left) or _is_floatish(right):
                    token = "==" if isinstance(op, ast.Eq) else "!="
                    yield ctx.finding(
                        self, node,
                        f"float {token} comparison; exact equality on "
                        "computed floats is the underflow/rounding bug "
                        "class behind the water-filling NaN")
                    break
