"""REP005 lock-discipline: ``# guarded-by`` attributes touched lock-free.

The serving tier is thread-per-connection: six modules (engine, server,
result store, coalescer, gcscope, the api front door) share mutable state
across handler threads behind ``threading`` locks.  The convention -- and
what this rule machine-checks -- is that every such attribute *declares*
its lock where it is initialised::

    self._index: OrderedDict[...] = OrderedDict()   # guarded-by: _lock

and is then only read or written inside ``with self._lock:`` (or
``with _lock:`` for module-level globals declared the same way).  A helper
that is only ever called with the lock already held declares that contract
on its ``def`` line with ``# requires: _lock``.

Scope rules keep the check honest rather than merely lexical: the lock
must be held in the *same* function -- a nested ``def`` (thread target,
callback) does not inherit the enclosing ``with``, because it runs later,
after the lock is released.  ``__init__`` is exempt for instance
attributes (the object is not shared yet).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Finding, Rule

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _lock_token(expr: ast.AST) -> str | None:
    """``self._lock`` -> 'self._lock'; bare ``_lock`` -> '_lock'."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name) \
            and expr.value.id == "self":
        return f"self.{expr.attr}"
    return None


def _requires_locks(ctx: FileContext, func: _FunctionNode) -> set[str]:
    """Locks a ``# requires: <lock>`` marker grants for this function."""
    first = func.lineno
    last = func.body[0].lineno if func.body else func.lineno
    granted: set[str] = set()
    for lineno in range(first, last + 1):
        lock = ctx.requires_lines.get(lineno)
        if lock:
            granted.update((lock, f"self.{lock}"))
    return granted


class _FunctionChecker(ast.NodeVisitor):
    """Walk one function body tracking which locks are lexically held."""

    def __init__(self, rule: Rule, ctx: FileContext,
                 instance_guards: dict[str, str],
                 global_guards: dict[str, str],
                 held: set[str], check_instance: bool) -> None:
        self.rule = rule
        self.ctx = ctx
        self.instance_guards = instance_guards
        self.global_guards = global_guards
        self.held = held
        self.check_instance = check_instance
        self.findings: list[Finding] = []

    def visit_With(self, node: ast.With) -> None:
        added = []
        for item in node.items:
            token = _lock_token(item.context_expr)
            if token is not None and token not in self.held:
                self.held.add(token)
                added.append(token)
        for child in node.body:
            self.visit(child)
        for token in added:
            self.held.discard(token)

    def _enter_nested(self, func: _FunctionNode) -> None:
        # A nested def runs after the enclosing with-block exits: it gets
        # only its own # requires grants, never the lexical lock state.
        nested = _FunctionChecker(self.rule, self.ctx, self.instance_guards,
                                  self.global_guards,
                                  _requires_locks(self.ctx, func),
                                  self.check_instance)
        for child in func.body:
            nested.visit(child)
        self.findings.extend(nested.findings)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_nested(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.check_instance and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            lock = self.instance_guards.get(node.attr)
            if lock is not None and f"self.{lock}" not in self.held \
                    and lock not in self.held:
                self.findings.append(self.ctx.finding(
                    self.rule, node,
                    f"self.{node.attr} is declared '# guarded-by: {lock}' "
                    f"but accessed without holding self.{lock}"))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        lock = self.global_guards.get(node.id)
        if lock is not None and lock not in self.held:
            self.findings.append(self.ctx.finding(
                self.rule, node,
                f"global {node.id} is declared '# guarded-by: {lock}' but "
                f"accessed without holding {lock}"))
        self.generic_visit(node)


class LockDisciplineRule(Rule):
    rule_id = "REP005"
    name = "lock-discipline"
    summary = ("attribute declared '# guarded-by: <lock>' read or written "
               "outside a 'with <lock>' block")
    hint = ("wrap the access in 'with self.<lock>:', or mark a helper that "
            "is only called under the lock with '# requires: <lock>' on its "
            "def line; suppress with '# repro: allow[REP005] -- <reason>'")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.guarded_lines:
            return
        # -- collect declarations -------------------------------------
        global_guards: dict[str, str] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                lock = ctx.guarded_lines.get(stmt.lineno)
                if lock is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        global_guards[target.id] = lock

        class_guards: dict[str, dict[str, str]] = {}
        for cls in [n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)]:
            guards: dict[str, str] = {}
            for node in ast.walk(cls):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    lock = ctx.guarded_lines.get(node.lineno)
                    if lock is None:
                        continue
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for target in targets:
                        if isinstance(target, ast.Attribute) \
                                and isinstance(target.value, ast.Name) \
                                and target.value.id == "self":
                            guards[target.attr] = lock
            if guards:
                class_guards[cls.name] = guards

        # -- check accesses -------------------------------------------
        findings: list[Finding] = []
        for cls in [n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)]:
            guards = class_guards.get(cls.name, {})
            for func in cls.body:
                if not isinstance(func, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                checker = _FunctionChecker(
                    self, ctx, guards, global_guards,
                    _requires_locks(ctx, func),
                    check_instance=func.name != "__init__")
                for child in func.body:
                    checker.visit(child)
                findings.extend(checker.findings)
        # Module-level functions see only the global guards.
        for func in ctx.tree.body:
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                checker = _FunctionChecker(
                    self, ctx, {}, global_guards,
                    _requires_locks(ctx, func), check_instance=False)
                for child in func.body:
                    checker.visit(child)
                findings.extend(checker.findings)
        yield from findings
