"""REP004 registry-bypass: direct imports of registered solver impls.

PR 3 unified ~17 solver entry points behind the registry/dispatch layer
precisely because direct calls had drifted: one entry point capped
enumeration at 12 tasks, another at 14, and the answer to "is this
instance admissible?" depended on which import you happened to call (the
12-vs-14 ``max_tasks`` drift re-fixed in PR 9).  The registry is where
size limits, default options and admissibility predicates live; importing
a registered implementation callable directly reintroduces exactly that
drift -- the call skips the descriptor's ``max_tasks`` and
``default_options``.

The rule parses ``repro/solvers/registry.py`` (AST only, no import) for
the ``impl="module:callable"`` strings and flags any ``from ... import``
of one of those callables outside the solver layer itself
(``repro.solvers.*``, the ``repro.continuous``/``repro.discrete``
algorithm packages, and test/benchmark trees, which exercise impls
directly on purpose).  Measurement code that *must* call a raw impl (e.g.
scaling studies timing the algorithm without dispatch overhead) documents
itself with ``# repro: allow[REP004] -- <reason>``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from functools import lru_cache
from pathlib import Path

from ..engine import FileContext, Finding, Rule

#: Module prefixes allowed to import impls directly: the solver layer and
#: the algorithm packages themselves.
_ALLOWED_PREFIXES = ("repro.solvers", "repro.continuous", "repro.discrete")

#: Path components under which direct impl imports are deliberate.
_ALLOWED_PATH_PARTS = frozenset({"tests", "benchmarks"})


@lru_cache(maxsize=1)
def registered_impls() -> dict[str, frozenset[str]]:
    """``{module: {callable, ...}}`` parsed from the registry source.

    The registry references impls lazily as ``"module:callable"`` strings,
    so its own source is the single machine-readable list of which
    callables are dispatch-managed.  Parsed with ``ast`` (never imported):
    the analyzer must not execute library code.
    """
    registry_path = Path(__file__).resolve().parents[2] / "solvers" / "registry.py"
    tree = ast.parse(registry_path.read_text(encoding="utf-8"),
                     filename=str(registry_path))
    impls: dict[str, set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if keyword.arg == "impl" and isinstance(keyword.value, ast.Constant) \
                    and isinstance(keyword.value.value, str) \
                    and ":" in keyword.value.value:
                module, _, callable_name = keyword.value.value.partition(":")
                impls.setdefault(module, set()).add(callable_name)
    return {module: frozenset(names) for module, names in impls.items()}


def _resolve_relative(module: str, *, package: str,
                      level: int) -> str | None:
    """Absolute module name of a (possibly relative) ``from`` import."""
    if level == 0:
        return module
    parts = package.split(".")
    if level > len(parts):
        return None
    base = parts[:len(parts) - (level - 1)]
    return ".".join(base + ([module] if module else []))


class RegistryBypassRule(Rule):
    rule_id = "REP004"
    name = "registry-bypass"
    summary = ("direct import of a registry-managed solver implementation; "
               "skips the descriptor's size limits and default options")
    hint = ("call repro.solvers.dispatch.solve(problem, solver=<name>) or "
            "look the descriptor up via repro.solvers.registry; suppress "
            "with '# repro: allow[REP004] -- <why dispatch must be "
            "bypassed>'")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if any(part in _ALLOWED_PATH_PARTS for part in ctx.path.parts):
            return
        if ctx.module.startswith(_ALLOWED_PREFIXES):
            return
        impls = registered_impls()
        # Relative imports resolve against the file's package: the module
        # itself for a package __init__, its parent otherwise.
        package = ctx.module if ctx.path.name == "__init__.py" \
            else ctx.module.rpartition(".")[0]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            absolute = _resolve_relative(node.module or "", package=package,
                                         level=node.level)
            if absolute is None:
                continue
            managed = impls.get(absolute)
            if not managed:
                continue
            for alias in node.names:
                if alias.name in managed:
                    yield ctx.finding(
                        self, node,
                        f"direct import of registry-managed solver impl "
                        f"{absolute}:{alias.name}; calling it skips the "
                        "registry's size limits and default options")
