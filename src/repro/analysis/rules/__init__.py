"""The rule catalogue: every repo-specific invariant as one module.

``RULE_CLASSES`` is the registry the engine instantiates; keep it in
rule-id order.  To add a rule: copy the shape of an existing module
(subclass :class:`repro.analysis.engine.Rule`, implement ``check`` as a
generator that yields via ``ctx.finding`` so suppression comments keep
working), append the class here, add a bad/good fixture pair under
``tests/fixtures/analysis/`` and a catalogue row in DESIGN.md.
"""

from __future__ import annotations

from .rep001_order import NondeterministicOrderRule
from .rep002_canonical_json import NonCanonicalJsonRule
from .rep003_seed_discipline import SeedDisciplineRule
from .rep004_registry_bypass import RegistryBypassRule
from .rep005_lock_discipline import LockDisciplineRule
from .rep006_float_equality import FloatEqualityRule

RULE_CLASSES = [
    NondeterministicOrderRule,
    NonCanonicalJsonRule,
    SeedDisciplineRule,
    RegistryBypassRule,
    LockDisciplineRule,
    FloatEqualityRule,
]

__all__ = ["RULE_CLASSES"]
