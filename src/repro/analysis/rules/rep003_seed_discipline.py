"""REP003 seed-discipline: RNG construction outside ``repro.core.rng``.

Reproducibility across processes (and across ``--jobs 1`` vs ``--jobs N``
campaign runs) rests on exactly one seed-derivation policy:
:func:`repro.core.rng.resolve_seed` / :func:`spawn_child_seeds` /
:func:`resolve_rng`.  An ad-hoc ``np.random.default_rng()`` or stdlib
``random.*`` call sidesteps that policy -- it cannot participate in
deterministic child-seed spawning, and a ``default_rng()`` with no seed
silently injects OS entropy into what a campaign records as a
deterministic result.

The rule flags RNG *construction and global-state* calls outside
``repro.core.rng``: ``numpy.random.default_rng`` / ``seed`` /
``RandomState`` / ``SeedSequence`` / ``get_state`` / ``set_state`` and any
call through the stdlib ``random`` module.  Drawing from an existing
``Generator`` object someone passed in is fine -- that generator was
resolved through the policy upstream.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Finding, Rule

#: The one module allowed to construct generators and derive seeds.
_RNG_MODULE = "repro.core.rng"

#: numpy.random attributes that construct generators or touch global state.
_NP_RANDOM_CALLS = frozenset({"default_rng", "seed", "RandomState",
                              "SeedSequence", "get_state", "set_state"})


class SeedDisciplineRule(Rule):
    rule_id = "REP003"
    name = "seed-discipline"
    summary = ("RNG constructed outside repro.core.rng "
               "(np.random.default_rng / RandomState / stdlib random.*)")
    hint = ("route seeds through repro.core.rng (resolve_seed, resolve_rng, "
            "spawn_child_seeds) so child-seed derivation stays one policy; "
            "suppress with '# repro: allow[REP003] -- <reason>'")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module == _RNG_MODULE:
            return
        numpy_aliases: set[str] = set()          # import numpy as np
        np_random_aliases: set[str] = set()      # from numpy import random as r
        stdlib_random_aliases: set[str] = set()  # import random
        from_random_names: set[str] = set()      # from random import randint
        from_np_random_names: set[str] = set()   # from numpy.random import ...
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        np_random_aliases.add(alias.asname or "numpy")
                    elif alias.name == "random":
                        stdlib_random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    for alias in node.names:
                        from_random_names.add(alias.asname or alias.name)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            np_random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name in _NP_RANDOM_CALLS:
                            from_np_random_names.add(alias.asname or alias.name)

        def is_np_random(expr: ast.AST) -> bool:
            """``np.random`` / ``numpy.random`` / an alias of it."""
            if isinstance(expr, ast.Attribute) and expr.attr == "random" \
                    and isinstance(expr.value, ast.Name) \
                    and expr.value.id in numpy_aliases:
                return True
            return isinstance(expr, ast.Name) and expr.id in np_random_aliases

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _NP_RANDOM_CALLS and is_np_random(func.value):
                    yield ctx.finding(
                        self, node,
                        f"np.random.{func.attr}(...) outside repro.core.rng "
                        "bypasses the one seed-derivation policy")
                elif isinstance(func.value, ast.Name) \
                        and func.value.id in stdlib_random_aliases:
                    yield ctx.finding(
                        self, node,
                        f"stdlib random.{func.attr}(...) draws from hidden "
                        "global state; campaigns cannot reproduce it")
            elif isinstance(func, ast.Name) and (
                    func.id in from_random_names
                    or func.id in from_np_random_names):
                yield ctx.finding(
                    self, node,
                    f"{func.id}(...) (imported from a random module) outside "
                    "repro.core.rng bypasses the seed-derivation policy")
