"""REP001 nondeterministic-order: sets iterated into ordered constructs.

The bug this descends from: PR 4's golden regressions caught
``list(set(edges))`` feeding a hash-randomised edge order into the convex
solver, so the "same" problem produced different results across processes
(``PYTHONHASHSEED``).  Set iteration order is undefined; the moment it is
materialised into a sequence -- ``list()``/``tuple()``, ``enumerate``,
``zip``, ``str.join``, a ``for`` loop building ordered state, a list
comprehension -- that nondeterminism leaks into results, cache keys and
wire payloads.

The rule flags order-sensitive consumption of expressions that are
*statically known* to be sets: set literals/comprehensions,
``set(...)``/``frozenset(...)`` calls, and local names assigned one of
those in the same function scope.  ``sorted(...)`` is the canonical fix
and is never flagged; unordered consumers (membership tests, ``len``,
``min``/``max``, set algebra) are fine.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Finding, Rule

#: Callables whose output order mirrors their input iteration order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "zip",
                                    "iter", "next", "reversed"})


def _is_set_expr(node: ast.AST, local_sets: set[str]) -> bool:
    """Is ``node`` statically known to evaluate to a set/frozenset?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in local_sets:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # Set algebra keeps set-ness; requiring either side known avoids
        # claiming int/bool bitwise arithmetic.
        return (_is_set_expr(node.left, local_sets)
                or _is_set_expr(node.right, local_sets))
    return False


class _Scope(ast.NodeVisitor):
    """One function (or module) body: track set-typed locals, flag uses."""

    def __init__(self, rule: "NondeterministicOrderRule",
                 ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.local_sets: set[str] = set()
        self.findings: list[Finding] = []

    # -- nested scopes get their own tracker ---------------------------
    def _enter_nested(self, node: ast.AST) -> None:
        nested = _Scope(self.rule, self.ctx)
        for child in ast.iter_child_nodes(node):
            nested.visit(child)
        self.findings.extend(nested.findings)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_nested(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter_nested(node)

    # -- set-typed local inference -------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if _is_set_expr(node.value, self.local_sets):
                self.local_sets.add(name)
            else:
                self.local_sets.discard(name)    # rebound to a non-set
        self.generic_visit(node)

    # -- order-sensitive consumers -------------------------------------
    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(self.ctx.finding(
            self.rule, node,
            f"set iterated in order-sensitive position ({what}); set order "
            "is hash-randomised and leaks nondeterminism into anything "
            "ordered built from it"))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS:
            for arg in node.args:
                if _is_set_expr(arg, self.local_sets):
                    self._flag(node, f"{func.id}()")
                    break
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            if node.args and _is_set_expr(node.args[0], self.local_sets):
                self._flag(node, "str.join()")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self.local_sets):
            self._flag(node, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST,
                             generators: list[ast.comprehension],
                             what: str) -> None:
        for gen in generators:
            if _is_set_expr(gen.iter, self.local_sets):
                self._flag(node, what)
                break
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, node.generators, "list comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        # A generator feeding sorted()/sum-of-ints is harmless, but the
        # engine cannot see the consumer from here; set->set/dict comps
        # stay exempt below, everything else is worth a look (or an
        # explicit allow with the reason order cannot matter).
        self._check_comprehension(node, node.generators,
                                  "generator expression")

    # SetComp/DictComp over a set rebuild unordered containers: exempt.


class NondeterministicOrderRule(Rule):
    rule_id = "REP001"
    name = "nondeterministic-order"
    summary = ("set/frozenset iterated into an order-sensitive construct "
               "(list/tuple/enumerate/zip/join/for/comprehension)")
    hint = ("wrap the set in sorted(...) before ordering matters, or keep "
            "an ordered container from the start; suppress with "
            "'# repro: allow[REP001] -- <why order cannot matter>'")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scope = _Scope(self, ctx)
        for child in ast.iter_child_nodes(ctx.tree):
            scope.visit(child)
        yield from scope.findings
