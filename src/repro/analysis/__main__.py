"""``python -m repro.analysis``: the lint engine's command-line front end.

Exit status: 0 when every finding is suppressed (or none exist), 1 when
unsuppressed findings remain, 2 for usage errors -- the same contract
``make analyze`` and the CI step rely on.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from .engine import (
    AnalysisError,
    all_rules,
    analyze_paths,
    render_json,
    render_text,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis: the REP001-REP006 "
                    "invariant rules over Python sources.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyse "
                             "(default: src/repro)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON report on stdout")
    parser.add_argument("--rules", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all), e.g. REP001,REP005")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--include-suppressed", action="store_true",
                        help="show suppressed findings in the report "
                             "(they never affect the exit status)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name:24s} {rule.summary}")
        return 0
    if args.rules:
        wanted = {part.strip().upper() for part in args.rules.split(",")
                  if part.strip()}
        known = {rule.rule_id for rule in rules}
        unknown = wanted - known
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                  f"known: {', '.join(sorted(known))}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]
    try:
        findings = analyze_paths(args.paths, rules=rules)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(render_json(findings,
                              include_suppressed=args.include_suppressed))
        else:
            print(render_text(findings,
                              include_suppressed=args.include_suppressed))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; the findings still
        # determine the exit status.  Point stdout at devnull so the
        # interpreter's exit-time flush does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 1 if any(not f.suppressed for f in findings) else 0


if __name__ == "__main__":
    raise SystemExit(main())
