"""Vectorized Monte-Carlo simulation: all trials at once on compiled arrays.

The scalar engine (:func:`repro.simulation.engine.simulate_schedule`) walks
the augmented DAG in Python once per trial; at the 4000+ trials of the
reliability experiments that Python interpretation dominates the cost.  The
batch engine exploits the structure of the problem instead:

* the full ``(trials, executions)`` fault matrix is drawn in **one** RNG
  call against the per-execution failure probabilities precomputed by
  :func:`~repro.simulation.compile.compile_schedule`;
* the paper's re-execution semantics (at most two attempts, a successful
  first attempt cancels the scheduled retry) reduce to boolean masks over
  that matrix, yielding per-trial per-task durations, energies and attempt
  counts as dense arrays;
* finish times are propagated in topological order of the augmented graph,
  one task at a time but vectorized across *all* trials, so the Python loop
  is O(tasks), not O(tasks x trials).

The result matches the scalar engine's distribution exactly (same failure
probabilities, same timing semantics); only the stream of random numbers
differs, so matched-seed comparisons agree within statistical tolerance.
:func:`repro.simulation.montecarlo.run_monte_carlo` uses this engine by
default and keeps the scalar walk as the reference oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import Schedule
from .compile import CompiledSchedule, compile_schedule
from .faults import as_generator

__all__ = ["BatchSimulationResult", "simulate_batch"]


@dataclass(frozen=True, eq=False)
class BatchSimulationResult:
    """Per-trial outcome arrays of a batch simulation.

    All arrays have length ``trials``; aggregate statistics are exposed as
    properties so callers can build summaries without re-reducing by hand.
    Compared by identity (``eq=False``) because the fields are arrays.
    """

    trials: int
    successes: np.ndarray
    energies: np.ndarray
    makespans: np.ndarray
    attempts: np.ndarray
    worst_case_energy: float

    @property
    def success_rate(self) -> float:
        """Fraction of trials in which every task succeeded."""
        return float(np.mean(self.successes))

    @property
    def mean_energy(self) -> float:
        """Mean observed (actually executed) dynamic energy."""
        return float(np.mean(self.energies))

    @property
    def mean_makespan(self) -> float:
        """Mean observed makespan."""
        return float(np.mean(self.makespans))

    @property
    def max_makespan(self) -> float:
        """Largest makespan observed over all trials."""
        return float(np.max(self.makespans))

    @property
    def mean_attempts(self) -> float:
        """Mean number of executed attempts per trial."""
        return float(np.mean(self.attempts))


def simulate_batch(schedule: Schedule | CompiledSchedule, trials: int, *,
                   rng=None, poisson: bool = True,
                   skip_second_execution_on_success: bool = True) -> BatchSimulationResult:
    """Simulate ``trials`` independent runs of a schedule simultaneously.

    Parameters
    ----------
    schedule:
        A :class:`~repro.core.schedule.Schedule` (compiled on the fly,
        memoised) or an already-compiled :class:`CompiledSchedule`.
    trials:
        Number of independent Monte-Carlo runs.
    rng:
        NumPy generator, integer seed, or ``None`` for fresh entropy.
    poisson:
        Exact ``1 - exp(-exposure)`` failure probabilities when ``True``,
        the paper's first-order ``min(exposure, 1)`` when ``False``.
    skip_second_execution_on_success:
        Runtime behaviour (default): a successful first attempt cancels the
        scheduled re-execution.  ``False`` reproduces the worst-case
        accounting where both attempts always run.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    comp = schedule if isinstance(schedule, CompiledSchedule) else compile_schedule(schedule)
    gen = as_generator(rng)

    n = comp.num_tasks
    m = comp.num_executions
    if n == 0:
        zeros = np.zeros(trials)
        return BatchSimulationResult(
            trials=trials, successes=np.ones(trials, dtype=bool),
            energies=zeros, makespans=zeros.copy(),
            attempts=np.zeros(trials, dtype=np.intp),
            worst_case_energy=comp.worst_case_energy,
        )

    probabilities = comp.failure_probabilities(poisson=poisson)
    # One RNG call for the entire fault matrix: trials x executions.
    failed = gen.random((trials, m)) < probabilities if m else np.zeros((trials, 0), bool)

    first = comp.first_execution
    counts = comp.execution_counts
    i1 = np.flatnonzero(counts >= 1)   # tasks with at least one execution
    i2 = np.flatnonzero(counts == 2)   # tasks with a scheduled re-execution

    success = np.ones((trials, n), dtype=bool)
    duration = np.zeros((trials, n))
    energy = np.zeros((trials, n))
    attempts = np.zeros((trials, n), dtype=np.int8)

    f1 = failed[:, first[i1]]
    success[:, i1] = ~f1
    duration[:, i1] = comp.exec_duration[first[i1]]
    energy[:, i1] = comp.exec_energy[first[i1]]
    attempts[:, i1] = 1

    if i2.size:
        f1_two = failed[:, first[i2]]
        f2 = failed[:, first[i2] + 1]
        # A task with a retry succeeds when either attempt succeeds.
        success[:, i2] = ~f1_two | ~f2
        if skip_second_execution_on_success:
            second_runs = f1_two
        else:
            second_runs = np.ones_like(f1_two)
        duration[:, i2] += second_runs * comp.exec_duration[first[i2] + 1]
        energy[:, i2] += second_runs * comp.exec_energy[first[i2] + 1]
        attempts[:, i2] += second_runs

    # Finish-time propagation over the augmented topological order: the
    # augmented graph already serialises same-processor tasks, so a forward
    # pass gathering predecessor finish times is an exact event-driven
    # simulation of every trial at once.
    finish = np.empty((trials, n))
    for i in range(n):
        preds = comp.predecessors_of(i)
        if preds.size:
            ready = finish[:, preds].max(axis=1)
            np.add(ready, duration[:, i], out=finish[:, i])
        else:
            finish[:, i] = duration[:, i]

    return BatchSimulationResult(
        trials=trials,
        successes=success.all(axis=1),
        energies=energy.sum(axis=1),
        makespans=finish.max(axis=1),
        attempts=attempts.sum(axis=1, dtype=np.intp),
        worst_case_energy=comp.worst_case_energy,
    )
