"""Monte-Carlo estimation of schedule reliability, energy and makespan.

Experiment E11 validates the analytic reliability model against simulation:
for a given schedule the probability that *every* task succeeds (with its
scheduled re-executions) is, analytically, the product of the per-task
reliabilities; the Monte-Carlo estimate here should match it within the
binomial confidence interval, and the sweep over execution speeds reproduces
the qualitative claim that motivated the TRI-CRIT problem -- lowering the
speed to save energy degrades reliability unless re-execution is added.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.schedule import Schedule
from .batch import simulate_batch
from .compile import compile_schedule
from .engine import SimulationResult, simulate_schedule
from .faults import FaultInjector, as_generator

__all__ = ["MonteCarloSummary", "run_monte_carlo", "analytic_schedule_reliability"]


@dataclass(frozen=True)
class MonteCarloSummary:
    """Aggregated statistics over many simulated runs of one schedule."""

    trials: int
    success_rate: float
    success_stderr: float
    analytic_reliability: float
    mean_energy: float
    mean_worst_case_energy: float
    mean_makespan: float
    max_makespan: float
    mean_attempts: float

    @property
    def reliability_gap(self) -> float:
        """Monte-Carlo success rate minus the analytic prediction."""
        return self.success_rate - self.analytic_reliability

    def within_confidence(self, z: float = 4.0) -> bool:
        """Is the analytic value within ``z`` standard errors of the estimate?

        The standard error is taken under the *analytic* success probability
        (the null hypothesis being tested); this avoids the degenerate case
        where every trial succeeded and the empirical standard error
        collapses to zero.
        """
        p = min(max(self.analytic_reliability, 0.0), 1.0)
        stderr_analytic = math.sqrt(max(p * (1.0 - p), 1e-12) / self.trials)
        margin = max(z * max(self.success_stderr, stderr_analytic), 1e-9)
        return abs(self.reliability_gap) <= margin


def analytic_schedule_reliability(schedule: Schedule, *, poisson: bool = True) -> float:
    """Product of per-task reliabilities (independent transient faults).

    With ``poisson=True`` the exact per-execution failure probability
    ``1 - exp(-exposure)`` is used, matching the simulator's default; with
    ``poisson=False`` the paper's first-order expression is used instead.

    The per-execution exposures and the reliability model are taken from the
    compiled form of the schedule (cached on the schedule instance), so
    repeated calls cost O(executions) with no ``fault_rate`` recomputation.
    """
    return compile_schedule(schedule).analytic_reliability(poisson=poisson)


def run_monte_carlo(schedule: Schedule, trials: int, *, seed=0,
                    poisson: bool = True,
                    skip_second_execution_on_success: bool = True,
                    engine: str = "batch") -> MonteCarloSummary:
    """Simulate ``trials`` independent runs of ``schedule`` and aggregate them.

    Parameters
    ----------
    seed:
        Integer seed or :class:`numpy.random.Generator`.
    engine:
        ``"batch"`` (default) runs all trials at once through the vectorized
        kernel of :mod:`repro.simulation.batch`; ``"scalar"`` keeps the
        per-trial walk of :func:`~repro.simulation.engine.simulate_schedule`
        as a reference oracle.  Both sample the same per-execution failure
        probabilities, so their summaries agree within statistical tolerance
        (the random streams differ).
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    if engine not in ("batch", "scalar"):
        raise ValueError(f"unknown engine {engine!r}; expected 'batch' or 'scalar'")
    rng = as_generator(seed)
    worst_case = schedule.energy()

    if engine == "batch":
        batch = simulate_batch(
            schedule, trials, rng=rng, poisson=poisson,
            skip_second_execution_on_success=skip_second_execution_on_success,
        )
        rate = batch.success_rate
        energies = batch.energies
        makespans = batch.makespans
        attempts = batch.attempts
    else:
        model = schedule.platform.reliability()
        injector = FaultInjector(model, rng, poisson=poisson)
        successes = 0
        energies = np.empty(trials)
        makespans = np.empty(trials)
        attempts = np.empty(trials)
        for k in range(trials):
            result = simulate_schedule(
                schedule, injector=injector,
                skip_second_execution_on_success=skip_second_execution_on_success,
            )
            successes += int(result.success)
            energies[k] = result.energy
            makespans[k] = result.makespan
            attempts[k] = result.num_attempts
        rate = successes / trials

    stderr = math.sqrt(max(rate * (1.0 - rate), 1e-12) / trials)
    return MonteCarloSummary(
        trials=trials,
        success_rate=rate,
        success_stderr=stderr,
        analytic_reliability=analytic_schedule_reliability(schedule, poisson=poisson),
        mean_energy=float(np.mean(energies)),
        mean_worst_case_energy=worst_case,
        mean_makespan=float(np.mean(makespans)),
        max_makespan=float(np.max(makespans)),
        mean_attempts=float(np.mean(attempts)),
    )
