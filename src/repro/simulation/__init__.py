"""Fault-injecting execution simulator and Monte-Carlo reliability estimation.

Two engines share the same fault model: the scalar walk of
:mod:`repro.simulation.engine` (one run at a time, full trace) and the
vectorized kernel of :mod:`repro.simulation.batch`, which lowers a schedule
to flat arrays (:mod:`repro.simulation.compile`) and simulates all
Monte-Carlo trials simultaneously.  :func:`run_monte_carlo` dispatches
between them via its ``engine`` argument.
"""

from .batch import BatchSimulationResult, simulate_batch
from .compile import CompiledSchedule, compile_schedule
from .engine import SimulationResult, TraceEvent, simulate_schedule
from .faults import FaultInjector, as_generator
from .montecarlo import (
    MonteCarloSummary,
    analytic_schedule_reliability,
    run_monte_carlo,
)

__all__ = [
    "FaultInjector",
    "as_generator",
    "TraceEvent",
    "SimulationResult",
    "simulate_schedule",
    "CompiledSchedule",
    "compile_schedule",
    "BatchSimulationResult",
    "simulate_batch",
    "MonteCarloSummary",
    "run_monte_carlo",
    "analytic_schedule_reliability",
]
