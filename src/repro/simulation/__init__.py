"""Fault-injecting execution simulator and Monte-Carlo reliability estimation."""

from .engine import SimulationResult, TraceEvent, simulate_schedule
from .faults import FaultInjector
from .montecarlo import (
    MonteCarloSummary,
    analytic_schedule_reliability,
    run_monte_carlo,
)

__all__ = [
    "FaultInjector",
    "TraceEvent",
    "SimulationResult",
    "simulate_schedule",
    "MonteCarloSummary",
    "run_monte_carlo",
    "analytic_schedule_reliability",
]
