"""Schedule compilation: lower a :class:`~repro.core.schedule.Schedule` to arrays.

The scalar simulator walks the augmented DAG with Python dictionaries for
every simulated run; everything it needs, however, is a function of the
(immutable) schedule alone and can be computed *once* and reused by all
Monte-Carlo trials.  :func:`compile_schedule` performs that lowering:

* tasks are renumbered ``0..n-1`` in topological order of the augmented
  graph (precedence edges plus same-processor ordering edges), so any
  forward pass over the index range respects all constraints;
* the predecessor structure is stored in CSR form (``pred_ptr`` /
  ``pred_idx``) for cheap gathering of predecessor finish times;
* the executions of every positive-weight task are flattened into parallel
  arrays (``exec_ptr`` segments of at most two entries per task) carrying
  the per-execution duration, dynamic energy and integrated fault exposure
  ``sum_j lambda(f_j) t_j`` -- the quantity from which both failure
  probability forms (exact Poisson and the paper's first-order
  approximation) derive.

The compiled object is cached on the schedule instance, so repeated calls
(`run_monte_carlo`, `analytic_schedule_reliability`, the batch engine) pay
the graph walk exactly once.  :mod:`repro.simulation.batch` consumes these
arrays to simulate all trials simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.schedule import Schedule
from ..dag.taskgraph import TaskId

__all__ = ["CompiledSchedule", "compile_schedule"]

#: Attribute under which the compiled form is memoised on the schedule.
_CACHE_ATTR = "_compiled_schedule"


@dataclass(frozen=True, eq=False)
class CompiledSchedule:
    """Flat array form of a schedule, ready for vectorized simulation.

    Compared by identity (``eq=False``): the fields hold arrays and dicts,
    and one compiled object exists per schedule anyway.

    Tasks are indexed ``0..num_tasks-1`` in topological order of the
    augmented graph.  Executions of positive-weight tasks are flattened into
    the ``exec_*`` arrays; task ``i`` owns the half-open segment
    ``exec_ptr[i]:exec_ptr[i+1]`` (empty for zero-weight tasks, which
    trivially succeed and take no time).
    """

    schedule: Schedule
    order: tuple[TaskId, ...]
    task_index: dict[TaskId, int]
    processor: np.ndarray
    exec_ptr: np.ndarray
    exec_duration: np.ndarray
    exec_energy: np.ndarray
    exec_exposure: np.ndarray
    pred_ptr: np.ndarray
    pred_idx: np.ndarray
    worst_case_energy: float
    _prob_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    # shape accessors
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of tasks (including zero-weight ones)."""
        return len(self.order)

    @property
    def num_executions(self) -> int:
        """Total number of scheduled executions across all tasks."""
        return int(self.exec_ptr[-1])

    @property
    def first_execution(self) -> np.ndarray:
        """Index of the first execution of every task (segment start)."""
        return self.exec_ptr[:-1]

    @property
    def execution_counts(self) -> np.ndarray:
        """Number of executions per task: 0 (zero weight), 1 or 2."""
        return np.diff(self.exec_ptr)

    def predecessors_of(self, i: int) -> np.ndarray:
        """Indices of the augmented-graph predecessors of task ``i``."""
        return self.pred_idx[self.pred_ptr[i]:self.pred_ptr[i + 1]]

    # ------------------------------------------------------------------
    # probabilities
    # ------------------------------------------------------------------
    def failure_probabilities(self, *, poisson: bool = True) -> np.ndarray:
        """Per-execution failure probability (cached per form).

        With ``poisson=True`` the exact expression ``1 - exp(-exposure)``;
        with ``poisson=False`` the paper's first-order form
        ``min(exposure, 1)``.
        """
        key = bool(poisson)
        cached = self._prob_cache.get(key)
        if cached is None:
            if key:
                cached = -np.expm1(-self.exec_exposure)
            else:
                cached = np.minimum(self.exec_exposure, 1.0)
            cached = np.clip(cached, 0.0, 1.0)
            cached.setflags(write=False)
            self._prob_cache[key] = cached
        return cached

    def analytic_reliability(self, *, poisson: bool = True) -> float:
        """Product of per-task success probabilities, fully vectorized.

        A task with two executions fails only when both attempts fail; the
        whole run succeeds when every positive-weight task succeeds.
        """
        key = ("analytic", bool(poisson))
        cached = self._prob_cache.get(key)
        if cached is None:
            p = self.failure_probabilities(poisson=poisson)
            first = self.first_execution
            counts = self.execution_counts
            failure = np.ones(self.num_tasks)
            one_plus = counts >= 1
            failure[one_plus] = p[first[one_plus]]
            two = counts == 2
            failure[two] *= p[first[two] + 1]
            cached = float(np.prod(1.0 - failure[one_plus]))
            self._prob_cache[key] = cached
        return cached


def compile_schedule(schedule: Schedule) -> CompiledSchedule:
    """Lower ``schedule`` to a :class:`CompiledSchedule` (memoised).

    The result is cached on the schedule instance: schedules are immutable
    once constructed, so a second call returns the same object without
    re-walking the DAG.
    """
    cached = getattr(schedule, _CACHE_ATTR, None)
    if cached is not None:
        return cached

    graph = schedule.graph
    augmented = schedule.mapping.augmented_graph()
    order = tuple(augmented.topological_order())
    index = {t: i for i, t in enumerate(order)}
    n = len(order)
    exponent = schedule.platform.energy_model.exponent
    model = schedule.platform.reliability()

    processor = np.fromiter(
        (schedule.mapping.processor_of(t) for t in order), dtype=np.intp, count=n,
    )

    # Flatten executions (positive-weight tasks only) and their intervals.
    exec_ptr = np.zeros(n + 1, dtype=np.intp)
    iv_speed: list[float] = []
    iv_duration: list[float] = []
    iv_exec: list[int] = []
    m = 0
    for i, t in enumerate(order):
        if graph.weight(t) > 0:
            for execution in schedule.decisions[t].executions:
                for f, dt in execution.intervals:
                    iv_speed.append(f)
                    iv_duration.append(dt)
                    iv_exec.append(m)
                m += 1
        exec_ptr[i + 1] = m

    speeds = np.asarray(iv_speed, dtype=float)
    durs = np.asarray(iv_duration, dtype=float)
    owner = np.asarray(iv_exec, dtype=np.intp)
    rates = np.asarray(model.fault_rate(speeds), dtype=float) if m else np.empty(0)
    exec_duration = np.bincount(owner, weights=durs, minlength=m)
    exec_energy = np.bincount(owner, weights=speeds ** exponent * durs, minlength=m)
    exec_exposure = np.bincount(owner, weights=rates * durs, minlength=m)

    # Predecessor structure of the augmented graph in CSR form.
    pred_lists = [
        np.sort(np.fromiter((index[p] for p in augmented.predecessors(t)),
                            dtype=np.intp))
        for t in order
    ]
    pred_ptr = np.zeros(n + 1, dtype=np.intp)
    np.cumsum([len(preds) for preds in pred_lists], out=pred_ptr[1:])
    pred_idx = (np.concatenate(pred_lists) if n else np.empty(0, dtype=np.intp))

    for arr in (processor, exec_ptr, exec_duration, exec_energy, exec_exposure,
                pred_ptr, pred_idx):
        arr.setflags(write=False)

    compiled = CompiledSchedule(
        schedule=schedule,
        order=order,
        task_index=index,
        processor=processor,
        exec_ptr=exec_ptr,
        exec_duration=exec_duration,
        exec_energy=exec_energy,
        exec_exposure=exec_exposure,
        pred_ptr=pred_ptr,
        pred_idx=pred_idx,
        worst_case_energy=schedule.energy(),
    )
    try:
        setattr(schedule, _CACHE_ATTR, compiled)
    except AttributeError:  # pragma: no cover - Schedule has a __dict__ today
        pass
    return compiled
