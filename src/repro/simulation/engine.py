"""Event-driven execution of a schedule on ``p`` processors with faults.

The solvers reason about *worst-case* quantities (every re-executed task is
charged both executions).  The simulator executes a schedule the way a
runtime would: a task becomes ready when all its predecessors have finished,
a processor runs its assigned tasks in the mapping order, the first
execution of a task is attempted and, if a transient fault strikes it and a
second execution is scheduled, the task is retried; if the retry also fails
(or no retry was provisioned) the task -- and the whole application run --
is marked failed.

The output (:class:`SimulationResult`) reports the observed makespan, the
*actual* energy (only the executions that really ran), the worst-case energy
(for cross-checking against the analytic accounting), the set of failed
tasks and the full execution trace.  Monte-Carlo aggregation lives in
:mod:`repro.simulation.montecarlo`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.schedule import Schedule
from ..dag.taskgraph import TaskId
from .faults import FaultInjector

__all__ = ["TraceEvent", "SimulationResult", "simulate_schedule"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed attempt of a task."""

    task_id: TaskId
    attempt: int
    processor: int
    start: float
    end: float
    mean_speed: float
    energy: float
    failed: bool


@dataclass
class SimulationResult:
    """Outcome of one simulated run of a schedule."""

    makespan: float
    energy: float
    worst_case_energy: float
    success: bool
    failed_tasks: list[TaskId]
    trace: list[TraceEvent] = field(default_factory=list)

    @property
    def num_attempts(self) -> int:
        return len(self.trace)

    def energy_by_processor(self, num_processors: int) -> list[float]:
        out = [0.0] * num_processors
        for event in self.trace:
            out[event.processor] += event.energy
        return out


def simulate_schedule(schedule: Schedule, *, injector: FaultInjector | None = None,
                      rng=None, skip_second_execution_on_success: bool = True) -> SimulationResult:
    """Execute ``schedule`` once, injecting transient faults.

    Parameters
    ----------
    injector:
        Fault injector; when ``None`` a fault-free run is performed (useful
        to check that the simulated makespan matches the analytic one).
    skip_second_execution_on_success:
        The runtime behaviour: a successful first attempt cancels the
        scheduled re-execution (saving its time and energy).  Setting this
        to ``False`` reproduces the worst-case accounting of the paper.
    """
    if injector is None and rng is not None:
        injector = FaultInjector(schedule.platform.reliability(), rng)
    mapping = schedule.mapping
    graph = schedule.graph
    augmented = mapping.augmented_graph()
    exponent = schedule.platform.energy_model.exponent

    topo = augmented.topological_order()
    finish_time: dict[TaskId, float] = {}
    processor_free = [0.0] * mapping.num_processors
    trace: list[TraceEvent] = []
    failed_tasks: list[TaskId] = []
    actual_energy = 0.0

    # Draw every failure indicator of this run in one batched RNG call; the
    # indicator of an attempt that never runs is simply discarded.  The
    # execution list and offsets are trial-invariant, so they are cached on
    # the schedule (and the injector caches the probability vector against
    # the same tuple), leaving only the uniform draws per simulated run.
    failures = None
    offset_of: dict[TaskId, int] = {}
    if injector is not None:
        plan = getattr(schedule, "_scalar_run_plan", None)
        if plan is None:
            run_executions: list = []
            offsets: dict[TaskId, int] = {}
            for t in topo:
                if graph.weight(t) > 0:
                    offsets[t] = len(run_executions)
                    run_executions.extend(schedule.decisions[t].executions)
            plan = (tuple(run_executions), offsets)
            schedule._scalar_run_plan = plan
        executions, offset_of = plan
        failures = injector.sample_failures(executions)

    # Tasks are processed in topological order of the augmented graph; since
    # the augmented graph already serialises same-processor tasks, a simple
    # ready-queue in that order is an exact event-driven simulation.
    for t in topo:
        decision = schedule.decisions[t]
        proc = mapping.processor_of(t)
        ready_at = max((finish_time[p] for p in augmented.predecessors(t)), default=0.0)
        start = max(ready_at, processor_free[proc])
        clock = start
        task_success = graph.weight(t) <= 0  # zero-weight tasks trivially succeed
        for attempt, execution in enumerate(decision.executions):
            if graph.weight(t) <= 0:
                break
            failed = bool(failures[offset_of[t] + attempt]) if failures is not None else False
            end = clock + execution.duration
            energy = execution.energy(exponent)
            actual_energy += energy
            trace.append(TraceEvent(task_id=t, attempt=attempt, processor=proc,
                                    start=clock, end=end,
                                    mean_speed=execution.mean_speed(),
                                    energy=energy, failed=failed))
            clock = end
            if not failed:
                task_success = True
                if skip_second_execution_on_success:
                    break
        if not task_success:
            failed_tasks.append(t)
        finish_time[t] = clock
        processor_free[proc] = clock

    makespan = max(finish_time.values(), default=0.0)
    return SimulationResult(
        makespan=makespan,
        energy=actual_energy,
        worst_case_energy=schedule.energy(),
        success=not failed_tasks,
        failed_tasks=failed_tasks,
        trace=trace,
    )
