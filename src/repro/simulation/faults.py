"""Transient-fault injection following the paper's reliability model.

The simulator needs to decide, for every execution of every task, whether a
transient fault strikes it.  Faults arrive as a non-homogeneous Poisson
process whose rate depends on the current speed, ``lambda(f) = lambda0 *
exp(d (fmax-f)/(fmax-fmin))``; an execution made of constant-speed intervals
``(f_j, t_j)`` therefore fails with probability

    ``p = 1 - exp(-sum_j lambda(f_j) t_j)``,

which the paper (and :class:`~repro.core.reliability.ReliabilityModel`)
approximates to first order by ``sum_j lambda(f_j) t_j`` -- the two agree to
within ``p^2/2`` for the small per-task failure probabilities of interest.
:class:`FaultInjector` supports both forms so the Monte-Carlo experiments
can quantify the approximation error as well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.reliability import ReliabilityModel
from ..core.rng import resolve_rng
from ..core.schedule import Execution

__all__ = ["FaultInjector", "as_generator"]


def as_generator(rng) -> np.random.Generator:
    """Coerce ``rng`` into a NumPy generator.

    Accepts an existing :class:`numpy.random.Generator` (returned as-is), an
    integer seed, or ``None`` (fresh OS entropy); every simulation entry
    point routes its ``rng``/``seed`` argument through this helper so integer
    seeds work anywhere a generator does.
    """
    return resolve_rng(rng)


@dataclass
class FaultInjector:
    """Samples transient faults for executions.

    Parameters
    ----------
    model:
        The reliability model providing the speed-dependent fault rate.
    rng:
        NumPy random generator (or seed).
    poisson:
        When ``True`` (default) the failure probability is the exact Poisson
        expression ``1 - exp(-integral of lambda)``; when ``False`` the
        paper's first-order approximation ``integral of lambda`` is used.
    """

    model: ReliabilityModel
    rng: np.random.Generator
    poisson: bool = True

    def __init__(self, model: ReliabilityModel, rng=None, *, poisson: bool = True):
        self.model = model
        self.rng = as_generator(rng)
        self.poisson = poisson
        # Probability vectors keyed by the identity of the executions tuple:
        # the scalar engine passes the same (schedule-cached) tuple for every
        # trial, so the exposures are integrated once per schedule, not once
        # per simulated run.
        self._prob_cache: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def exposure(self, execution: Execution) -> float:
        """Integrated fault rate ``sum_j lambda(f_j) t_j`` of an execution."""
        return float(sum(self.model.fault_rate(f) * t for f, t in execution.intervals))

    def failure_probability(self, execution: Execution) -> float:
        """Probability that the execution is struck by at least one fault."""
        exposure = self.exposure(execution)
        if self.poisson:
            return 1.0 - math.exp(-exposure)
        return min(exposure, 1.0)

    def sample_failure(self, execution: Execution) -> bool:
        """Draw whether this execution fails."""
        return bool(self.rng.random() < self.failure_probability(execution))

    # ------------------------------------------------------------------
    # batched forms (one NumPy call for a whole simulated run)
    # ------------------------------------------------------------------
    def exposures(self, executions: Sequence[Execution]) -> np.ndarray:
        """Integrated fault rates of several executions as one array."""
        return np.fromiter(
            (self.exposure(e) for e in executions), dtype=float, count=len(executions),
        )

    def failure_probabilities(self, executions: Sequence[Execution]) -> np.ndarray:
        """Failure probability of each execution (vectorized counterpart)."""
        exposure = self.exposures(executions)
        if self.poisson:
            return -np.expm1(-exposure)
        return np.minimum(exposure, 1.0)

    def sample_failures(self, executions: Sequence[Execution]) -> np.ndarray:
        """Draw all failure indicators for one run in a single RNG call.

        The scalar engine consumes this boolean array instead of drawing one
        uniform per execution at Python level; entry ``k`` corresponds to
        ``executions[k]`` regardless of whether that attempt ends up running
        (unused draws are simply discarded).
        """
        if not len(executions):
            return np.zeros(0, dtype=bool)
        key = id(executions)
        entry = self._prob_cache.get(key)
        if entry is None or entry[0] is not executions:
            entry = (executions, self.failure_probabilities(executions))
            self._prob_cache[key] = entry
        return self.rng.random(len(executions)) < entry[1]

    def sample_fault_time(self, execution: Execution) -> float | None:
        """Time (from the execution's start) of the first fault, or ``None``.

        Sampled from the non-homogeneous Poisson process by walking the
        constant-rate intervals; used by the trace-producing simulator to
        place fault events inside executions.
        """
        elapsed = 0.0
        for f, t in execution.intervals:
            rate = float(self.model.fault_rate(f))
            if rate <= 0:
                elapsed += t
                continue
            gap = float(self.rng.exponential(1.0 / rate))
            if gap < t:
                return elapsed + gap
            elapsed += t
        return None
