"""Baseline scheduling policies the paper's global approach is compared against."""

from .policies import (
    BASELINES,
    greedy_reexecution,
    local_slack_reclaiming,
    no_dvfs,
    uniform_slowdown,
)

__all__ = [
    "no_dvfs",
    "uniform_slowdown",
    "local_slack_reclaiming",
    "greedy_reexecution",
    "BASELINES",
]
