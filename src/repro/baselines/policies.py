"""Baseline policies.

The paper positions its contribution against simpler approaches: running
everything at maximum speed (no DVFS at all), slowing everything uniformly,
and "a local approach such as backfilling" that reclaims slack task by task
instead of optimising the schedule as a whole.  These baselines are used by
the heuristic-comparison experiment (E9) and by the examples.

* :func:`no_dvfs` -- every task once at ``fmax`` (the energy upper bound and
  the most reliable single-execution schedule).
* :func:`uniform_slowdown` -- every task at the single lowest speed that
  still meets the deadline (and the reliability threshold for TRI-CRIT
  instances).
* :func:`local_slack_reclaiming` -- the backfilling-style local approach:
  keep the ``fmax`` start times, then stretch each task independently into
  the idle time in front of its successors, never reconsidering other tasks.
* :func:`greedy_reexecution` -- a naive TRI-CRIT baseline: a reliable
  single-execution schedule, then re-execute tasks in decreasing weight
  order whenever the extra time fits in the remaining deadline slack.
"""

from __future__ import annotations

import math

from ..core.problems import BiCritProblem, SolveResult, TriCritProblem
from ..core.schedule import Schedule, TaskDecision
from ..continuous.tricrit_chain import reexecution_speed_floor
from ..dag.taskgraph import TaskId

__all__ = [
    "no_dvfs",
    "uniform_slowdown",
    "local_slack_reclaiming",
    "greedy_reexecution",
    "BASELINES",
]


def _speed_floor(problem: BiCritProblem) -> float:
    """Slowest admissible single-execution speed (f_rel for TRI-CRIT)."""
    if isinstance(problem, TriCritProblem):
        return max(problem.reliability().frel, problem.platform.fmin)
    return problem.platform.fmin


def _admissible(problem: BiCritProblem, speed: float) -> float:
    """Round a target speed to an admissible one, never below the target."""
    model = problem.platform.speed_model
    speed = min(max(speed, model.fmin), model.fmax)
    if model.is_discrete:
        return model.round_up(speed)
    return speed


def _single_speed_result(problem: BiCritProblem, speeds: dict[TaskId, float],
                         solver: str, metadata: dict | None = None) -> SolveResult:
    graph = problem.graph
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        decisions[t] = TaskDecision.single(t, w, speeds.get(t, problem.platform.fmax))
    schedule = Schedule(problem.mapping, problem.platform, decisions)
    return SolveResult(schedule=schedule, energy=schedule.energy(), status="feasible",
                       solver=solver, metadata=metadata or {})


def no_dvfs(problem: BiCritProblem) -> SolveResult:
    """Everything at ``fmax``: maximum energy, maximum single-execution reliability."""
    fmax = problem.platform.fmax
    return _single_speed_result(problem, {t: fmax for t in problem.graph.tasks()},
                                "baseline-no-dvfs")


def uniform_slowdown(problem: BiCritProblem) -> SolveResult:
    """One common speed for every task, as low as the deadline allows."""
    graph = problem.graph
    augmented = problem.mapping.augmented_graph()
    # Longest weighted path of the augmented graph = makespan at unit speed.
    length = 0.0
    finish: dict[TaskId, float] = {}
    for t in augmented.topological_order():
        s = max((finish[p] for p in augmented.predecessors(t)), default=0.0)
        finish[t] = s + graph.weight(t)
    length = max(finish.values(), default=0.0)
    required = length / problem.deadline if problem.deadline > 0 else math.inf
    speed = max(required, _speed_floor(problem))
    if speed > problem.platform.fmax * (1.0 + 1e-12):
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver="baseline-uniform-slowdown",
                           metadata={"required_speed": required})
    speed = _admissible(problem, speed)
    return _single_speed_result(problem, {t: speed for t in graph.tasks()},
                                "baseline-uniform-slowdown",
                                {"uniform_speed": speed})


def local_slack_reclaiming(problem: BiCritProblem) -> SolveResult:
    """Per-task slack reclamation keeping the ``fmax`` start times fixed.

    Every task may only stretch into the window between its own ``fmax``
    start time and the earliest ``fmax`` start time of its successors (or
    the deadline for exit tasks).  This is the "local" strategy the paper's
    whole-schedule formulation is contrasted with: no start time ever moves,
    so slack created elsewhere in the schedule can never be used.
    """
    graph = problem.graph
    augmented = problem.mapping.augmented_graph()
    platform = problem.platform
    floor = _speed_floor(problem)
    fmax = platform.fmax

    start: dict[TaskId, float] = {}
    finish: dict[TaskId, float] = {}
    for t in augmented.topological_order():
        s = max((finish[p] for p in augmented.predecessors(t)), default=0.0)
        start[t] = s
        finish[t] = s + (graph.weight(t) / fmax if graph.weight(t) > 0 else 0.0)
    if max(finish.values(), default=0.0) > problem.deadline * (1.0 + 1e-9):
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver="baseline-local-slack",
                           metadata={"message": "infeasible even at fmax"})

    speeds: dict[TaskId, float] = {}
    for t in graph.tasks():
        w = graph.weight(t)
        if w <= 0:
            speeds[t] = fmax
            continue
        window_end = min(
            (start[s] for s in augmented.successors(t)), default=problem.deadline
        )
        window_end = min(window_end, problem.deadline)
        window = max(window_end - start[t], w / fmax)
        speed = max(w / window, floor)
        speeds[t] = _admissible(problem, min(speed, fmax))
    return _single_speed_result(problem, speeds, "baseline-local-slack")


def greedy_reexecution(problem: TriCritProblem) -> SolveResult:
    """Naive TRI-CRIT baseline: reliable schedule, then re-execute big tasks.

    Starting from the uniform reliable schedule, tasks are considered in
    decreasing weight order; a task is re-executed (both attempts at the
    slowest reliable equal speed) whenever the resulting schedule still
    meets the deadline and the change lowers the energy.
    """
    if not isinstance(problem, TriCritProblem):
        raise TypeError("greedy_reexecution is a TRI-CRIT baseline")
    base = uniform_slowdown(problem)
    if not base.feasible:
        return base
    model = problem.reliability()
    platform = problem.platform
    graph = problem.graph
    decisions = dict(base.require_schedule().decisions)
    current_energy = base.energy
    order = sorted(
        (t for t in graph.tasks() if graph.weight(t) > 0),
        key=lambda t: graph.weight(t), reverse=True,
    )
    accepted = []
    for t in order:
        w = graph.weight(t)
        floor = reexecution_speed_floor(model, w, platform.fmin)
        floor = _admissible(problem, floor)
        candidate = dict(decisions)
        candidate[t] = TaskDecision.reexecuted(t, w, floor, floor)
        schedule = Schedule(problem.mapping, platform, candidate)
        if schedule.makespan() <= problem.deadline * (1.0 + 1e-9):
            energy = schedule.energy()
            if energy < current_energy - 1e-12:
                decisions = candidate
                current_energy = energy
                accepted.append(t)
    schedule = Schedule(problem.mapping, platform, decisions)
    return SolveResult(schedule=schedule, energy=schedule.energy(), status="feasible",
                       solver="baseline-greedy-reexecution",
                       metadata={"reexecuted": sorted(map(str, accepted))})


#: Registry used by the experiment harness.
BASELINES = {
    "no_dvfs": no_dvfs,
    "uniform_slowdown": uniform_slowdown,
    "local_slack_reclaiming": local_slack_reclaiming,
}
