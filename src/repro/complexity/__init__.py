"""Executable complexity results: reductions and scaling probes."""

from .reductions import (
    PartitionReduction,
    partition_has_solution,
    partition_to_discrete_bicrit,
    subset_sum_to_tricrit_chain,
    verify_partition_reduction,
)
from .scaling import (
    ScalingPoint,
    fit_growth_exponent,
    measure_discrete_exact_scaling,
    measure_tricrit_chain_scaling,
    measure_vdd_lp_scaling,
)

__all__ = [
    "PartitionReduction",
    "partition_to_discrete_bicrit",
    "partition_has_solution",
    "verify_partition_reduction",
    "subset_sum_to_tricrit_chain",
    "ScalingPoint",
    "measure_vdd_lp_scaling",
    "measure_discrete_exact_scaling",
    "measure_tricrit_chain_scaling",
    "fit_growth_exponent",
]
