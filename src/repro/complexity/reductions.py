"""Executable polynomial-time reductions behind the paper's hardness results.

A complexity result cannot be "run", but its reduction can: this module
constructs, for classic NP-complete source problems, the scheduling
instances used to prove the paper's hardness claims, and the test-suite /
experiment E5 verify on small instances that solving the scheduling instance
exactly answers the source problem.  Two reductions are provided:

* :func:`partition_to_discrete_bicrit` -- 2-PARTITION reduces to the
  decision version of BI-CRIT under the DISCRETE (two-mode) model, the
  paper's Section IV claim that BI-CRIT DISCRETE / INCREMENTAL is
  NP-complete.

  Construction: given positive integers ``a_1..a_n`` of total ``2S``, build
  a single-processor instance with one task of weight ``a_i`` per integer
  and two admissible speeds ``{1, 2}``.  Running task ``i`` at speed 2
  saves ``a_i/2`` time but costs ``3 a_i`` extra energy, so with deadline
  ``D = 3S/2`` and energy budget ``E = 5S`` a feasible schedule exists iff
  some subset of the integers sums to exactly ``S``:

  - time:   ``2S - (1/2) sum_{i in A} a_i <= 3S/2``  iff  ``sum_A a_i >= S``
  - energy: ``2S + 3 sum_{i in A} a_i     <= 5S``    iff  ``sum_A a_i <= S``

* :func:`subset_sum_to_tricrit_chain` -- the combinatorial core of the
  TRI-CRIT hardness proof (Section III: NP-hard even on a single-processor
  linear chain): choosing *which* tasks to re-execute is a subset-selection
  problem whose time/energy trade-off mirrors SUBSET-SUM.  The construction
  here builds, for a SUBSET-SUM instance, a chain whose optimal re-execution
  set must occupy exactly the target amount of extra time; it is used as an
  adversarial instance family for the chain heuristics (the full formal
  reduction is in the companion report RR-7757).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from collections.abc import Sequence

from ..core.problems import BiCritProblem, TriCritProblem
from ..core.reliability import ReliabilityModel
from ..core.speeds import DiscreteSpeeds, ContinuousSpeeds
from ..dag.generators import chain
from ..platform.mapping import Mapping
from ..platform.platform import Platform

__all__ = [
    "PartitionReduction",
    "partition_to_discrete_bicrit",
    "partition_has_solution",
    "verify_partition_reduction",
    "subset_sum_to_tricrit_chain",
]


@dataclass(frozen=True)
class PartitionReduction:
    """The scheduling instance produced from a 2-PARTITION instance."""

    problem: BiCritProblem
    energy_budget: float
    deadline: float
    integers: tuple[int, ...]
    half_sum: float

    def decision(self, energy: float, *, tol: float = 1e-9) -> bool:
        """Interpret a solver's optimal energy as the 2-PARTITION answer."""
        return energy <= self.energy_budget * (1.0 + tol) + tol


def partition_to_discrete_bicrit(integers: Sequence[int]) -> PartitionReduction:
    """Build the BI-CRIT DISCRETE instance encoding a 2-PARTITION instance.

    The integers must be positive and of even total sum (otherwise the
    2-PARTITION answer is trivially "no"; the construction still works and
    the scheduling optimum then exceeds the energy budget).
    """
    values = [int(a) for a in integers]
    if not values or any(a <= 0 for a in values):
        raise ValueError("2-PARTITION needs a non-empty list of positive integers")
    total = sum(values)
    half = total / 2.0

    graph = chain([float(a) for a in values], prefix="P")
    mapping = Mapping.single_processor(graph)
    platform = Platform(1, DiscreteSpeeds([1.0, 2.0]))
    deadline = total - half / 2.0          # = 3S/2 when total = 2S
    energy_budget = total + 3.0 * half     # = 5S  when total = 2S
    problem = BiCritProblem(mapping=mapping, platform=platform, deadline=deadline)
    return PartitionReduction(problem=problem, energy_budget=energy_budget,
                              deadline=deadline, integers=tuple(values),
                              half_sum=half)


def partition_has_solution(integers: Sequence[int]) -> bool:
    """Reference answer to 2-PARTITION by subset-sum dynamic programming."""
    values = [int(a) for a in integers]
    total = sum(values)
    if total % 2 != 0:
        return False
    target = total // 2
    reachable = {0}
    for a in values:
        reachable |= {r + a for r in reachable if r + a <= target}
    return target in reachable


def verify_partition_reduction(integers: Sequence[int], *,
                               solver: str = "bruteforce") -> dict:
    """Solve both sides of the reduction and report whether they agree.

    ``solver`` selects the exact scheduling solver: ``"bruteforce"`` or
    ``"milp"``.  Returns a dict with the scheduling optimum, the energy
    budget, the derived decision and the direct 2-PARTITION answer.
    """
    # repro: allow[REP004] -- the reduction proof needs the raw exact
    # solvers: dispatch's max_tasks cap would reject the very instances
    # whose NP-hardness the reduction demonstrates
    from ..discrete.exact import (
        solve_bicrit_discrete_bruteforce,
        solve_bicrit_discrete_milp,
    )

    reduction = partition_to_discrete_bicrit(integers)
    if solver == "bruteforce":
        result = solve_bicrit_discrete_bruteforce(reduction.problem)
    elif solver == "milp":
        result = solve_bicrit_discrete_milp(reduction.problem)
    else:
        raise ValueError(f"unknown solver {solver!r}")
    scheduling_answer = reduction.decision(result.energy) if result.feasible else False
    partition_answer = partition_has_solution(integers)
    return {
        "integers": list(reduction.integers),
        "optimal_energy": result.energy,
        "energy_budget": reduction.energy_budget,
        "deadline": reduction.deadline,
        "scheduling_answer": scheduling_answer,
        "partition_answer": partition_answer,
        "agree": scheduling_answer == partition_answer,
        "solver": result.solver,
    }


def subset_sum_to_tricrit_chain(integers: Sequence[int], target: int, *,
                                fmax: float = 1.0, fmin: float = 0.05,
                                lambda0: float = 1e-5,
                                sensitivity: float = 3.0) -> TriCritProblem:
    """Adversarial TRI-CRIT chain instance derived from a SUBSET-SUM instance.

    One task of weight ``a_i`` per integer, single processor, continuous
    speeds.  The reliability threshold is set at ``f_rel = fmax`` so a task
    executed once must run at full speed; re-executing task ``i`` instead
    allows both attempts to run slower but occupies extra time roughly
    proportional to ``a_i``.  The deadline leaves exactly ``target/fmax``
    units of slack beyond the all-at-fmax schedule, so the energy-optimal
    re-execution set has to "fill" the slack the way a SUBSET-SUM solution
    fills the target -- the combinatorial structure the NP-hardness proof of
    the companion report exploits.  Experiment E7 uses these instances to
    stress the chain heuristic against the exact solver.
    """
    values = [int(a) for a in integers]
    if not values or any(a <= 0 for a in values):
        raise ValueError("SUBSET-SUM needs a non-empty list of positive integers")
    if target <= 0 or target > sum(values):
        raise ValueError("target must lie in (0, sum of integers]")
    graph = chain([float(a) for a in values], prefix="S")
    mapping = Mapping.single_processor(graph)
    reliability = ReliabilityModel(fmin=fmin, fmax=fmax, lambda0=lambda0,
                                   sensitivity=sensitivity, frel=fmax)
    platform = Platform(1, ContinuousSpeeds(fmin, fmax),
                        reliability_model=reliability)
    total = float(sum(values))
    deadline = (total + float(target)) / fmax
    return TriCritProblem(mapping=mapping, platform=platform, deadline=deadline)
