"""Exponential-vs-polynomial scaling probes (experiment E5 support).

The paper's complexity landscape is: BI-CRIT is polynomial under
VDD-HOPPING (a linear program) but NP-complete under DISCRETE /
INCREMENTAL; TRI-CRIT is NP-complete even under VDD-HOPPING and NP-hard on
a single-processor chain under CONTINUOUS.  These helpers measure observable
proxies of that landscape on families of growing instances:

* the size (variables/constraints) and solve time of the VDD-HOPPING LP
  grows polynomially with the number of tasks;
* the number of subsets / branch-and-bound nodes explored by the exact
  DISCRETE and TRI-CRIT solvers grows exponentially.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from ..core.problems import BiCritProblem, TriCritProblem
from ..core.reliability import ReliabilityModel
from ..core.speeds import ContinuousSpeeds, DiscreteSpeeds, VddHoppingSpeeds
from ..dag.generators import random_chain
from ..platform.mapping import Mapping
from ..platform.platform import Platform

__all__ = [
    "ScalingPoint",
    "measure_vdd_lp_scaling",
    "measure_discrete_exact_scaling",
    "measure_tricrit_chain_scaling",
    "fit_growth_exponent",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One measurement of a scaling sweep."""

    num_tasks: int
    seconds: float
    work_units: float  # LP variables, B&B nodes or subsets, depending on probe
    energy: float


def _chain_problem(n: int, seed: int, speed_model, *, slack: float = 1.6,
                   reliability: ReliabilityModel | None = None):
    graph = random_chain(n, seed=seed)
    mapping = Mapping.single_processor(graph)
    platform = Platform(1, speed_model, reliability_model=reliability)
    deadline = slack * graph.total_weight() / platform.fmax
    return graph, mapping, platform, deadline


def measure_vdd_lp_scaling(sizes: Sequence[int], *, seed: int = 0,
                           modes: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
                           backend: str = "scipy") -> list[ScalingPoint]:
    """LP size and solve time of BI-CRIT VDD-HOPPING on growing chains."""
    # repro: allow[REP004] -- scaling study times the raw algorithm;
    # dispatch overhead and size caps would distort the measurement
    from ..discrete.vdd_lp import build_vdd_lp, solve_bicrit_vdd_lp

    points = []
    for i, n in enumerate(sizes):
        _, mapping, platform, deadline = _chain_problem(
            n, seed + i, VddHoppingSpeeds(modes)
        )
        problem = BiCritProblem(mapping=mapping, platform=platform, deadline=deadline)
        model, _, _ = build_vdd_lp(problem)
        start = time.perf_counter()
        result = solve_bicrit_vdd_lp(problem, backend=backend)
        elapsed = time.perf_counter() - start
        points.append(ScalingPoint(num_tasks=n, seconds=elapsed,
                                   work_units=float(model.num_variables),
                                   energy=result.energy))
    return points


def measure_discrete_exact_scaling(sizes: Sequence[int], *, seed: int = 0,
                                   modes: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
                                   backend: str = "bnb") -> list[ScalingPoint]:
    """Search effort of the exact DISCRETE solver on growing chains."""
    # repro: allow[REP004] -- scaling study times the raw algorithm;
    # dispatch overhead and size caps would distort the measurement
    from ..discrete.exact import (
        solve_bicrit_discrete_bruteforce,
        solve_bicrit_discrete_milp,
    )

    points = []
    for i, n in enumerate(sizes):
        _, mapping, platform, deadline = _chain_problem(
            n, seed + i, DiscreteSpeeds(modes)
        )
        problem = BiCritProblem(mapping=mapping, platform=platform, deadline=deadline)
        start = time.perf_counter()
        if backend == "bruteforce":
            result = solve_bicrit_discrete_bruteforce(problem)
            work = float(result.metadata.get("assignments_evaluated", 0))
        else:
            result = solve_bicrit_discrete_milp(problem, backend="bnb")
            work = float(result.metadata.get("nodes_explored", 0))
        elapsed = time.perf_counter() - start
        points.append(ScalingPoint(num_tasks=n, seconds=elapsed, work_units=work,
                                   energy=result.energy))
    return points


def measure_tricrit_chain_scaling(sizes: Sequence[int], *, seed: int = 0,
                                  slack: float = 2.5) -> list[ScalingPoint]:
    """Subsets explored by the exact TRI-CRIT chain solver on growing chains."""
    # repro: allow[REP004] -- scaling study times the raw algorithm;
    # dispatch overhead and size caps would distort the measurement
    from ..continuous.tricrit_chain import solve_tricrit_chain_exact

    points = []
    for i, n in enumerate(sizes):
        reliability = ReliabilityModel(fmin=0.1, fmax=1.0)
        _, mapping, platform, deadline = _chain_problem(
            n, seed + i, ContinuousSpeeds(0.1, 1.0), slack=slack,
            reliability=reliability,
        )
        problem = TriCritProblem(mapping=mapping, platform=platform,
                                 deadline=deadline)
        start = time.perf_counter()
        result = solve_tricrit_chain_exact(problem)
        elapsed = time.perf_counter() - start
        points.append(ScalingPoint(
            num_tasks=n, seconds=elapsed,
            work_units=float(result.metadata.get("subsets_evaluated", 0)),
            energy=result.energy,
        ))
    return points


def fit_growth_exponent(points: Sequence[ScalingPoint], *,
                        field: str = "work_units") -> dict[str, float]:
    """Fit both polynomial (log-log) and exponential (log-linear) growth models.

    Returns the least-squares slope and residual of each model so the
    experiment report can state which one explains the measurements better
    (the polynomial fit wins for the LP probe, the exponential fit for the
    exact solvers).
    """
    sizes = np.array([p.num_tasks for p in points], dtype=float)
    values = np.array([getattr(p, field) for p in points], dtype=float)
    values = np.maximum(values, 1e-12)
    log_values = np.log(values)

    # Polynomial model: log y = a * log n + b.
    poly_coeffs, poly_res = _least_squares(np.log(sizes), log_values)
    # Exponential model: log y = a * n + b.
    exp_coeffs, exp_res = _least_squares(sizes, log_values)
    return {
        "polynomial_degree": poly_coeffs[0],
        "polynomial_residual": poly_res,
        "exponential_rate": exp_coeffs[0],
        "exponential_residual": exp_res,
        "exponential_fits_better": bool(exp_res < poly_res),
    }


def _least_squares(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, float]:
    A = np.vstack([x, np.ones_like(x)]).T
    coeffs, residuals, _, _ = np.linalg.lstsq(A, y, rcond=None)
    if residuals.size:
        residual = float(residuals[0])
    else:
        residual = float(np.sum((A @ coeffs - y) ** 2))
    return coeffs, residual
