"""TRI-CRIT CONTINUOUS on a linear chain (single processor).

Section III of the paper: the TRI-CRIT problem is NP-hard "even in the
simple case when there is only one processor and a set of tasks mapped on
this processor (linear chain)".  Nevertheless the paper reports an optimal
*strategy* for that case: "first slow the execution of all tasks equally,
then choose the tasks to be re-executed".  This module implements

* :func:`solve_given_reexec_set` -- the convex subproblem once the set of
  re-executed tasks is fixed.  A re-executed task behaves like a task of
  effective weight ``2 w_i`` whose speed floor is the slowest speed at which
  two executions still meet the reliability threshold (both executions at
  the same speed, which is optimal by symmetry and convexity); a
  single-execution task has speed floor ``f_rel``.  The subproblem is the
  bounded "slow everything equally" allocation of
  :func:`repro.optimize.allocation.allocate_durations_with_bounds`.
* :func:`solve_tricrit_chain_exact` -- exhaustive enumeration of the
  re-execution subsets (exponential, used as ground truth on small chains;
  its cost is itself part of the NP-hardness experiment E7).
* :func:`solve_tricrit_chain_greedy` -- the paper's strategy: start from no
  re-executions (everything slowed equally down to ``f_rel``), then greedily
  add the re-execution that saves the most energy while the deadline and
  reliability constraints stay satisfied.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from ..core.problems import SolveResult, TriCritProblem
from ..core.reliability import ReliabilityModel
from ..core.schedule import Schedule, TaskDecision
from ..dag.taskgraph import TaskId
from ..optimize.allocation import allocate_durations_with_bounds
from ..solvers.limits import CHAIN_EXACT_MAX_TASKS

__all__ = [
    "ChainTriCritSolution",
    "solve_given_reexec_set",
    "solve_tricrit_chain_exact",
    "solve_tricrit_chain_greedy",
    "reexecution_speed_floor",
]


@dataclass(frozen=True)
class ChainTriCritSolution:
    """Solution of the fixed-subset subproblem on a chain."""

    energy: float
    speeds: dict[TaskId, float]
    durations: dict[TaskId, float]
    reexecuted: frozenset[TaskId]
    feasible: bool


def reexecution_speed_floor(model: ReliabilityModel, weight: float, fmin: float) -> float:
    """Slowest admissible speed for a task executed twice at equal speeds."""
    return max(fmin, model.min_equal_reexecution_speed(weight))


def solve_given_reexec_set(weights: Sequence[float], ids: Sequence[TaskId],
                           deadline: float, reexec: Iterable[TaskId], *,
                           fmin: float, fmax: float, model: ReliabilityModel,
                           exponent: float = 3.0) -> ChainTriCritSolution:
    """Optimal chain speeds once the re-executed subset is fixed.

    Returns an infeasible :class:`ChainTriCritSolution` (``feasible=False``,
    infinite energy) when even the maximum speed cannot fit the executions
    within the deadline.
    """
    reexec_set = frozenset(reexec)
    w = np.asarray(list(weights), dtype=float)
    ids = list(ids)
    if len(ids) != w.size:
        raise ValueError("ids must match the number of weights")
    unknown = reexec_set - set(ids)
    if unknown:
        raise ValueError(f"re-executed tasks not in the chain: {sorted(map(str, unknown))}")

    effective = np.array([
        2.0 * wi if t in reexec_set else wi for t, wi in zip(ids, w)
    ])
    floor_speed = np.array([
        reexecution_speed_floor(model, wi, fmin) if t in reexec_set else max(model.frel, fmin)
        for t, wi in zip(ids, w)
    ])
    lower = np.where(effective > 0, effective / fmax, 0.0)
    upper = np.where(effective > 0, effective / floor_speed, 0.0)
    # A task whose reliability floor exceeds fmax cannot be scheduled this way.
    if np.any(floor_speed > fmax * (1.0 + 1e-12)):
        return ChainTriCritSolution(math.inf, {}, {}, reexec_set, False)
    try:
        allocation = allocate_durations_with_bounds(effective, deadline, lower, upper,
                                                    exponent=exponent)
    except ValueError:
        return ChainTriCritSolution(math.inf, {}, {}, reexec_set, False)

    speeds = {}
    durations = {}
    for i, t in enumerate(ids):
        if effective[i] > 0:
            speeds[t] = float(effective[i] / allocation.durations[i])
            durations[t] = float(allocation.durations[i])
        else:
            speeds[t] = 0.0
            durations[t] = 0.0
    return ChainTriCritSolution(float(allocation.energy), speeds, durations,
                                reexec_set, True)


def _chain_instance(problem: TriCritProblem) -> tuple[list[TaskId], list[float]]:
    if not problem.mapping.is_single_processor():
        raise ValueError("the chain solvers require a single-processor mapping")
    order = list(problem.mapping.tasks_on(0))
    weights = [problem.graph.weight(t) for t in order]
    return order, weights


def _to_solve_result(problem: TriCritProblem, best: ChainTriCritSolution,
                     solver: str, extra: dict | None = None) -> SolveResult:
    if not best.feasible:
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver=solver, metadata=extra or {})
    graph = problem.graph
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        speed = best.speeds.get(t, problem.platform.fmax)
        if w <= 0:
            decisions[t] = TaskDecision.single(t, w, problem.platform.fmax)
        elif t in best.reexecuted:
            decisions[t] = TaskDecision.reexecuted(t, w, speed, speed)
        else:
            decisions[t] = TaskDecision.single(t, w, speed)
    schedule = Schedule(problem.mapping, problem.platform, decisions)
    metadata = {"reexecuted": sorted(map(str, best.reexecuted))}
    if extra:
        metadata.update(extra)
    return SolveResult(schedule=schedule, energy=schedule.energy(), status="optimal",
                       solver=solver, metadata=metadata)


def solve_tricrit_chain_exact(problem: TriCritProblem, *,
                              max_tasks: int = CHAIN_EXACT_MAX_TASKS) -> SolveResult:
    """Exhaustive optimum over all re-execution subsets of a chain.

    The enumeration is exponential in the number of tasks (the problem is
    NP-hard); ``max_tasks`` guards against accidental huge runs.  The
    metadata records the number of subsets evaluated, which experiment E7
    uses to exhibit the exponential growth.
    """
    ids, weights = _chain_instance(problem)
    model = problem.reliability()
    platform = problem.platform
    positive_ids = [t for t, w in zip(ids, weights) if w > 0]
    # Count positive-weight tasks only, like the descriptor admissibility
    # check and every other enumerative guard: zero-weight tasks never enter
    # the subset enumeration, so they must not count against its limit.
    if len(positive_ids) > max_tasks:
        raise ValueError(
            f"exact chain solver limited to {max_tasks} tasks "
            f"(got {len(positive_ids)}); the subset enumeration is exponential"
        )

    best: ChainTriCritSolution | None = None
    evaluated = 0
    for r in range(len(positive_ids) + 1):
        for subset in itertools.combinations(positive_ids, r):
            candidate = solve_given_reexec_set(
                weights, ids, problem.deadline, subset,
                fmin=platform.fmin, fmax=platform.fmax, model=model,
                exponent=platform.energy_model.exponent,
            )
            evaluated += 1
            if candidate.feasible and (best is None or candidate.energy < best.energy):
                best = candidate
    if best is None:
        best = ChainTriCritSolution(math.inf, {}, {}, frozenset(), False)
    return _to_solve_result(problem, best, "tricrit-chain-exact",
                            {"subsets_evaluated": evaluated})


def solve_tricrit_chain_greedy(problem: TriCritProblem) -> SolveResult:
    """The paper's chain strategy: slow everything equally, then add re-executions.

    Starting from the no-re-execution solution (all tasks at the common
    speed, floored at ``f_rel``), the heuristic repeatedly evaluates adding
    each not-yet-re-executed task to the re-execution set, keeps the single
    best improvement, and stops when no addition lowers the energy.
    """
    ids, weights = _chain_instance(problem)
    model = problem.reliability()
    platform = problem.platform
    positive_ids = [t for t, w in zip(ids, weights) if w > 0]

    def evaluate(subset: frozenset[TaskId]) -> ChainTriCritSolution:
        return solve_given_reexec_set(
            weights, ids, problem.deadline, subset,
            fmin=platform.fmin, fmax=platform.fmax, model=model,
            exponent=platform.energy_model.exponent,
        )

    current_set: frozenset[TaskId] = frozenset()
    current = evaluate(current_set)
    evaluated = 1
    improved = True
    while improved:
        improved = False
        best_candidate = None
        best_task = None
        for t in positive_ids:
            if t in current_set:
                continue
            candidate = evaluate(current_set | {t})
            evaluated += 1
            if candidate.feasible and candidate.energy < (
                best_candidate.energy if best_candidate else current.energy
            ) - 1e-12:
                best_candidate = candidate
                best_task = t
        if best_candidate is not None and best_candidate.energy < current.energy - 1e-12:
            current = best_candidate
            current_set = current_set | {best_task}
            improved = True
    return _to_solve_result(problem, current, "tricrit-chain-greedy",
                            {"subsets_evaluated": evaluated})
