"""CONTINUOUS-model algorithms (Section III of the paper)."""

from .bicrit import solve_bicrit_continuous
from .closed_form import (
    ClosedFormSolution,
    NoFeasibleSpeedError,
    chain_bicrit,
    equivalent_weight,
    fork_bicrit,
    fork_energy,
    join_bicrit,
    series_parallel_bicrit,
)
from .convex import ConvexResult, solve_bicrit_continuous_dag, solve_bicrit_convex
from .exhaustive import best_known_tricrit, solve_tricrit_exhaustive
from .heuristics import (
    TRICRIT_HEURISTICS,
    best_of_heuristics,
    heuristic_energy_gain,
    heuristic_parallel_slack,
    solve_tricrit_no_reexec,
    solve_with_reexec_set,
)
from .tricrit_chain import (
    ChainTriCritSolution,
    solve_given_reexec_set,
    solve_tricrit_chain_exact,
    solve_tricrit_chain_greedy,
)
from .tricrit_fork import (
    best_choice_for_budget,
    solve_tricrit_fork,
    solve_tricrit_fork_bruteforce,
)

__all__ = [
    "solve_bicrit_continuous",
    "chain_bicrit",
    "fork_bicrit",
    "fork_energy",
    "join_bicrit",
    "series_parallel_bicrit",
    "equivalent_weight",
    "ClosedFormSolution",
    "NoFeasibleSpeedError",
    "ConvexResult",
    "solve_bicrit_convex",
    "solve_bicrit_continuous_dag",
    "ChainTriCritSolution",
    "solve_given_reexec_set",
    "solve_tricrit_chain_exact",
    "solve_tricrit_chain_greedy",
    "best_choice_for_budget",
    "solve_tricrit_fork",
    "solve_tricrit_fork_bruteforce",
    "solve_with_reexec_set",
    "solve_tricrit_no_reexec",
    "heuristic_energy_gain",
    "heuristic_parallel_slack",
    "best_of_heuristics",
    "TRICRIT_HEURISTICS",
    "solve_tricrit_exhaustive",
    "best_known_tricrit",
]
