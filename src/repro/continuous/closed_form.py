"""Closed-form BI-CRIT CONTINUOUS solutions for special graph structures.

Section III of the paper: "We provide optimal speed values for special
execution graph structures (trees, series-parallel graphs), expressed as
closed form algebraic formulas."  The paper states the fork theorem
explicitly; this module implements

* the **linear chain** (all tasks serialised on one processor): every task
  runs at the common speed ``sum(w_i) / D``;
* the **fork** theorem verbatim, including the ``fmax`` saturation case;
* the **join** (mirror of the fork);
* general **series-parallel graphs** through the *equivalent weight*
  recursion: a series composition behaves like a single task whose weight is
  the *sum* of the equivalent weights, a parallel composition like a single
  task whose weight is the *cube-root of the sum of the cubes* (more
  generally the ``alpha``-norm-like combination ``(sum W_i^a)^(1/a)``); the
  optimal energy of a series-parallel graph with equivalent weight ``W`` is
  ``W^a / D^(a-1)``.  The fork formula is the special case
  ``Series(w_0, Parallel(w_1..w_n))``.

The closed forms assume one processor per parallel branch (that is how the
paper's fork theorem is stated: the ``n`` successors run concurrently) and
they are *unbounded*: the returned speeds are optimal when they fall inside
``[fmin, fmax]``.  The fork solver implements the paper's explicit ``fmax``
correction; for the general bounded case use the numerical convex solver in
:mod:`repro.continuous.convex`, which these formulas cross-validate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from ..dag.series_parallel import (
    SPLeaf,
    SPNode,
    SPParallel,
    SPSeries,
    decompose,
)
from ..dag.taskgraph import TaskGraph, TaskId

__all__ = [
    "ClosedFormSolution",
    "chain_bicrit",
    "fork_bicrit",
    "fork_energy",
    "join_bicrit",
    "equivalent_weight",
    "series_parallel_bicrit",
    "NoFeasibleSpeedError",
]


class NoFeasibleSpeedError(ValueError):
    """Raised when the deadline cannot be met even at ``fmax``."""


@dataclass(frozen=True)
class ClosedFormSolution:
    """Result of a closed-form solver: per-task speeds, durations and energy."""

    speeds: dict[TaskId, float]
    durations: dict[TaskId, float]
    energy: float
    within_bounds: bool
    structure: str

    def max_speed(self) -> float:
        return max(self.speeds.values(), default=0.0)

    def min_speed(self) -> float:
        positive = [f for f in self.speeds.values() if f > 0]
        return min(positive, default=0.0)


# ----------------------------------------------------------------------
# linear chain
# ----------------------------------------------------------------------
def chain_bicrit(weights: Sequence[float], deadline: float, *,
                 fmax: float | None = None, fmin: float | None = None,
                 exponent: float = 3.0,
                 task_ids: Sequence[TaskId] | None = None) -> ClosedFormSolution:
    """Optimal CONTINUOUS speeds for a chain of tasks sharing one processor.

    All tasks run at the common speed ``sum(w)/D``; when that exceeds
    ``fmax`` the instance is infeasible, when it falls below ``fmin`` every
    task is clamped to ``fmin`` (the deadline is then not tight).
    """
    w = np.asarray(list(weights), dtype=float)
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    ids = list(task_ids) if task_ids is not None else [f"T{i}" for i in range(w.size)]
    if len(ids) != w.size:
        raise ValueError("task_ids must match the number of weights")

    total = float(np.sum(w))
    if total == 0:
        return ClosedFormSolution({t: 0.0 for t in ids}, {t: 0.0 for t in ids},
                                  0.0, True, "chain")
    speed = total / deadline
    within = True
    if fmax is not None and speed > fmax * (1.0 + 1e-12):
        raise NoFeasibleSpeedError(
            f"chain needs speed {speed:.6g} > fmax={fmax:.6g} to meet the deadline"
        )
    if fmin is not None and speed < fmin:
        speed = fmin
        within = True  # clamping to fmin is still optimal (deadline not tight)
    speeds = {t: (speed if wi > 0 else 0.0) for t, wi in zip(ids, w)}
    durations = {t: (wi / speed if wi > 0 else 0.0) for t, wi in zip(ids, w)}
    energy = float(np.sum(w * speed ** (exponent - 1.0)))
    return ClosedFormSolution(speeds, durations, energy, within, "chain")


# ----------------------------------------------------------------------
# fork (Theorem of Section III)
# ----------------------------------------------------------------------
def fork_energy(source_weight: float, child_weights: Sequence[float],
                deadline: float, *, exponent: float = 3.0) -> float:
    """Unbounded optimal fork energy ``((sum w_i^a)^(1/a) + w_0)^a / D^(a-1)``.

    With the paper's ``a = 3`` this is exactly
    ``((sum w_i^3)^(1/3) + w_0)^3 / D^2``.
    """
    w = np.asarray(list(child_weights), dtype=float)
    a = float(exponent)
    norm = float(np.sum(w ** a)) ** (1.0 / a)
    return (norm + float(source_weight)) ** a / deadline ** (a - 1.0)


def fork_bicrit(source_weight: float, child_weights: Sequence[float],
                deadline: float, *, fmax: float | None = None,
                fmin: float | None = None, exponent: float = 3.0,
                source_id: TaskId = "T0",
                child_ids: Sequence[TaskId] | None = None) -> ClosedFormSolution:
    """The paper's fork theorem, including the ``fmax`` saturation case.

    Unsaturated case::

        f_0 = ((sum w_i^3)^(1/3) + w_0) / D
        f_i = f_0 * w_i / (sum w_i^3)^(1/3)

    When ``f_0 > fmax`` the source runs at ``fmax`` and every child ``i``
    runs at ``w_i / D'`` with ``D' = D - w_0/fmax``; if a child speed then
    exceeds ``fmax`` there is no solution
    (:class:`NoFeasibleSpeedError`).  ``fmin``, when given, only clamps
    speeds upward (the deadline is then not tight, energy increases
    accordingly).
    """
    w = np.asarray(list(child_weights), dtype=float)
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    if np.any(w < 0) or source_weight < 0:
        raise ValueError("weights must be non-negative")
    a = float(exponent)
    ids = list(child_ids) if child_ids is not None else [f"T{i + 1}" for i in range(w.size)]
    if len(ids) != w.size:
        raise ValueError("child_ids must match the number of child weights")

    norm = float(np.sum(w ** a)) ** (1.0 / a) if w.size else 0.0
    f0 = (norm + source_weight) / deadline

    speeds: dict[TaskId, float] = {}
    within = True
    if fmax is None or f0 <= fmax * (1.0 + 1e-12):
        speeds[source_id] = f0
        for t, wi in zip(ids, w):
            speeds[t] = f0 * wi / norm if norm > 0 else 0.0
    else:
        # Saturated case of the theorem.
        if source_weight / fmax >= deadline:
            raise NoFeasibleSpeedError(
                "the source alone exceeds the deadline at fmax; no solution"
            )
        speeds[source_id] = fmax
        d_prime = deadline - source_weight / fmax
        for t, wi in zip(ids, w):
            fi = wi / d_prime
            if fi > fmax * (1.0 + 1e-12):
                raise NoFeasibleSpeedError(
                    f"child {t!r} needs speed {fi:.6g} > fmax={fmax:.6g}; no solution"
                )
            speeds[t] = fi
        within = True

    clamped_to_fmin = False
    if fmin is not None:
        for t in speeds:
            if 0.0 < speeds[t] < fmin * (1.0 - 1e-12):
                speeds[t] = fmin
                clamped_to_fmin = True

    all_ids = [source_id] + list(ids)
    all_weights = {source_id: float(source_weight)}
    all_weights.update({t: float(wi) for t, wi in zip(ids, w)})
    durations = {
        t: (all_weights[t] / speeds[t] if speeds[t] > 0 else 0.0) for t in all_ids
    }
    energy = float(sum(all_weights[t] * speeds[t] ** (a - 1.0) for t in all_ids))
    if fmax is not None:
        within = all(f <= fmax * (1.0 + 1e-9) for f in speeds.values())
    # When a child had to be sped up to fmin the algebraic formula is no
    # longer exactly optimal (time should be redistributed); flag it so the
    # dispatcher can fall back to the numerical solver.
    within = within and not clamped_to_fmin
    return ClosedFormSolution(speeds, durations, energy, within, "fork")


def join_bicrit(child_weights: Sequence[float], sink_weight: float,
                deadline: float, **kwargs) -> ClosedFormSolution:
    """Closed form for a join graph (mirror image of the fork).

    By symmetry of the makespan and energy expressions under time reversal,
    the optimal speeds of a join equal those of the fork obtained by
    reversing all edges, so this simply delegates to :func:`fork_bicrit`
    with the sink playing the role of the source.
    """
    sink_id = kwargs.pop("sink_id", "T_sink")
    child_ids = kwargs.pop("child_ids", None)
    solution = fork_bicrit(sink_weight, child_weights, deadline,
                           source_id=sink_id, child_ids=child_ids, **kwargs)
    return ClosedFormSolution(solution.speeds, solution.durations, solution.energy,
                              solution.within_bounds, "join")


# ----------------------------------------------------------------------
# series-parallel graphs (equivalent-weight recursion)
# ----------------------------------------------------------------------
def equivalent_weight(tree: SPNode, *, exponent: float = 3.0) -> float:
    """Equivalent weight of a series-parallel decomposition tree.

    * leaf: its own weight,
    * series: sum of the children's equivalent weights,
    * parallel: ``(sum_i W_i^a)^(1/a)``.

    The optimal CONTINUOUS energy of the structure under deadline ``D`` (with
    one processor per parallel branch and no speed bounds) is
    ``W^a / D^(a-1)``.
    """
    a = float(exponent)
    if isinstance(tree, SPLeaf):
        return float(tree.weight)
    if isinstance(tree, SPSeries):
        return float(sum(equivalent_weight(c, exponent=a) for c in tree.children))
    if isinstance(tree, SPParallel):
        return float(
            sum(equivalent_weight(c, exponent=a) ** a for c in tree.children) ** (1.0 / a)
        )
    raise TypeError(f"unknown SP node type {type(tree)!r}")


def series_parallel_bicrit(graph_or_tree: TaskGraph | SPNode, deadline: float, *,
                           exponent: float = 3.0, fmax: float | None = None,
                           fmin: float | None = None) -> ClosedFormSolution:
    """Unbounded closed-form optimum for a series-parallel task graph.

    The deadline is distributed recursively: a series composition splits its
    time budget between children proportionally to their equivalent weights,
    a parallel composition gives every child the full budget.  Each leaf then
    runs at ``weight / allotted time``.

    The solution is optimal when every resulting speed lies within
    ``[fmin, fmax]``; :attr:`ClosedFormSolution.within_bounds` reports
    whether that is the case (the caller can fall back to the numerical
    convex solver otherwise).  Raises
    :class:`~repro.dag.series_parallel.NotSeriesParallelError` when a task
    graph that is not series-parallel is passed.
    """
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    a = float(exponent)
    tree = graph_or_tree if not isinstance(graph_or_tree, TaskGraph) else decompose(graph_or_tree)

    durations: dict[TaskId, float] = {}

    def assign(node: SPNode, budget: float) -> None:
        if isinstance(node, SPLeaf):
            durations[node.task_id] = budget if node.weight > 0 else 0.0
            return
        if isinstance(node, SPSeries):
            child_weights = [equivalent_weight(c, exponent=a) for c in node.children]
            total = sum(child_weights)
            for child, cw in zip(node.children, child_weights):
                share = budget * (cw / total) if total > 0 else 0.0
                assign(child, share)
            return
        if isinstance(node, SPParallel):
            for child in node.children:
                assign(child, budget)
            return
        raise TypeError(f"unknown SP node type {type(node)!r}")

    assign(tree, deadline)

    speeds: dict[TaskId, float] = {}
    energy = 0.0
    from ..dag.series_parallel import sp_leaves

    for leaf in sp_leaves(tree):
        d = durations[leaf.task_id]
        if leaf.weight > 0:
            if d <= 0:
                raise NoFeasibleSpeedError(
                    f"leaf {leaf.task_id!r} received a zero time budget"
                )
            f = leaf.weight / d
        else:
            f = 0.0
        speeds[leaf.task_id] = f
        energy += leaf.weight * f ** (a - 1.0) if f > 0 else 0.0

    within = True
    if fmax is not None:
        within = within and all(f <= fmax * (1.0 + 1e-9) for f in speeds.values())
    if fmin is not None:
        within = within and all(f >= fmin * (1.0 - 1e-9) for f in speeds.values() if f > 0)
    return ClosedFormSolution(speeds, durations, float(energy), within, "series_parallel")
