"""Numerical convex solver for BI-CRIT CONTINUOUS on arbitrary mapped DAGs.

Section III of the paper: "We formulate the problem for general DAGs as a
geometric programming problem for which efficient numerical schemes exist."
In convex (posynomial-free) form the program is

    minimise    sum_i w_i^a / d_i^(a-1)
    subject to  s_j >= s_i + d_i          for every edge (i, j) of the
                                          augmented graph (precedence +
                                          same-processor ordering),
                s_i + d_i <= D            for every task,
                w_i / fmax_i <= d_i <= w_i / fmin_i,
                s_i >= 0,

with decision variables the durations ``d_i`` and start times ``s_i``.  The
objective is convex for ``a > 1`` and all constraints are linear, so any
KKT point is a global optimum.  The solver uses scipy's ``trust-constr``
(with analytic gradient and Hessian) and falls back to SLSQP; the result is
cross-validated against the closed forms of
:mod:`repro.continuous.closed_form` in the test suite and in experiment E1.

Per-task speed bounds and *effective weights* can be overridden, which is
how the TRI-CRIT heuristics reuse this solver: a re-executed task appears
with effective weight ``2 w_i`` and a lower speed bound equal to the slowest
speed at which two executions still meet the reliability threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Mapping as TMapping

import numpy as np
from scipy import optimize as sciopt

from ..core.problems import BiCritProblem, SolveResult
from ..core.schedule import Schedule, TaskDecision
from ..dag.taskgraph import TaskGraph, TaskId
from ..platform.mapping import Mapping
from ..platform.platform import Platform

__all__ = ["ConvexResult", "solve_bicrit_convex", "solve_bicrit_continuous_dag"]


@dataclass
class ConvexResult:
    """Raw output of the convex solver (before being wrapped in a Schedule)."""

    durations: dict[TaskId, float]
    speeds: dict[TaskId, float]
    start_times: dict[TaskId, float]
    energy: float
    status: str
    solver_message: str = ""
    iterations: int = 0
    constraint_violation: float = 0.0

    @property
    def feasible(self) -> bool:
        return self.status in ("optimal", "feasible")


def _critical_path_durations(graph: TaskGraph, durations: TMapping[TaskId, float]) -> float:
    finish: dict[TaskId, float] = {}
    for t in graph.topological_order():
        start = max((finish[p] for p in graph.predecessors(t)), default=0.0)
        finish[t] = start + durations[t]
    return max(finish.values(), default=0.0)


def solve_bicrit_convex(mapping: Mapping, platform: Platform, deadline: float, *,
                        effective_weights: TMapping[TaskId, float] | None = None,
                        min_speed: TMapping[TaskId, float] | float | None = None,
                        max_speed: TMapping[TaskId, float] | float | None = None,
                        exponent: float | None = None,
                        method: str = "auto",
                        tol: float = 1e-10) -> ConvexResult:
    """Solve the convex program described in the module docstring.

    Parameters
    ----------
    effective_weights:
        Per-task weight override (defaults to the graph weights).  Used by
        the TRI-CRIT heuristics to model re-executed tasks as ``2 w_i``.
    min_speed / max_speed:
        Scalar or per-task speed bounds; default to the platform's
        ``fmin`` / ``fmax``.
    method:
        ``"slsqp"``, ``"trust-constr"``, or ``"auto"`` (default): try the
        much faster SLSQP first and fall back to the more robust
        trust-region solver when SLSQP does not report a clean optimum.
    """
    if method == "auto":
        fast = solve_bicrit_convex(mapping, platform, deadline,
                                   effective_weights=effective_weights,
                                   min_speed=min_speed, max_speed=max_speed,
                                   exponent=exponent, method="slsqp", tol=tol)
        if fast.status in ("optimal", "infeasible"):
            return fast
        return solve_bicrit_convex(mapping, platform, deadline,
                                   effective_weights=effective_weights,
                                   min_speed=min_speed, max_speed=max_speed,
                                   exponent=exponent, method="trust-constr", tol=tol)

    graph = mapping.graph
    augmented = mapping.augmented_graph()
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    a = float(exponent if exponent is not None else platform.energy_model.exponent)
    if a <= 1.0:
        raise ValueError("power exponent must exceed 1")

    tasks = augmented.topological_order()
    weights = {
        t: float(effective_weights[t]) if effective_weights is not None else graph.weight(t)
        for t in tasks
    }

    def bound_of(spec, default: float, task: TaskId) -> float:
        if spec is None:
            return default
        if isinstance(spec, (int, float)):
            return float(spec)
        return float(spec.get(task, default))

    fmin_of = {t: bound_of(min_speed, platform.fmin, t) for t in tasks}
    fmax_of = {t: bound_of(max_speed, platform.fmax, t) for t in tasks}
    for t in tasks:
        if fmin_of[t] > fmax_of[t] * (1.0 + 1e-12):
            raise ValueError(
                f"task {t!r} has min speed {fmin_of[t]} above max speed {fmax_of[t]}"
            )

    positive = [t for t in tasks if weights[t] > 0]
    zero_tasks = [t for t in tasks if weights[t] <= 0]
    n = len(positive)
    index = {t: i for i, t in enumerate(positive)}

    # Quick infeasibility check at maximum speeds.
    dmin = {t: weights[t] / fmax_of[t] for t in positive}
    dmin.update({t: 0.0 for t in zero_tasks})
    min_makespan = _critical_path_durations(augmented, dmin)
    if min_makespan > deadline * (1.0 + 1e-9):
        return ConvexResult({}, {}, {}, math.inf, "infeasible",
                            solver_message=(
                                f"even at the maximum speeds the makespan is "
                                f"{min_makespan:.6g} > D={deadline:.6g}"))

    if n == 0:
        durations = {t: 0.0 for t in tasks}
        return ConvexResult(durations, {t: 0.0 for t in tasks},
                            {t: 0.0 for t in tasks}, 0.0, "optimal")

    w = np.array([weights[t] for t in positive])
    d_lower = np.array([weights[t] / fmax_of[t] for t in positive])
    d_upper = np.array([
        weights[t] / fmin_of[t] if fmin_of[t] > 0 else np.inf for t in positive
    ])
    d_upper = np.minimum(d_upper, deadline)  # a task can never exceed the deadline

    # Variable vector x = [d (n), s (n)].
    num_vars = 2 * n

    def unpack(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return x[:n], x[n:]

    def objective(x: np.ndarray) -> float:
        d, _ = unpack(x)
        return float(np.sum(w ** a / d ** (a - 1.0)))

    def gradient(x: np.ndarray) -> np.ndarray:
        d, _ = unpack(x)
        g = np.zeros(num_vars)
        g[:n] = -(a - 1.0) * w ** a / d ** a
        return g

    def hessian(x: np.ndarray) -> np.ndarray:
        d, _ = unpack(x)
        h = np.zeros((num_vars, num_vars))
        h[np.arange(n), np.arange(n)] = a * (a - 1.0) * w ** a / d ** (a + 1.0)
        return h

    # Linear constraints.  Precedence edges involving zero-weight tasks can be
    # contracted: a zero-weight task takes no time, so its start time equals
    # the max of its predecessors' finish times; we keep them as variables-free
    # pass-through by projecting edges onto positive-weight tasks transitively.
    # For simplicity (zero-weight tasks are rare) we treat a zero-weight task
    # as taking zero duration: edges through it become direct edges between its
    # positive neighbours.
    def positive_edges() -> list[tuple[TaskId, TaskId]]:
        if not zero_tasks:
            return list(augmented.edges())
        # Contract zero-weight tasks.
        reachable_from_zero: dict[TaskId, set[TaskId]] = {}
        # Iteratively replace edges through zero-weight tasks.  The fixpoint
        # runs over an insertion-ordered dict, not a set: the returned edge
        # list orders the solver's constraint rows, and set iteration would
        # leak hash-randomised order into them (REP001).
        edge_set: dict[tuple[TaskId, TaskId], None] = dict.fromkeys(
            augmented.edges())
        changed = True
        while changed:
            changed = False
            for z in zero_tasks:
                preds = [u for (u, v) in edge_set if v == z]
                succs = [v for (u, v) in edge_set if u == z]
                for u in preds:
                    for v in succs:
                        if (u, v) not in edge_set and u != v:
                            edge_set[(u, v)] = None
                            changed = True
        return [
            (u, v) for (u, v) in edge_set
            if u not in zero_tasks and v not in zero_tasks
        ]

    rows = []
    lbs = []
    ubs = []
    for (u, v) in positive_edges():
        row = np.zeros(num_vars)
        # s_v - s_u - d_u >= 0
        row[n + index[v]] = 1.0
        row[n + index[u]] = -1.0
        row[index[u]] = -1.0
        rows.append(row)
        lbs.append(0.0)
        ubs.append(np.inf)
    for t in positive:
        row = np.zeros(num_vars)
        # s_t + d_t <= D
        row[n + index[t]] = 1.0
        row[index[t]] = 1.0
        rows.append(row)
        lbs.append(-np.inf)
        ubs.append(deadline)

    A = np.array(rows) if rows else np.zeros((0, num_vars))
    lb = np.array(lbs)
    ub = np.array(ubs)

    bounds_lower = np.concatenate([d_lower, np.zeros(n)])
    bounds_upper = np.concatenate([d_upper, np.full(n, deadline)])

    # Initial point: a single uniform speed chosen so that the makespan is at
    # most the deadline, then durations clipped into their boxes.
    positive_graph_durations = {t: weights[t] for t in positive}
    positive_graph_durations.update({t: 0.0 for t in zero_tasks})
    length_at_unit_speed = _critical_path_durations(augmented, positive_graph_durations)
    f_uniform = max(length_at_unit_speed / deadline, 1e-12)
    f_uniform = min(max(f_uniform, max(fmin_of[t] for t in positive)),
                    min(fmax_of[t] for t in positive))
    d0 = np.clip(w / f_uniform, d_lower, np.minimum(d_upper, deadline))
    start0 = {}
    finish0 = {}
    duration_map = {t: (d0[index[t]] if t in index else 0.0) for t in tasks}
    for t in augmented.topological_order():
        s = max((finish0[p] for p in augmented.predecessors(t)), default=0.0)
        start0[t] = s
        finish0[t] = s + duration_map[t]
    # If the initial durations overshoot the deadline (because of clipping to
    # d_upper), shrink towards d_lower until feasible.
    scale_iter = 0
    while max(finish0.values()) > deadline * (1.0 + 1e-12) and scale_iter < 60:
        d0 = d_lower + 0.5 * (d0 - d_lower)
        duration_map = {t: (d0[index[t]] if t in index else 0.0) for t in tasks}
        finish0 = {}
        for t in augmented.topological_order():
            s = max((finish0[p] for p in augmented.predecessors(t)), default=0.0)
            start0[t] = s
            finish0[t] = s + duration_map[t]
        scale_iter += 1
    s0 = np.array([start0[t] for t in positive])
    x0 = np.concatenate([d0, s0])

    if method == "trust-constr":
        constraints = [sciopt.LinearConstraint(A, lb, ub)] if A.shape[0] else []
        res = sciopt.minimize(
            objective, x0, jac=gradient, hess=hessian, method="trust-constr",
            bounds=sciopt.Bounds(bounds_lower, bounds_upper),
            constraints=constraints,
            options={"gtol": tol, "xtol": 1e-12, "maxiter": 3000, "verbose": 0},
        )
        iterations = int(res.niter)
        constraint_violation = float(getattr(res, "constr_violation", 0.0) or 0.0)
        ok = res.status in (1, 2) or res.success
    elif method == "slsqp":
        ineq_rows = []
        for i in range(A.shape[0]):
            if np.isfinite(ub[i]):
                ineq_rows.append((-A[i], -ub[i]))
            if np.isfinite(lb[i]) and lb[i] > -np.inf:
                ineq_rows.append((A[i], lb[i]))
        G = np.array([r for r, _ in ineq_rows]) if ineq_rows else np.zeros((0, num_vars))
        h = np.array([c for _, c in ineq_rows]) if ineq_rows else np.zeros(0)
        constraints = [{
            "type": "ineq",
            "fun": lambda x, G=G, h=h: G @ x - h,
            "jac": lambda x, G=G: G,
        }] if G.shape[0] else []
        res = sciopt.minimize(
            objective, x0, jac=gradient, method="SLSQP",
            bounds=list(zip(bounds_lower, bounds_upper)),
            constraints=constraints,
            options={"maxiter": 2000, "ftol": 1e-12},
        )
        iterations = int(res.get("nit", 0)) if isinstance(res, dict) else int(res.nit)
        constraint_violation = 0.0
        ok = bool(res.success)
    else:
        raise ValueError(f"unknown method {method!r}")

    x = np.asarray(res.x, dtype=float)
    d, s = unpack(x)
    d = np.clip(d, d_lower, np.maximum(d_lower, d_upper))

    durations = {t: float(d[index[t]]) for t in positive}
    durations.update({t: 0.0 for t in zero_tasks})
    speeds = {t: (weights[t] / durations[t] if durations[t] > 0 else 0.0) for t in tasks}
    start_times = {t: float(s[index[t]]) for t in positive}
    start_times.update({t: 0.0 for t in zero_tasks})
    energy = float(np.sum(w ** a / d ** (a - 1.0)))

    status = "optimal" if ok else "feasible"
    # Double check that the produced durations respect the deadline along the
    # augmented graph; if they do not (solver tolerance), report "feasible"
    # only when the violation is negligible, otherwise "error".
    achieved = _critical_path_durations(augmented, durations)
    if achieved > deadline * (1.0 + 1e-6):
        status = "error"
    return ConvexResult(durations=durations, speeds=speeds, start_times=start_times,
                        energy=energy, status=status,
                        solver_message=str(getattr(res, "message", "")),
                        iterations=iterations,
                        constraint_violation=constraint_violation)


def solve_bicrit_continuous_dag(problem: BiCritProblem, *, method: str = "auto") -> SolveResult:
    """Solve a :class:`BiCritProblem` with the convex program and wrap the result."""
    result = solve_bicrit_convex(problem.mapping, problem.platform, problem.deadline,
                                 method=method)
    if not result.feasible:
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver="continuous-convex",
                           metadata={"message": result.solver_message})
    graph = problem.graph
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        if w > 0:
            decisions[t] = TaskDecision.single(t, w, result.speeds[t])
        else:
            decisions[t] = TaskDecision.single(t, w, problem.platform.fmax)
    schedule = Schedule(problem.mapping, problem.platform, decisions)
    return SolveResult(schedule=schedule, energy=schedule.energy(), status=result.status,
                       solver="continuous-convex",
                       metadata={
                           "iterations": result.iterations,
                           "message": result.solver_message,
                           "objective": result.energy,
                       })
