"""TRI-CRIT CONTINUOUS heuristics for general mapped DAGs.

Section III of the paper describes two *complementary* families of
heuristics, both built on the failure probabilities, task weights and
processor speeds:

* the first family generalises the **linear-chain strategy** ("first slow
  the execution of all tasks equally, then choose the tasks to be
  re-executed"): it is driven by the estimated *energy gain* of re-executing
  a task at a much lower speed -- :func:`heuristic_energy_gain`;
* the second family generalises the **fork strategy** ("highly
  parallelizable tasks should be preferred when allocating time slots for
  re-execution or deceleration"): it is driven by the scheduling *slack* of
  each task -- :func:`heuristic_parallel_slack`.

"Altogether, taking the best result out of those two heuristics always gives
the best result over all simulations" -- :func:`best_of_heuristics`.

Both heuristics share the same machinery:

1. the *restricted problem* for a fixed re-execution set is the BI-CRIT
   convex program where a re-executed task has effective weight ``2 w_i``
   and a speed floor equal to the slowest equal-speed pair meeting the
   reliability threshold, while a single-execution task has speed floor
   ``f_rel`` (:func:`solve_with_reexec_set`);
2. the heuristic grows the re-execution set greedily, at each round scoring
   the candidate tasks with its family-specific criterion, fully re-solving
   the restricted problem for the few best candidates, and accepting the
   best improvement until none remains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable

from ..core.problems import InfeasibleProblemError, SolveResult, TriCritProblem
from ..core.schedule import Schedule, TaskDecision
from ..dag.taskgraph import TaskId
from ..solvers.context import SolverContext
from .convex import ConvexResult, solve_bicrit_convex

__all__ = [
    "solve_with_reexec_set",
    "solve_tricrit_no_reexec",
    "heuristic_energy_gain",
    "heuristic_parallel_slack",
    "best_of_heuristics",
    "TRICRIT_HEURISTICS",
]


def _restricted_convex(problem: TriCritProblem, reexec: frozenset[TaskId], *,
                       method: str = "auto",
                       context: SolverContext | None = None) -> ConvexResult:
    ctx = context if context is not None else SolverContext.for_problem(problem)
    graph = problem.graph
    platform = problem.platform
    model = ctx.reliability
    effective = {}
    min_speed = {}
    frel = max(model.frel, platform.fmin)
    for t in graph.tasks():
        w = graph.weight(t)
        if t in reexec and w > 0:
            effective[t] = 2.0 * w
            # Memoized on the context: the subset enumerations query the
            # same per-task floors for every one of their 2^n solves.
            min_speed[t] = ctx.reexecution_floor(t)
        else:
            effective[t] = w
            min_speed[t] = frel if w > 0 else platform.fmin
    return solve_bicrit_convex(problem.mapping, platform, problem.deadline,
                               effective_weights=effective, min_speed=min_speed,
                               method=method)


def solve_with_reexec_set(problem: TriCritProblem, reexec: Iterable[TaskId], *,
                          method: str = "auto",
                          solver_name: str = "tricrit-restricted",
                          context: SolverContext | None = None) -> SolveResult:
    """Optimal continuous speeds for a *fixed* re-execution set.

    Returns an infeasible :class:`SolveResult` when even the maximum speeds
    cannot accommodate the chosen re-executions within the deadline.
    """
    reexec_set = frozenset(t for t in reexec if problem.graph.weight(t) > 0)
    result = _restricted_convex(problem, reexec_set, method=method, context=context)
    if not result.feasible:
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver=solver_name,
                           metadata={"reexecuted": sorted(map(str, reexec_set)),
                                     "message": result.solver_message})
    graph = problem.graph
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        if w <= 0:
            decisions[t] = TaskDecision.single(t, w, problem.platform.fmax)
            continue
        speed = result.speeds[t]
        if t in reexec_set:
            # ``speed`` is the speed of the effective task of weight 2w; both
            # actual executions run at that same speed.
            decisions[t] = TaskDecision.reexecuted(t, w, speed, speed)
        else:
            decisions[t] = TaskDecision.single(t, w, speed)
    schedule = Schedule(problem.mapping, problem.platform, decisions)
    return SolveResult(schedule=schedule, energy=schedule.energy(), status="feasible",
                       solver=solver_name,
                       metadata={"reexecuted": sorted(map(str, reexec_set)),
                                 "convex_status": result.status})


def solve_tricrit_no_reexec(problem: TriCritProblem, *,
                            method: str = "auto",
                            context: SolverContext | None = None) -> SolveResult:
    """Reliable baseline without any re-execution: every task at >= f_rel."""
    return solve_with_reexec_set(problem, (), method=method,
                                 solver_name="tricrit-no-reexec", context=context)


# ----------------------------------------------------------------------
# candidate scoring
# ----------------------------------------------------------------------
def _slacks(problem: TriCritProblem, schedule: Schedule) -> dict[TaskId, float]:
    """Scheduling slack of every task under the current durations."""
    augmented = problem.mapping.augmented_graph()
    durations = schedule.durations()
    earliest: dict[TaskId, float] = {}
    finish: dict[TaskId, float] = {}
    order = augmented.topological_order()
    for t in order:
        s = max((finish[p] for p in augmented.predecessors(t)), default=0.0)
        earliest[t] = s
        finish[t] = s + durations[t]
    latest_finish: dict[TaskId, float] = {}
    latest_start: dict[TaskId, float] = {}
    for t in reversed(order):
        succs = augmented.successors(t)
        lf = min((latest_start[s] for s in succs), default=problem.deadline)
        latest_finish[t] = lf
        latest_start[t] = lf - durations[t]
    return {t: latest_start[t] - earliest[t] for t in order}


def _energy_gain_estimate(problem: TriCritProblem, schedule: Schedule,
                          slacks: dict[TaskId, float], task: TaskId,
                          ctx: SolverContext) -> float:
    """Optimistic estimate of the energy saved by re-executing ``task``.

    Compares the current single-execution energy with the cheapest
    re-execution that fits in the task's current duration plus its slack.
    """
    graph = problem.graph
    platform = problem.platform
    w = graph.weight(task)
    if w <= 0:
        return -math.inf
    decision = schedule.decisions[task]
    current_energy = decision.energy(platform.energy_model.exponent)
    budget = decision.worst_case_duration + max(slacks.get(task, 0.0), 0.0)
    if budget <= 0:
        return -math.inf
    floor = ctx.reexecution_floor(task)
    speed = max(2.0 * w / budget, floor)
    if speed > platform.fmax * (1.0 + 1e-12):
        return -math.inf
    candidate_energy = 2.0 * w * speed ** (platform.energy_model.exponent - 1.0)
    return current_energy - candidate_energy


def _greedy_growth(problem: TriCritProblem, *, score: str,
                   candidates_per_round: int, method: str,
                   solver_name: str) -> SolveResult:
    ctx = SolverContext.for_problem(problem)
    current = solve_tricrit_no_reexec(problem, method=method, context=ctx)
    if not current.feasible:
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver=solver_name,
                           metadata={"message": "no reliable schedule without re-execution"})
    reexec: frozenset[TaskId] = frozenset()
    positive = [t for t in problem.graph.tasks() if problem.graph.weight(t) > 0]
    solves = 1
    rounds = 0
    while True:
        rounds += 1
        schedule = current.require_schedule()
        slacks = _slacks(problem, schedule)
        remaining = [t for t in positive if t not in reexec]
        if not remaining:
            break
        if score == "energy_gain":
            scored = sorted(
                remaining,
                key=lambda t: _energy_gain_estimate(problem, schedule, slacks, t, ctx),
                reverse=True,
            )
        elif score == "slack":
            scored = sorted(remaining, key=lambda t: slacks.get(t, 0.0), reverse=True)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown score {score!r}")
        best_candidate: SolveResult | None = None
        best_task: TaskId | None = None
        for t in scored[:candidates_per_round]:
            candidate = solve_with_reexec_set(problem, reexec | {t}, method=method,
                                              solver_name=solver_name, context=ctx)
            solves += 1
            if candidate.feasible and candidate.energy < (
                best_candidate.energy if best_candidate else current.energy
            ) - 1e-12:
                best_candidate = candidate
                best_task = t
        if best_candidate is None:
            break
        current = best_candidate
        reexec = reexec | {best_task}
    current.solver = solver_name
    current.metadata.update({"convex_solves": solves, "rounds": rounds,
                             "reexecuted": sorted(map(str, reexec))})
    return current


# ----------------------------------------------------------------------
# the two heuristic families + combiner
# ----------------------------------------------------------------------
def heuristic_energy_gain(problem: TriCritProblem, *, candidates_per_round: int = 3,
                          method: str = "auto") -> SolveResult:
    """Chain-style heuristic: grow the re-execution set by estimated energy gain."""
    return _greedy_growth(problem, score="energy_gain",
                          candidates_per_round=candidates_per_round, method=method,
                          solver_name="tricrit-heuristic-energy-gain")


def heuristic_parallel_slack(problem: TriCritProblem, *, candidates_per_round: int = 3,
                             method: str = "auto") -> SolveResult:
    """Fork-style heuristic: prefer highly parallelisable (large-slack) tasks."""
    return _greedy_growth(problem, score="slack",
                          candidates_per_round=candidates_per_round, method=method,
                          solver_name="tricrit-heuristic-parallel-slack")


def best_of_heuristics(problem: TriCritProblem, *, candidates_per_round: int = 3,
                       method: str = "auto") -> SolveResult:
    """Take the best of the two families (the paper's recommended combination).

    Raises :class:`~repro.core.problems.InfeasibleProblemError` when neither
    family finds any reliable schedule (every growth round infeasible): both
    families start from the no-re-execution baseline and re-execution only
    adds work, so in that case the instance itself is infeasible and callers
    must see that -- not a silent infinite-energy record.
    """
    a = heuristic_energy_gain(problem, candidates_per_round=candidates_per_round,
                              method=method)
    b = heuristic_parallel_slack(problem, candidates_per_round=candidates_per_round,
                                 method=method)
    if not a.feasible and not b.feasible:
        raise InfeasibleProblemError(
            "no reliable schedule exists: the reliability floors do not fit "
            f"the deadline {problem.deadline:.6g} even without re-execution")
    best = a if a.energy <= b.energy else b
    other = b if best is a else a
    result = SolveResult(schedule=best.schedule, energy=best.energy, status=best.status,
                         solver="tricrit-heuristic-best-of",
                         metadata={
                             "winner": best.solver,
                             "energy_gain_heuristic": a.energy,
                             "parallel_slack_heuristic": b.energy,
                             "reexecuted": best.metadata.get("reexecuted", []),
                         })
    return result


#: Registry used by the heuristic-comparison experiment (E9).
TRICRIT_HEURISTICS = {
    "no_reexec": solve_tricrit_no_reexec,
    "energy_gain": heuristic_energy_gain,
    "parallel_slack": heuristic_parallel_slack,
    "best_of": best_of_heuristics,
}
