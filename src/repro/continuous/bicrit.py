"""BI-CRIT CONTINUOUS front-end: closed forms when possible, convex otherwise.

:func:`solve_bicrit_continuous` inspects the instance and picks the cheapest
correct solver:

* a linear chain on a single processor  -> :func:`chain closed form
  <repro.continuous.closed_form.chain_bicrit>`;
* a fork (or join) with one task per processor -> the paper's fork theorem;
* a series-parallel graph mapped with one parallel branch per processor and
  unbounded-feasible speeds -> the equivalent-weight recursion;
* everything else -> the numerical convex program of
  :mod:`repro.continuous.convex`.

The selected route is recorded in the returned metadata so experiments can
report which results came from algebraic formulas and which from numerical
optimisation.
"""

from __future__ import annotations

import math

from ..core.problems import BiCritProblem, SolveResult
from ..core.schedule import Schedule, TaskDecision
from ..solvers.context import SolverContext
from .closed_form import (
    ClosedFormSolution,
    NoFeasibleSpeedError,
    chain_bicrit,
    fork_bicrit,
    series_parallel_bicrit,
)
from .convex import solve_bicrit_continuous_dag

__all__ = ["solve_bicrit_continuous"]


def _closed_form_to_result(problem: BiCritProblem, solution: ClosedFormSolution,
                           route: str) -> SolveResult:
    graph = problem.graph
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        speed = solution.speeds[t] if w > 0 else problem.platform.fmax
        decisions[t] = TaskDecision.single(t, w, speed if speed > 0 else problem.platform.fmax)
    schedule = Schedule(problem.mapping, problem.platform, decisions)
    return SolveResult(schedule=schedule, energy=schedule.energy(), status="optimal",
                       solver=f"continuous-closed-form[{route}]",
                       metadata={"route": route, "closed_form_energy": solution.energy})


def solve_bicrit_continuous(problem: BiCritProblem, *, prefer_closed_form: bool = True,
                            method: str = "auto",
                            context: SolverContext | None = None) -> SolveResult:
    """Solve BI-CRIT under the CONTINUOUS model, choosing the best route.

    With ``prefer_closed_form`` (default) the structure of the instance is
    inspected first: single-processor instances use the chain formula, forks
    with one task per processor use the paper's fork theorem, series-parallel
    graphs whose mapping adds no serialisation use the equivalent-weight
    recursion; every other instance (or any closed form whose speeds would
    violate the platform bounds) is solved by the numerical convex program,
    selected by ``method`` (``"auto"``, ``"slsqp"`` or ``"trust-constr"``).
    The returned :class:`~repro.core.problems.SolveResult` carries the chosen
    route in its metadata.  The structure probes come from the problem's
    memoized :class:`~repro.solvers.context.SolverContext` (pass ``context``
    to share an already-built one), so repeated solves of the same instance
    classify it once.
    """
    graph = problem.graph
    platform = problem.platform
    ctx = context if context is not None else SolverContext.for_problem(problem)

    if prefer_closed_form:
        # Route 1: single-processor chain (or any graph fully serialised on
        # one processor -- then only the serialisation order matters).
        if ctx.is_single_processor:
            order = problem.mapping.tasks_on(0)
            try:
                solution = chain_bicrit(
                    [graph.weight(t) for t in order], problem.deadline,
                    fmax=platform.fmax, fmin=platform.fmin, task_ids=list(order),
                    exponent=platform.energy_model.exponent,
                )
                return _closed_form_to_result(problem, solution, "chain")
            except NoFeasibleSpeedError as exc:
                return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                                   solver="continuous-closed-form[chain]",
                                   metadata={"message": str(exc)})

        # Route 2: fork theorem.
        source = ctx.fork_source
        if source is not None and ctx.one_task_per_processor and graph.num_tasks > 1:
            children = [t for t in graph.tasks() if t != source]
            try:
                solution = fork_bicrit(
                    graph.weight(source), [graph.weight(c) for c in children],
                    problem.deadline, fmax=platform.fmax, fmin=platform.fmin,
                    exponent=platform.energy_model.exponent,
                    source_id=source, child_ids=children,
                )
                if solution.within_bounds:
                    return _closed_form_to_result(problem, solution, "fork")
            except NoFeasibleSpeedError as exc:
                return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                                   solver="continuous-closed-form[fork]",
                                   metadata={"message": str(exc)})

        # Route 3: series-parallel equivalent-weight recursion (only valid
        # when the mapping does not add serialisation and the resulting
        # speeds respect the bounds).  The decomposition tree is memoized on
        # the context, so the recursion reuses it instead of re-decomposing.
        if ctx.mapping_adds_no_edges and ctx.sp_decomposition is not None:
            try:
                solution = series_parallel_bicrit(
                    ctx.sp_decomposition, problem.deadline,
                    fmax=platform.fmax, fmin=platform.fmin,
                    exponent=platform.energy_model.exponent,
                )
                if solution.within_bounds:
                    return _closed_form_to_result(problem, solution, "series_parallel")
            except NoFeasibleSpeedError:
                pass

    # Route 4: general convex program.
    return solve_bicrit_continuous_dag(problem, method=method)
