"""TRI-CRIT CONTINUOUS on a fork: the paper's polynomial-time algorithm.

Section III: "We were also able to find a polynomial time algorithm to solve
the problem for a fork. [...] those highly parallelizable tasks should be
preferred when allocating time slots for re-execution or deceleration."

On a fork the structure of any schedule is simple: the source ``T_0``
executes first (once or twice) and finishes at some time ``t_0``; all the
children then run concurrently, each on its own processor, within the
remaining budget ``D - t_0``.  Given its time budget ``B`` a task is solved
independently and optimally in O(1):

* single execution: speed ``max(w/B, f_rel)`` (feasible when ``<= fmax``),
  energy ``w f^2``;
* re-execution: both attempts at speed ``max(2w/B, floor)`` where ``floor``
  is the slowest equal speed meeting the reliability constraint twice,
  energy ``2 w f^2``;
* the task picks the cheaper feasible option.

The per-task energy as a function of the budget is piecewise smooth with a
constant number of breakpoints (speed-clamping kinks plus the
single/re-execution crossover), so the total energy as a function of ``t_0``
has O(n) breakpoints; minimising it by scanning the breakpoint intervals
(convex inside each interval) yields a polynomial-time algorithm
(:func:`solve_tricrit_fork`).  :func:`solve_tricrit_fork_bruteforce`
enumerates all ``2^(n+1)`` re-execution configurations as ground truth.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
from scipy import optimize as sciopt

from ..core.problems import SolveResult, TriCritProblem
from ..core.reliability import ReliabilityModel
from ..core.schedule import Schedule, TaskDecision
from ..dag.taskgraph import TaskId
from ..solvers.limits import FORK_BRUTEFORCE_MAX_TASKS
from .tricrit_chain import reexecution_speed_floor

__all__ = [
    "TaskBudgetChoice",
    "best_choice_for_budget",
    "solve_tricrit_fork",
    "solve_tricrit_fork_bruteforce",
]


@dataclass(frozen=True)
class TaskBudgetChoice:
    """Optimal decision of one task given a time budget."""

    reexecute: bool
    speed: float
    energy: float
    duration: float
    feasible: bool


def _single_choice(weight: float, budget: float, frel: float, fmax: float,
                   exponent: float) -> TaskBudgetChoice:
    if weight <= 0:
        return TaskBudgetChoice(False, fmax, 0.0, 0.0, True)
    if budget <= 0:
        return TaskBudgetChoice(False, fmax, math.inf, math.inf, False)
    speed = max(weight / budget, frel)
    if speed > fmax * (1.0 + 1e-12):
        return TaskBudgetChoice(False, fmax, math.inf, math.inf, False)
    energy = weight * speed ** (exponent - 1.0)
    return TaskBudgetChoice(False, speed, energy, weight / speed, True)


def _reexec_choice(weight: float, budget: float, floor: float, fmax: float,
                   exponent: float) -> TaskBudgetChoice:
    if weight <= 0:
        return TaskBudgetChoice(False, fmax, 0.0, 0.0, True)
    if budget <= 0:
        return TaskBudgetChoice(True, fmax, math.inf, math.inf, False)
    speed = max(2.0 * weight / budget, floor)
    if speed > fmax * (1.0 + 1e-12):
        return TaskBudgetChoice(True, fmax, math.inf, math.inf, False)
    energy = 2.0 * weight * speed ** (exponent - 1.0)
    return TaskBudgetChoice(True, speed, energy, 2.0 * weight / speed, True)


def best_choice_for_budget(weight: float, budget: float, *, model: ReliabilityModel,
                           fmin: float, fmax: float,
                           exponent: float = 3.0,
                           force: bool | None = None) -> TaskBudgetChoice:
    """Cheapest feasible decision (single vs re-executed) for one task.

    ``force`` pins the decision (used by the brute-force reference): ``True``
    forces re-execution, ``False`` forces a single execution, ``None`` lets
    the task choose.
    """
    frel = max(model.frel, fmin)
    floor = reexecution_speed_floor(model, weight, fmin)
    single = _single_choice(weight, budget, frel, fmax, exponent)
    reexec = _reexec_choice(weight, budget, floor, fmax, exponent)
    if force is True:
        return reexec
    if force is False:
        return single
    if not single.feasible:
        return reexec
    if not reexec.feasible:
        return single
    return reexec if reexec.energy < single.energy else single


def _fork_instance(problem: TriCritProblem) -> tuple[TaskId, list[TaskId]]:
    is_fork, source = problem.graph.is_fork()
    if not is_fork:
        raise ValueError("the fork solvers require a fork task graph")
    if any(len(tasks) > 1 for tasks in problem.mapping.as_lists()):
        raise ValueError("the fork solvers require one task per processor")
    children = [t for t in problem.graph.tasks() if t != source]
    return source, children


def _total_energy(problem: TriCritProblem, t0: float, *,
                  source: TaskId, children: list[TaskId],
                  force: dict[TaskId, bool] | None = None) -> tuple[float, dict[TaskId, TaskBudgetChoice]]:
    graph = problem.graph
    platform = problem.platform
    model = problem.reliability()
    a = platform.energy_model.exponent
    choices: dict[TaskId, TaskBudgetChoice] = {}
    total = 0.0
    src_choice = best_choice_for_budget(
        graph.weight(source), t0, model=model, fmin=platform.fmin, fmax=platform.fmax,
        exponent=a, force=None if force is None else force.get(source),
    )
    choices[source] = src_choice
    if not src_choice.feasible:
        return math.inf, choices
    total += src_choice.energy
    remaining = problem.deadline - t0
    for child in children:
        choice = best_choice_for_budget(
            graph.weight(child), remaining, model=model, fmin=platform.fmin,
            fmax=platform.fmax, exponent=a,
            force=None if force is None else force.get(child),
        )
        choices[child] = choice
        if not choice.feasible:
            return math.inf, choices
        total += choice.energy
    return total, choices


def _choices_to_result(problem: TriCritProblem, t0: float,
                       choices: dict[TaskId, TaskBudgetChoice],
                       solver: str, extra: dict | None = None) -> SolveResult:
    graph = problem.graph
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        choice = choices[t]
        if w <= 0:
            decisions[t] = TaskDecision.single(t, w, problem.platform.fmax)
        elif choice.reexecute:
            decisions[t] = TaskDecision.reexecuted(t, w, choice.speed, choice.speed)
        else:
            decisions[t] = TaskDecision.single(t, w, choice.speed)
    schedule = Schedule(problem.mapping, problem.platform, decisions)
    metadata = {
        "source_finish_time": t0,
        "reexecuted": sorted(str(t) for t, c in choices.items() if c.reexecute and graph.weight(t) > 0),
    }
    if extra:
        metadata.update(extra)
    return SolveResult(schedule=schedule, energy=schedule.energy(), status="optimal",
                       solver=solver, metadata=metadata)


def _breakpoints(problem: TriCritProblem, source: TaskId,
                 children: list[TaskId]) -> list[float]:
    graph = problem.graph
    platform = problem.platform
    model = problem.reliability()
    D = problem.deadline
    frel = max(model.frel, platform.fmin)
    points: set[float] = set()

    def task_breakpoints(weight: float) -> list[float]:
        if weight <= 0:
            return []
        floor = reexecution_speed_floor(model, weight, platform.fmin)
        return [
            weight / platform.fmax,
            2.0 * weight / platform.fmax,
            weight / frel,
            2.0 * weight / floor,
            2.0 * math.sqrt(2.0) * weight / frel,  # single/re-exec crossover
        ]

    for b in task_breakpoints(graph.weight(source)):
        points.add(b)
    for child in children:
        for b in task_breakpoints(graph.weight(child)):
            points.add(D - b)
    return sorted(points)


def solve_tricrit_fork(problem: TriCritProblem, *, grid_per_interval: int = 8) -> SolveResult:
    """Polynomial-time TRI-CRIT solver for forks (breakpoint-interval scan)."""
    source, children = _fork_instance(problem)
    graph = problem.graph
    platform = problem.platform
    D = problem.deadline

    w0 = graph.weight(source)
    max_child_min = max(
        (graph.weight(c) / platform.fmax for c in children if graph.weight(c) > 0),
        default=0.0,
    )
    t0_min = w0 / platform.fmax if w0 > 0 else 0.0
    t0_max = D - max_child_min
    if t0_min > t0_max * (1.0 + 1e-12) or (w0 > 0 and t0_min > D):
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver="tricrit-fork-poly",
                           metadata={"message": "deadline too tight even at fmax"})
    if w0 <= 0 and not children:
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver="tricrit-fork-poly", metadata={"message": "empty fork"})

    candidates = [t0_min, t0_max]
    candidates.extend(
        b for b in _breakpoints(problem, source, children) if t0_min <= b <= t0_max
    )
    candidates = sorted(set(candidates))

    def energy_at(t0: float) -> float:
        value = _total_energy(problem, t0, source=source, children=children)[0]
        # minimize_scalar dislikes infinities; a large finite penalty keeps
        # the bracketing arithmetic well defined.
        return value if math.isfinite(value) else 1e300

    best_t0 = None
    best_energy = math.inf
    # Evaluate breakpoints themselves plus a bounded scalar minimisation on
    # every interval (the per-interval restriction is smooth and convex).
    for t0 in candidates:
        e = energy_at(t0)
        if e < best_energy:
            best_energy, best_t0 = e, t0
    for left, right in zip(candidates[:-1], candidates[1:]):
        if right - left <= 1e-12:
            continue
        res = sciopt.minimize_scalar(energy_at, bounds=(left, right), method="bounded",
                                     options={"xatol": 1e-8})
        if res.fun < best_energy:
            best_energy, best_t0 = float(res.fun), float(res.x)
        # Guard against a non-convex corner case: coarse grid inside the interval.
        for k in range(1, grid_per_interval):
            t0 = left + (right - left) * k / grid_per_interval
            e = energy_at(t0)
            if e < best_energy:
                best_energy, best_t0 = e, t0

    if best_t0 is None or not math.isfinite(best_energy) or best_energy >= 1e299:
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver="tricrit-fork-poly",
                           metadata={"message": "no feasible source finish time"})
    _, choices = _total_energy(problem, best_t0, source=source, children=children)
    return _choices_to_result(problem, best_t0, choices, "tricrit-fork-poly",
                              {"intervals": len(candidates) - 1})


def solve_tricrit_fork_bruteforce(problem: TriCritProblem, *,
                                  max_tasks: int = FORK_BRUTEFORCE_MAX_TASKS) -> SolveResult:
    """Exhaustive reference: enumerate every re-execution configuration.

    For each of the ``2^(n+1)`` configurations the energy is a convex
    function of the source finish time ``t_0`` and is minimised with a
    bounded scalar search.  Exponential -- only for small forks / tests.
    """
    source, children = _fork_instance(problem)
    graph = problem.graph
    platform = problem.platform
    D = problem.deadline
    tasks = [source] + children
    if len(tasks) > max_tasks:
        raise ValueError(
            f"brute force limited to {max_tasks} tasks (got {len(tasks)})"
        )
    positive_tasks = [t for t in tasks if graph.weight(t) > 0]

    w0 = graph.weight(source)
    max_child_min = max(
        (graph.weight(c) / platform.fmax for c in children if graph.weight(c) > 0),
        default=0.0,
    )
    t0_min = max(w0 / platform.fmax if w0 > 0 else 0.0, 1e-12)
    t0_max = D - max_child_min

    best_energy = math.inf
    best = None
    configs = 0
    for reexec_tuple in itertools.product([False, True], repeat=len(positive_tasks)):
        force = dict(zip(positive_tasks, reexec_tuple))
        configs += 1
        lo = 2.0 * w0 / platform.fmax if (w0 > 0 and force.get(source)) else t0_min
        lo = max(lo, 1e-12)
        hi = t0_max
        if lo > hi:
            continue

        def energy_at(t0: float, force=force) -> float:
            value = _total_energy(problem, t0, source=source, children=children,
                                  force=force)[0]
            return value if math.isfinite(value) else 1e300

        if hi - lo <= 1e-12:
            t_best, e_best = lo, energy_at(lo)
        else:
            res = sciopt.minimize_scalar(energy_at, bounds=(lo, hi), method="bounded",
                                         options={"xatol": 1e-8})
            t_best, e_best = float(res.x), float(res.fun)
            for endpoint in (lo, hi):
                e = energy_at(endpoint)
                if e < e_best:
                    t_best, e_best = endpoint, e
        if e_best < best_energy:
            best_energy = e_best
            best = (t_best, force)

    if best is None or not math.isfinite(best_energy) or best_energy >= 1e299:
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver="tricrit-fork-bruteforce",
                           metadata={"configurations": configs})
    t0, force = best
    _, choices = _total_energy(problem, t0, source=source, children=children, force=force)
    return _choices_to_result(problem, t0, choices, "tricrit-fork-bruteforce",
                              {"configurations": configs})
