"""Exhaustive reference solvers (ground truth on small instances).

The complexity results of the paper mean that no polynomial algorithm is
expected for TRI-CRIT (or for BI-CRIT under the DISCRETE models); the test
suite and the complexity experiments therefore rely on exhaustive solvers
whose correctness is easy to argue:

* :func:`solve_tricrit_exhaustive` enumerates every subset of re-executed
  tasks and solves the restricted convex problem for each subset -- the
  global optimum of TRI-CRIT CONTINUOUS on any mapped DAG (at exponential
  cost);
* :func:`best_known_tricrit` bundles the exhaustive solver (when affordable)
  with the heuristics to produce the best-known reference value used in the
  heuristic-quality experiments.
"""

from __future__ import annotations

import itertools
import math

from ..core.problems import InfeasibleProblemError, SolveResult, TriCritProblem
from ..solvers.context import SolverContext
from ..solvers.limits import (
    BEST_KNOWN_EXHAUSTIVE_LIMIT,
    BEST_KNOWN_PRUNED_LIMIT,
    EXHAUSTIVE_SUBSET_MAX_TASKS,
)
from .heuristics import best_of_heuristics, solve_with_reexec_set

__all__ = ["solve_tricrit_exhaustive", "best_known_tricrit"]


def solve_tricrit_exhaustive(problem: TriCritProblem, *,
                             max_tasks: int = EXHAUSTIVE_SUBSET_MAX_TASKS,
                             method: str = "auto") -> SolveResult:
    """Global optimum of TRI-CRIT CONTINUOUS by subset enumeration.

    ``max_tasks`` bounds the number of positive-weight tasks (the number of
    restricted convex solves is ``2^n``); it defaults to the central
    :data:`~repro.solvers.limits.EXHAUSTIVE_SUBSET_MAX_TASKS` shared with
    the VDD-HOPPING subset enumeration.  The metadata reports how many
    subsets were evaluated.
    """
    ctx = SolverContext.for_problem(problem)
    positive = list(ctx.positive_tasks)
    if len(positive) > max_tasks:
        raise ValueError(
            f"exhaustive TRI-CRIT limited to {max_tasks} tasks (got {len(positive)})"
        )
    best: SolveResult | None = None
    evaluated = 0
    for r in range(len(positive) + 1):
        for subset in itertools.combinations(positive, r):
            candidate = solve_with_reexec_set(problem, subset, method=method,
                                              solver_name="tricrit-exhaustive",
                                              context=ctx)
            evaluated += 1
            if candidate.feasible and (best is None or candidate.energy < best.energy):
                best = candidate
    if best is None:
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver="tricrit-exhaustive",
                           metadata={"subsets_evaluated": evaluated})
    best.solver = "tricrit-exhaustive"
    best.status = "optimal"
    best.metadata["subsets_evaluated"] = evaluated
    return best


def best_known_tricrit(problem: TriCritProblem, *,
                       exhaustive_limit: int = BEST_KNOWN_EXHAUSTIVE_LIMIT,
                       pruned_limit: int = BEST_KNOWN_PRUNED_LIMIT,
                       method: str = "auto") -> SolveResult:
    """Best-known solution: exhaustive, then pruned search, then heuristics.

    Instances up to ``exhaustive_limit`` positive-weight tasks use the blind
    subset enumeration, up to ``pruned_limit`` the branch-and-bound optimum
    (same value, far cheaper), and beyond that the heuristic families.  An
    infeasible instance raises
    :class:`~repro.core.problems.InfeasibleProblemError` on every route, so
    callers never mistake an infinite-energy record for a reference value.
    """
    positive = [t for t in problem.graph.tasks() if problem.graph.weight(t) > 0]
    if len(positive) <= exhaustive_limit:
        result = solve_tricrit_exhaustive(problem, max_tasks=exhaustive_limit,
                                          method=method)
    elif len(positive) <= pruned_limit:
        from ..solvers.pruned import solve_tricrit_pruned

        result = solve_tricrit_pruned(problem, max_tasks=pruned_limit,
                                      method=method)
    else:
        result = best_of_heuristics(problem, method=method)
    if not result.feasible:
        raise InfeasibleProblemError(
            "no reliable schedule exists: the reliability floors do not fit "
            f"the deadline {problem.deadline:.6g} even without re-execution")
    return result
