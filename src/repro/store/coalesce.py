"""Single-flight request coalescing for identical in-flight computations.

When K identical solve requests arrive concurrently (same content-hash
key), exactly one thread -- the *leader* -- runs the computation; the other
K-1 *waiters* block on an event and share the leader's result (or
exception).  Layered under the engine's cache read: a waiter that wakes up
finds the result already cached, so coalesced requests are answered without
ever touching the solver.

This is per-process by design.  Cross-process duplication is bounded by the
shared :class:`~repro.store.result_store.ResultStore`: the first process to
finish publishes, later processes read.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["Coalescer", "Flight"]


class Flight:
    """One in-flight computation; waiters block on :meth:`wait`."""

    __slots__ = ("key", "_done", "result", "error")

    def __init__(self, key: str) -> None:
        self.key = key
        self._done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None

    def resolve(self, result: Any = None,
                error: BaseException | None = None) -> None:
        self.result = result
        self.error = error
        self._done.set()

    def wait(self, timeout: float | None = None) -> Any:
        """Block until the leader resolves; re-raises the leader's error."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"coalesced computation for {self.key!r} did not finish "
                f"within {timeout}s")
        if self.error is not None:
            raise self.error
        return self.result


class Coalescer:
    """Key-addressed single-flight table.

    Usage::

        flight, leader = coalescer.claim(key)
        if leader:
            try:
                result = compute()
            except BaseException as exc:
                coalescer.resolve(flight, error=exc)   # wakes waiters
                raise
            coalescer.resolve(flight, result=result)
        else:
            result = flight.wait(timeout)              # shares the leader's

    The flight is unregistered when resolved, so a later request for the
    same key (e.g. a cache-bypassing refresh) starts a fresh computation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, Flight] = {}  # guarded-by: _lock
        self._coalesced = 0  # guarded-by: _lock
        self._led = 0  # guarded-by: _lock

    def claim(self, key: str) -> tuple[Flight, bool]:
        """``(flight, is_leader)`` -- leader computes, waiters wait."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                self._coalesced += 1
                return flight, False
            flight = Flight(key)
            self._flights[key] = flight
            self._led += 1
            return flight, True

    def resolve(self, flight: Flight, result: Any = None,
                error: BaseException | None = None) -> None:
        """Publish the leader's outcome and retire the flight."""
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
        flight.resolve(result, error)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"in_flight": len(self._flights),
                    "coalesced_waits": self._coalesced,
                    "flights_led": self._led}
