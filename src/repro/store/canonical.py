"""Canonical JSON forms and content hashing for the result-store tier.

Every cache key in the repository -- the campaign cache, the engine result
cache, the persistent store -- is a SHA-256 over the *canonical* JSON form
of a configuration: containers collapsed to plain lists/dicts, numpy
scalars/arrays to their Python equivalents, dict keys stringified.  This
module owns that definition (it used to live in
:mod:`repro.campaign.cache`, which now re-exports it) so the store tier
sits below both the campaign and API layers without an import cycle.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from typing import Any

import numpy as np

__all__ = ["canonicalize", "canonical_blob", "content_checksum"]


def canonicalize(value: Any) -> Any:
    """Reduce a parameter/result value to a canonical JSON-compatible form.

    Tuples and lists collapse to lists, mappings to plain dicts with string
    keys (insertion order preserved -- key hashing sorts independently, and
    stored result rows keep their column order), numpy scalars/arrays to
    their Python equivalents.  Two configurations that compare equal after
    canonicalisation hash to the same cache key regardless of the container
    types used to express them.
    """
    if isinstance(value, (str, bool, int, type(None))):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.generic):
        return canonicalize(value.item())
    if isinstance(value, np.ndarray):
        return [canonicalize(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): canonicalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [canonicalize(v) for v in items]
    raise TypeError(f"cannot canonicalise {type(value).__name__!r} value {value!r} "
                    "for the result cache")


def canonical_blob(value: Any) -> bytes:
    """The canonical, key-sorted, whitespace-free JSON bytes of ``value``."""
    return json.dumps(canonicalize(value), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def content_checksum(value: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_blob` -- the integrity hash
    stored alongside every persistent record and re-checked on read."""
    return hashlib.sha256(canonical_blob(value)).hexdigest()
