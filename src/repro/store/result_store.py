"""Persistent, process-safe, content-addressed result store.

One on-disk tier shared by every cache in the repository.  The campaign
cache (:mod:`repro.campaign.cache`) and the API engine's result cache
(:mod:`repro.api.engine`) both key records by SHA-256 hashes of canonical
JSON; this module gives those keys a durable, multi-process home:

* **sharded layout** -- ``root/<namespace>/<key[:2]>/<key>.json`` keeps any
  one directory small even with hundreds of thousands of entries;
* **atomic writes** -- records land via a per-process/thread temp file and
  ``Path.replace`` (an atomic rename on POSIX), so concurrent writers never
  expose a torn record: readers see the old complete record or the new one;
* **envelope + checksum** -- every file wraps its payload in
  ``{"v", "key", "namespace", "created_unix", "checksum", "payload"}`` where
  ``checksum`` is the SHA-256 of the canonical payload JSON.  Keys hash the
  *request* configuration, not the stored content, so the envelope checksum
  is what lets ``verify`` detect bit rot or foreign tampering;
* **in-memory index** -- a small LRU of deserialised payloads keyed by
  ``(namespace, key)`` and invalidated by file ``(mtime_ns, size)``, so a
  hot read is a ``stat`` instead of a read+parse while writes from *other
  processes* are still picked up;
* **quarantine** -- unreadable or checksum-mismatched entries are moved
  aside to ``<key>.json.corrupt`` (outside the ``*.json`` glob), so a torn
  or rotted record costs exactly one miss and never shadows a recomputed
  result;
* **LRU-by-size eviction** -- ``evict_to(max_bytes)`` deletes
  oldest-accessed records first until the tree fits the budget; a store
  constructed with ``max_bytes`` self-evicts on write.

The store sits *below* :mod:`repro.campaign` and :mod:`repro.api` in the
layer diagram (see DESIGN.md) and must not import either.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from collections.abc import Iterator, Mapping
from pathlib import Path
from typing import Any

from .canonical import content_checksum

__all__ = ["ResultStore", "StoreError", "DEFAULT_STORE_DIR",
           "resolve_store_root", "parse_bytes"]

#: Default on-disk location, relative to the current working directory.
#: Deliberately the same directory the campaign cache always used -- the
#: point of the tier is one store, not two.
DEFAULT_STORE_DIR = ".repro-cache"

#: Envelope schema version; bump if the envelope layout itself changes.
ENVELOPE_VERSION = 1

#: Deserialised-payload LRU entries held per store instance.
DEFAULT_INDEX_ENTRIES = 1024


class StoreError(RuntimeError):
    """Raised for unusable store configuration (not for per-entry damage --
    damaged entries are quarantined and read as misses)."""


def resolve_store_root(root: str | os.PathLike | None = None) -> Path:
    """The effective store root: explicit argument, else ``$REPRO_STORE_DIR``,
    else ``$REPRO_CACHE_DIR`` (the campaign cache's historical knob), else
    ``.repro-cache`` under the current directory."""
    if root is None:
        root = (os.environ.get("REPRO_STORE_DIR")
                or os.environ.get("REPRO_CACHE_DIR")
                or DEFAULT_STORE_DIR)
    return Path(root)


def parse_bytes(text: str) -> int:
    """Parse a byte budget: a plain integer or ``100k`` / ``64m`` / ``2g``
    (binary multiples).  Raises :class:`ValueError` on anything else, so it
    slots directly into ``argparse`` ``type=`` callbacks."""
    raw = text.strip().lower()
    multiplier = 1
    for suffix, scale in (("k", 1024), ("m", 1024 ** 2), ("g", 1024 ** 3)):
        if raw.endswith(suffix):
            raw, multiplier = raw[:-1], scale
            break
    try:
        value = int(float(raw) * multiplier)
    except ValueError:
        raise ValueError(f"expected a byte count like 500000, 100k, 64m "
                         f"or 2g, got {text!r}") from None
    if value < 0:
        raise ValueError(f"byte count must be >= 0, got {text!r}")
    return value


def _is_key(name: str) -> bool:
    return len(name) >= 3 and all(c in "0123456789abcdef" for c in name)


class ResultStore:
    """Sharded JSON-file store addressed by hex content-hash keys.

    All public methods are thread-safe; cross-process safety comes from the
    atomic rename write path and the mtime-validated in-memory index, not
    from any lock file -- there is no coordination to deadlock on.
    """

    def __init__(self, root: str | os.PathLike | None = None, *,
                 max_bytes: int | None = None,
                 index_entries: int = DEFAULT_INDEX_ENTRIES) -> None:
        self.root = resolve_store_root(root)
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._index: OrderedDict[tuple[str, str], tuple[int, int, Any]] = OrderedDict()  # guarded-by: _lock
        self._index_entries = max(0, index_entries)
        self._lock = threading.Lock()
        self._counters = {"hits": 0, "misses": 0, "writes": 0,  # guarded-by: _lock
                          "evictions": 0, "quarantined": 0}

    # -- addressing ----------------------------------------------------
    def path_for(self, key: str, namespace: str = "results") -> Path:
        """On-disk location of ``key``: ``root/<ns>/<key[:2]>/<key>.json``."""
        if not _is_key(key):
            raise StoreError(f"store keys are hex content hashes, got {key!r}")
        return self.root / namespace / key[:2] / f"{key}.json"

    def namespaces(self) -> list[str]:
        """Namespace directories present under the root, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and not p.name.startswith("."))

    # -- read ----------------------------------------------------------
    def get(self, key: str, namespace: str = "results") -> Any | None:
        """The payload stored under ``key``, or ``None`` on a miss.

        Corrupt or checksum-mismatched entries are quarantined (moved to
        ``<key>.json.corrupt``) and count as a miss exactly once.  A valid
        read refreshes the in-memory index; index entries are trusted only
        while the file's ``(mtime_ns, size)`` is unchanged, so writes from
        other processes invalidate naturally.
        """
        path = self.path_for(key, namespace)
        try:
            stat = path.stat()
        except OSError:
            self._bump("misses")
            return None
        cache_key = (namespace, key)
        with self._lock:
            entry = self._index.get(cache_key)
            if entry is not None and entry[0] == stat.st_mtime_ns \
                    and entry[1] == stat.st_size:
                self._index.move_to_end(cache_key)
                self._counters["hits"] += 1
                return entry[2]
        payload = self._read_envelope(path, key, namespace)
        if payload is None:
            self._bump("misses")
            return None
        with self._lock:
            self._remember(cache_key, stat.st_mtime_ns, stat.st_size, payload)
            self._counters["hits"] += 1
        return payload

    def _read_envelope(self, path: Path, key: str, namespace: str) -> Any | None:
        """Parse + integrity-check one envelope file; quarantine on damage."""
        try:
            with path.open(encoding="utf-8") as fh:
                envelope = json.load(fh)
        except FileNotFoundError:
            return None
        # ValueError covers JSONDecodeError and the UnicodeDecodeError a
        # torn write can leave behind.
        except ValueError:
            self.quarantine(path)
            return None
        except OSError:
            return None
        if (not isinstance(envelope, dict) or "payload" not in envelope
                or envelope.get("key") not in (None, key)
                or envelope.get("checksum") != content_checksum(envelope["payload"])):
            self.quarantine(path)
            return None
        return envelope["payload"]

    def _remember(self, cache_key: tuple[str, str], mtime_ns: int,
                  size: int, payload: Any) -> None:  # requires: _lock
        if self._index_entries <= 0:
            return
        self._index[cache_key] = (mtime_ns, size, payload)
        self._index.move_to_end(cache_key)
        while len(self._index) > self._index_entries:
            self._index.popitem(last=False)

    def records(self, namespace: str = "results") -> Iterator[dict]:
        """All readable envelopes in ``namespace``, in key order.

        Damaged files are quarantined and skipped, mirroring :meth:`get`.
        """
        ns_dir = self.root / namespace
        if not ns_dir.is_dir():
            return
        for path in sorted(ns_dir.rglob("*.json")):
            try:
                with path.open(encoding="utf-8") as fh:
                    envelope = json.load(fh)
            except ValueError:
                self.quarantine(path)
                continue
            except OSError:
                continue
            if (not isinstance(envelope, dict) or "payload" not in envelope
                    or envelope.get("checksum")
                    != content_checksum(envelope["payload"])):
                self.quarantine(path)
                continue
            yield envelope

    # -- write ---------------------------------------------------------
    def put(self, key: str, payload: Any, namespace: str = "results") -> Path:
        """Persist ``payload`` under ``key`` atomically; returns the path.

        The envelope checksum is computed over the canonical payload JSON;
        the write goes through a per-process/thread temp file and an atomic
        rename, so a concurrent reader sees either the previous complete
        record or this one -- never a prefix.
        """
        path = self.path_for(key, namespace)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "v": ENVELOPE_VERSION,
            "key": key,
            "namespace": namespace,
            "created_unix": time.time(),
            "checksum": content_checksum(payload),
            "payload": payload,
        }
        tmp = path.with_suffix(
            f".tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            with tmp.open("w", encoding="utf-8") as fh:
                # repro: allow[REP002] -- envelope body only; its key and
                # checksum were computed upstream via canonical_blob
                json.dump(envelope, fh, separators=(",", ":"))
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)
        try:
            stat = path.stat()
        except OSError:
            stat = None
        with self._lock:
            self._counters["writes"] += 1
            if stat is not None:
                self._remember((namespace, key), stat.st_mtime_ns,
                               stat.st_size, payload)
        if self.max_bytes is not None:
            self.evict_to(self.max_bytes)
        return path

    def delete(self, key: str, namespace: str = "results") -> bool:
        """Remove one record; True if a file was deleted."""
        path = self.path_for(key, namespace)
        with self._lock:
            self._index.pop((namespace, key), None)
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def clear(self, namespace: str | None = None) -> int:
        """Delete every record (in one namespace, or all); returns count."""
        removed = 0
        for ns in ([namespace] if namespace else self.namespaces()):
            ns_dir = self.root / ns
            if not ns_dir.is_dir():
                continue
            for path in ns_dir.rglob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        with self._lock:
            if namespace is None:
                self._index.clear()
            else:
                for cache_key in [k for k in self._index if k[0] == namespace]:
                    del self._index[cache_key]
        return removed

    # -- maintenance ---------------------------------------------------
    def quarantine(self, path: Path) -> Path | None:
        """Move a damaged entry aside (best effort); returns its new path.

        ``<key>.json.corrupt`` does not match the ``*.json`` glob, so the
        entry vanishes from reads and counts while staying on disk for
        post-mortem inspection.
        """
        target = path.with_suffix(path.suffix + ".corrupt")
        try:
            path.replace(target)
        except OSError:
            return None
        self._bump("quarantined")
        with self._lock:
            self._index.pop((path.parent.parent.name, path.stem), None)
        return target

    def evict_to(self, max_bytes: int, namespace: str | None = None) -> int:
        """Delete least-recently-used records until the tree fits the
        budget; returns the number of records evicted.

        "Recently used" is the file's ``st_mtime`` (refreshed by writes;
        eviction therefore approximates insertion-order LRU, which is the
        honest guarantee a multi-process store can give without a shared
        access log).
        """
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for ns in ([namespace] if namespace else self.namespaces()):
            ns_dir = self.root / ns
            if not ns_dir.is_dir():
                continue
            for path in ns_dir.rglob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        if total <= max_bytes:
            return 0
        evicted = 0
        entries.sort()                      # oldest mtime first
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
            with self._lock:
                self._index.pop((path.parent.parent.name, path.stem), None)
        if evicted:
            with self._lock:
                self._counters["evictions"] += evicted
        return evicted

    def verify(self, namespace: str | None = None) -> dict[str, int]:
        """Re-check every envelope checksum; quarantine mismatches.

        Returns ``{"checked", "ok", "quarantined"}``.  Store keys hash the
        request configuration, not the stored content, so this pass is the
        only way bit rot or an interrupted write that survived rename (e.g.
        on a non-POSIX filesystem) gets detected before it is served.
        """
        checked = ok = quarantined = 0
        for ns in ([namespace] if namespace else self.namespaces()):
            ns_dir = self.root / ns
            if not ns_dir.is_dir():
                continue
            for path in sorted(ns_dir.rglob("*.json")):
                checked += 1
                try:
                    with path.open(encoding="utf-8") as fh:
                        envelope = json.load(fh)
                    valid = (isinstance(envelope, dict)
                             and "payload" in envelope
                             and envelope.get("checksum")
                             == content_checksum(envelope["payload"]))
                except ValueError:
                    valid = False
                except OSError:
                    continue
                if valid:
                    ok += 1
                elif self.quarantine(path) is not None:
                    quarantined += 1
        return {"checked": checked, "ok": ok, "quarantined": quarantined}

    # -- observability -------------------------------------------------
    def _bump(self, counter: str) -> None:
        with self._lock:
            self._counters[counter] += 1

    def counters(self) -> dict[str, int]:
        """Hit/miss/write/eviction/quarantine counters (this process)."""
        with self._lock:
            return dict(self._counters)

    def count(self, namespace: str = "results") -> int:
        ns_dir = self.root / namespace
        if not ns_dir.is_dir():
            return 0
        return sum(1 for _ in ns_dir.rglob("*.json"))

    def size_bytes(self, namespace: str | None = None) -> int:
        total = 0
        for ns in ([namespace] if namespace else self.namespaces()):
            ns_dir = self.root / ns
            if not ns_dir.is_dir():
                continue
            for path in ns_dir.rglob("*.json"):
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    def stats(self) -> dict[str, Any]:
        """Durable-tier snapshot: per-namespace entry/byte counts plus the
        in-process counters -- the payload of ``GET /v1/store`` and
        ``python -m repro cache stats``."""
        per_namespace = {}
        corrupt = 0
        for ns in self.namespaces():
            ns_dir = self.root / ns
            entries = size = 0
            for path in ns_dir.rglob("*.json"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
            corrupt += sum(1 for _ in ns_dir.rglob("*.json.corrupt"))
            per_namespace[ns] = {"entries": entries, "bytes": size}
        return {
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "namespaces": per_namespace,
            "entries_total": sum(n["entries"] for n in per_namespace.values()),
            "bytes_total": sum(n["bytes"] for n in per_namespace.values()),
            "corrupt_quarantined_files": corrupt,
            "counters": self.counters(),
        }


def envelope_payload(envelope: Mapping[str, Any]) -> Any:
    """The payload of a raw envelope dict (tolerates legacy bare records)."""
    if isinstance(envelope, Mapping) and "payload" in envelope and "checksum" in envelope:
        return envelope["payload"]
    return envelope
