"""Persistent shared result-store tier.

The durable layer under both hot-path caches: the campaign cache
(:mod:`repro.campaign.cache`) adapts it, the API engine
(:mod:`repro.api.engine`) writes through to it, server workers and
distributed campaign workers share one on-disk tree.  See DESIGN.md for the
layer diagram.
"""

from .canonical import canonical_blob, canonicalize, content_checksum
from .coalesce import Coalescer, Flight
from .result_store import (
    DEFAULT_STORE_DIR,
    ResultStore,
    StoreError,
    parse_bytes,
    resolve_store_root,
)

__all__ = [
    "ResultStore",
    "StoreError",
    "Coalescer",
    "Flight",
    "canonicalize",
    "canonical_blob",
    "content_checksum",
    "parse_bytes",
    "resolve_store_root",
    "DEFAULT_STORE_DIR",
]
