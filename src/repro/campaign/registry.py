"""The scenario registry: every experiment E1-E13 as a named scenario.

Each entry binds one ``repro.experiments.run_*`` driver to its canonical
parameters (the table the corresponding ``benchmarks/bench_e*.py`` wrapper
asserts on), a reduced ``--smoke`` parameterisation that finishes in
seconds, and discoverable metadata.  The registry is the single source of
truth shared by the CLI (``python -m repro list/run/campaign``), the sweep
expander, the parallel runner and the benchmark wrappers.
"""

from __future__ import annotations

import os
from collections.abc import Iterator

from ..experiments import (
    run_convex_dag_experiment,
    run_fork_closed_form_experiment,
    run_heuristic_comparison_experiment,
    run_incremental_approx_experiment,
    run_mapping_ablation_experiment,
    run_np_hardness_experiment,
    run_reliability_simulation_experiment,
    run_series_parallel_experiment,
    run_solver_ablation_experiment,
    run_tricrit_chain_experiment,
    run_tricrit_fork_experiment,
    run_vdd_lp_experiment,
    run_vdd_rounding_experiment,
)
from .spec import ScenarioSpec

__all__ = ["register", "get_scenario", "iter_scenarios", "scenario_names"]

_REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a scenario to the registry (name and experiment id must be new)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by registry name or experiment id (``e7`` / ``E7``)."""
    key = name.strip().lower()
    if key in _REGISTRY:
        return _REGISTRY[key]
    for spec in _REGISTRY.values():
        if spec.experiment.lower() == key:
            return spec
    raise KeyError(f"unknown scenario {name!r}; known: {', '.join(scenario_names())}")


def iter_scenarios() -> Iterator[ScenarioSpec]:
    """All registered scenarios in experiment order (registration order)."""
    return iter(_REGISTRY.values())


def scenario_names() -> list[str]:
    """Registered scenario names, in registration (E1..E13) order."""
    return list(_REGISTRY)


def _env_int(name: str, default: int) -> int:
    """Smoke trial counts honour the CI env overrides (REPRO_E11_TRIALS etc.)."""
    return int(os.environ.get(name, default))


# ----------------------------------------------------------------------
# E1-E3: closed forms vs the convex program
# ----------------------------------------------------------------------
register(ScenarioSpec(
    name="e1-fork-closed-form",
    experiment="E1",
    title="Fork theorem: closed-form energy vs numerical convex optimum",
    runner=run_fork_closed_form_experiment,
    defaults=dict(sizes=(2, 4, 8, 16, 32), slacks=(1.2, 2.0, 4.0), seed=7,
                  speed_range=(0.001, 50.0)),
    smoke=dict(sizes=(2, 4), slacks=(1.5,)),
    dag_family="fork", platform="multi", speed_model="continuous",
    solver="closed-form vs convex",
    columns=("children", "slack", "formula_energy", "closed_form_energy",
             "convex_energy", "relative_gap", "route"),
))

register(ScenarioSpec(
    name="e2-series-parallel",
    experiment="E2",
    title="Series-parallel equivalent-weight recursion vs convex solver",
    runner=run_series_parallel_experiment,
    defaults=dict(sizes=(4, 8, 12, 16), slacks=(1.5, 3.0), seed=11,
                  speed_range=(0.001, 60.0)),
    smoke=dict(sizes=(4,), slacks=(1.5,)),
    dag_family="series-parallel", platform="multi", speed_model="continuous",
    solver="closed-form vs convex",
))

register(ScenarioSpec(
    name="e3-convex-dag",
    experiment="E3",
    title="General DAGs: global convex optimum vs baselines and lower bound",
    runner=run_convex_dag_experiment,
    defaults=dict(num_processors=4, shapes=((3, 3), (4, 4), (5, 4)), slack=1.8,
                  seed=13),
    smoke=dict(shapes=((2, 2),)),
    dag_family="layered", platform="multi", speed_model="continuous",
    solver="convex",
))

# ----------------------------------------------------------------------
# E4-E6: the discrete speed models
# ----------------------------------------------------------------------
register(ScenarioSpec(
    name="e4-vdd-lp",
    experiment="E4",
    title="VDD-HOPPING LP vs continuous bound vs single-mode optimum",
    runner=run_vdd_lp_experiment,
    defaults=dict(modes=(0.2, 0.4, 0.6, 0.8, 1.0), chain_sizes=(5, 10, 20),
                  slack=1.7, seed=17, compare_backends=True, include_dag=True),
    smoke=dict(chain_sizes=(4,), include_dag=False, compare_backends=False),
    dag_family="chain", platform="single", speed_model="vdd",
    solver="lp:scipy+simplex",
))

register(ScenarioSpec(
    name="e5-np-hardness",
    experiment="E5",
    title="DISCRETE NP-completeness: 2-PARTITION reduction and scaling probes",
    runner=run_np_hardness_experiment,
    defaults=dict(partition_instances=((3, 1, 1, 2, 2, 1), (5, 5, 4, 3, 2, 1),
                                       (7, 3, 2, 2, 1, 1), (8, 6, 5, 4),
                                       (9, 7, 5, 3, 1), (2, 2, 2, 2)),
                  scaling_sizes=(4, 6, 8, 10, 12), lp_sizes=(4, 8, 16, 32, 64),
                  scaling_modes=(0.5, 1.0), seed=23),
    smoke=dict(partition_instances=((3, 1, 2, 2), (2, 2, 1)),
               scaling_sizes=(4, 6), lp_sizes=(4, 8)),
    dag_family="chain", platform="single", speed_model="discrete",
    solver="bruteforce vs lp",
    deterministic=False,        # the scaling probes record wall-clock seconds
))

register(ScenarioSpec(
    name="e6-incremental-approx",
    experiment="E6",
    title="INCREMENTAL approximation ratio vs the guaranteed factor",
    runner=run_incremental_approx_experiment,
    defaults=dict(deltas=(0.05, 0.1, 0.2, 0.3), Ks=(None, 2, 5), chain_size=10,
                  slack=1.6, seed=29, speed_range=(0.3, 1.0), include_dag=True),
    smoke=dict(deltas=(0.2,), Ks=(None, 2), chain_size=5, include_dag=False),
    dag_family="chain", platform="multi", speed_model="incremental",
    solver="approx vs continuous",
))

# ----------------------------------------------------------------------
# E7-E9: the tri-criteria problem
# ----------------------------------------------------------------------
register(ScenarioSpec(
    name="e7-tricrit-chain",
    experiment="E7",
    title="TRI-CRIT chains: greedy strategy vs exhaustive optimum",
    runner=run_tricrit_chain_experiment,
    defaults=dict(sizes=(4, 6, 8, 10), slacks=(2.0, 3.0), frel=None, seed=31),
    smoke=dict(sizes=(4,), slacks=(2.0,)),
    dag_family="chain", platform="single", speed_model="continuous",
    fault_model="analytic", solver="greedy vs exhaustive",
))

register(ScenarioSpec(
    name="e8-tricrit-fork",
    experiment="E8",
    title="TRI-CRIT forks: polynomial breakpoint scan vs brute force",
    runner=run_tricrit_fork_experiment,
    defaults=dict(sizes=(2, 3, 4, 6), slacks=(2.0, 3.0), frel=None, seed=37),
    smoke=dict(sizes=(2,), slacks=(2.0,)),
    dag_family="fork", platform="multi", speed_model="continuous",
    fault_model="analytic", solver="poly vs bruteforce",
))

register(ScenarioSpec(
    name="e9-heuristics",
    experiment="E9",
    title="TRI-CRIT heuristic families and their best-of across DAG classes",
    runner=run_heuristic_comparison_experiment,
    defaults=dict(specs=None, frel=None, seed=41, include_reference=True),
    smoke=dict(include_reference=False),
    dag_family="mixed", platform="multi", speed_model="continuous",
    fault_model="analytic", solver="heuristics",
))

# ----------------------------------------------------------------------
# E10-E12: adaptation, simulation, mapping ablation
# ----------------------------------------------------------------------
register(ScenarioSpec(
    name="e10-vdd-rounding",
    experiment="E10",
    title="Rounding the continuous heuristics to VDD-HOPPING: energy loss",
    runner=run_vdd_rounding_experiment,
    defaults=dict(specs=None, mode_counts=(3, 5, 9), frel=None, seed=43),
    smoke=dict(mode_counts=(3,)),
    dag_family="mixed", platform="multi", speed_model="vdd",
    fault_model="analytic", solver="rounding vs lp",
))

register(ScenarioSpec(
    name="e11-reliability-simulation",
    experiment="E11",
    title="Monte-Carlo reliability vs analytic model, with/without re-execution",
    runner=run_reliability_simulation_experiment,
    defaults=dict(chain_size=8, speed_fractions=(1.0, 0.8, 0.6, 0.4),
                  trials=4000, lambda0=1e-3, sensitivity=4.0, seed=47,
                  engine="batch"),
    smoke=dict(trials=_env_int("REPRO_E11_TRIALS", 400),
               speed_fractions=(1.0, 0.6)),
    dag_family="chain", platform="single", speed_model="continuous",
    fault_model="monte-carlo", solver="simulation:batch",
))

register(ScenarioSpec(
    name="e12-mapping-ablation",
    experiment="E12",
    title="Mapping heuristic ablation: downstream energy and simulated runs",
    runner=run_mapping_ablation_experiment,
    defaults=dict(shapes=((4, 4), (5, 4)), num_processors=4, slack=1.8, seed=53,
                  heuristics=("critical_path", "largest_first", "topological",
                              "min_loaded", "round_robin", "random"),
                  trials=1000, engine="batch"),
    smoke=dict(shapes=((3, 3),), trials=_env_int("REPRO_BENCH_TRIALS", 200),
               heuristics=("critical_path", "min_loaded", "random")),
    dag_family="layered", platform="multi", speed_model="continuous",
    fault_model="monte-carlo", solver="convex + simulation:batch",
))

# ----------------------------------------------------------------------
# E13: cross-solver ablation through the solver registry
# ----------------------------------------------------------------------
register(ScenarioSpec(
    name="e13-solver-ablation",
    experiment="E13",
    title="Solver-registry ablation: every admissible solver per DAG family",
    runner=run_solver_ablation_experiment,
    defaults=dict(families=("chain", "fork", "series-parallel", "dag"),
                  sizes=(5,), slacks=(2.0,), dag_shapes=((3, 2),),
                  num_processors=3, problem="tricrit", speeds="continuous",
                  solver="admissible", frel=None, problem_files=(),
                  engine="batch", seed=59),
    smoke=dict(families=("chain", "fork"), sizes=(3,)),
    dag_family="mixed", platform="multi", speed_model="continuous",
    fault_model="analytic", solver="registry (solver parameter sweepable)",
    columns=("family", "instance", "tasks", "solver", "exactness", "status",
             "energy", "ratio_to_exact"),
    batchable=True,
))
