"""Fault-tolerant distributed campaign execution over the v1 HTTP API.

The paper this repository reproduces is about tolerating task failures by
re-executing work; this module applies the same discipline to the execution
stack itself.  A :func:`run_distributed_campaign` coordinator shards a
sweep's instance grid across N ``python -m repro serve`` workers, speaking
the existing ``POST /v1/campaign`` wire protocol -- the serve endpoints *are*
the worker protocol, no new RPC layer is introduced.

Fault-tolerance model (see DESIGN.md for the full state machine):

* **Leases.**  A task popped from the work queue is leased to one worker for
  at most ``RetryPolicy.request_timeout`` seconds (the per-request HTTP
  timeout).  A worker that dies, hangs or answers garbage forfeits the
  lease and the task returns to the queue.
* **Bounded retries with exponential backoff + jitter.**  Each requeue
  delays the task by ``base_delay * backoff**(attempt-1)``, capped at
  ``max_delay``, with a multiplicative jitter term so N workers retrying a
  flapping peer do not synchronise.  After ``max_attempts`` total attempts
  the instance fails permanently with a structured failure record.
* **Eviction and readmission.**  A worker whose connection is refused is
  evicted immediately; one that times out or drops connections repeatedly
  is evicted after ``evict_after`` consecutive transport failures.  Evicted
  workers are probed via ``GET /healthz`` every ``probe_interval`` seconds
  and readmitted as soon as they answer -- a restarted worker rejoins the
  sweep without coordinator intervention.
* **Graceful degradation.**  If every worker is lost while work remains,
  the coordinator drains the queue in-process (the same
  :func:`~repro.campaign.runner._execute` path the local runner uses), so a
  sweep never deadlocks on a dead fleet.
* **At-least-once + idempotence = exactly-once records.**  Execution is
  at-least-once (a timed-out request may still complete on the worker),
  but every completion lands in the content-addressed result cache under
  the same ``instance_key`` hash, and the coordinator ignores duplicate
  completions, so the *record* for each instance is written exactly once
  per content.  Completed instances persist in ``.repro-cache/`` as they
  finish; a re-launched coordinator peels them off as cache hits and only
  schedules the remainder -- runs are resumable after a coordinator kill.
"""

from __future__ import annotations

import heapq
import http.client
import itertools
import json
import os
import random
import re
import select
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Sequence

from .cache import ResultCache, canonicalize, instance_key, make_record
from .registry import get_scenario
from .runner import (
    CampaignResult,
    InstanceResult,
    _execute,
    failure_from_exception,
    failure_record,
)
from .spec import ScenarioInstance

__all__ = [
    "RetryPolicy",
    "WorkerError",
    "WorkerClient",
    "DistributedCampaignResult",
    "run_distributed_campaign",
    "parse_workers",
    "SpawnedWorker",
    "spawn_local_workers",
    "stop_workers",
]


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the lease/retry/requeue state machine."""

    #: Total execution attempts per instance before it fails permanently.
    max_attempts: int = 5
    #: First-retry delay in seconds; grows by ``backoff`` per attempt.
    base_delay: float = 0.1
    #: Ceiling on any single backoff delay.
    max_delay: float = 5.0
    #: Exponential growth factor between consecutive retries.
    backoff: float = 2.0
    #: Multiplicative jitter: the delay is scaled by ``1 + U(0, jitter)``.
    jitter: float = 0.5
    #: Lease duration: per-request HTTP timeout for ``POST /v1/campaign``.
    request_timeout: float = 120.0
    #: HTTP timeout for ``GET /healthz`` probes.
    probe_timeout: float = 2.0
    #: Seconds between health probes of an evicted worker.
    probe_interval: float = 0.25
    #: Consecutive transport failures before a worker is evicted
    #: (connection-refused evicts immediately regardless).
    evict_after: int = 2

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay before retry number ``attempt`` (1-based)."""
        raw = min(self.max_delay,
                  self.base_delay * self.backoff ** max(0, attempt - 1))
        return raw * (1.0 + self.jitter * rng.random())


# ----------------------------------------------------------------------
# worker client
# ----------------------------------------------------------------------
class WorkerError(Exception):
    """One failed worker interaction, classified for the retry policy.

    ``kind`` is one of ``connect`` (nothing listening -- evict immediately),
    ``timeout`` (lease expired), ``transport`` (connection died or the reply
    was not HTTP), ``http`` (a 5xx reply), ``protocol`` (a 200 reply that
    does not parse as the expected payload) or ``app`` (a 4xx application
    error -- deterministic, not retryable).
    """

    def __init__(self, kind: str, message: str, *, retryable: bool = True,
                 status: int | None = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.retryable = retryable
        self.status = status


class WorkerClient:
    """HTTP client for one ``repro serve`` worker, with health state."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        self.healthy = True
        self.consecutive_failures = 0
        # Counters (written by the owning worker thread, read at the end).
        self.requests = 0
        self.successes = 0
        self.failures = 0
        self.evictions = 0
        self.readmissions = 0

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"

    def __repr__(self) -> str:
        state = "healthy" if self.healthy else "evicted"
        return f"WorkerClient({self.name}, {state})"

    # -- raw transport --------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None,
                 timeout: float) -> tuple[int, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            # repro: allow[REP002] -- RPC request body; cache keys are
            # derived on the receiving side via canonical_blob
            data = None if body is None else json.dumps(body).encode("utf-8")
            headers = {"Content-Type": "application/json"} if data else {}
            conn.request(method, path, body=data, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    # -- protocol -------------------------------------------------------
    def run_instance(self, instance: ScenarioInstance, *, timeout: float,
                     cache_dir: str | None = None, use_cache: bool = True,
                     refresh: bool = False) -> dict:
        """``POST /v1/campaign`` for one instance; the parsed 200 payload.

        Raises :class:`WorkerError` for every failure mode, classified so
        the coordinator can decide between retry, eviction and permanent
        failure.
        """
        body = {
            "scenario": instance.scenario,
            "params": canonicalize(dict(instance.params)),
            "use_cache": use_cache,
            "refresh": refresh,
        }
        if cache_dir is not None:
            body["cache_dir"] = cache_dir
        self.requests += 1
        try:
            status, raw = self._request("POST", "/v1/campaign", body, timeout)
        except ConnectionRefusedError as exc:
            raise WorkerError("connect", f"{self.name}: {exc}") from exc
        except TimeoutError as exc:     # socket.timeout is an alias
            raise WorkerError(
                "timeout", f"{self.name}: no reply within {timeout:.0f}s "
                           "(lease expired)") from exc
        except (OSError, http.client.HTTPException) as exc:
            raise WorkerError(
                "transport", f"{self.name}: {type(exc).__name__}: {exc}") from exc
        if status >= 500:
            snippet = raw[:200].decode("utf-8", "replace")
            raise WorkerError("http", f"{self.name}: HTTP {status}: {snippet}",
                              status=status)
        if status != 200:
            try:
                error = json.loads(raw.decode("utf-8"))["error"]
                detail = f"{error['code']}: {error.get('message', '')}"
            except (ValueError, KeyError, TypeError):
                detail = raw[:200].decode("utf-8", "replace")
            raise WorkerError("app", f"{self.name}: HTTP {status}: {detail}",
                              retryable=False, status=status)
        try:
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict) or "result" not in payload:
                raise ValueError("missing result field")
        except (ValueError, UnicodeDecodeError) as exc:
            raise WorkerError(
                "protocol",
                f"{self.name}: 200 reply is not a campaign payload: {exc}") from exc
        return payload

    def probe(self, timeout: float) -> bool:
        """True when ``GET /healthz`` answers ok within ``timeout``."""
        try:
            status, raw = self._request("GET", "/healthz", None, timeout)
            return status == 200 and \
                json.loads(raw.decode("utf-8")).get("status") == "ok"
        except (OSError, ValueError, http.client.HTTPException):
            return False


def parse_workers(spec: str) -> list[str]:
    """Split a ``host:port,host:port`` CLI value into address strings."""
    addresses = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ValueError(f"worker address {part!r} is not host:port")
        addresses.append(f"{host}:{int(port)}")
    if not addresses:
        raise ValueError(f"no worker addresses in {spec!r}")
    return addresses


def _as_clients(workers: Sequence[str | WorkerClient]) -> list[WorkerClient]:
    clients = []
    for worker in workers:
        if isinstance(worker, WorkerClient):
            clients.append(worker)
        else:
            host, _, port = str(worker).rpartition(":")
            if not host or not port.isdigit():
                raise ValueError(f"worker address {worker!r} is not host:port")
            clients.append(WorkerClient(host, int(port)))
    return clients


# ----------------------------------------------------------------------
# work queue with delayed requeue (backoff)
# ----------------------------------------------------------------------
@dataclass(order=True)
class _Task:
    not_before: float
    seq: int
    index: int = field(compare=False)
    instance: ScenarioInstance = field(compare=False)
    key: str = field(compare=False)
    attempts: int = field(compare=False, default=0)
    last_error: str = field(compare=False, default="")


class _WorkQueue:
    """Thread-safe min-heap of tasks ordered by their earliest start time."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._heap: list[_Task] = []
        self._closed = False

    def put(self, task: _Task, *, delay: float = 0.0) -> None:
        with self._cond:
            task.not_before = time.monotonic() + delay
            heapq.heappush(self._heap, task)
            self._cond.notify_all()

    def get(self) -> _Task | None:
        """Block until a task is ready (its backoff delay elapsed) or the
        queue is closed; None means shut down."""
        with self._cond:
            while True:
                if self._closed:
                    return None
                if self._heap:
                    wait = self._heap[0].not_before - time.monotonic()
                    if wait <= 0:
                        return heapq.heappop(self._heap)
                    self._cond.wait(wait)
                else:
                    self._cond.wait()

    def pop_nowait(self) -> _Task | None:
        """Immediately take any queued task, ignoring backoff delays (the
        in-process degradation path has no other executor to wait for)."""
        with self._cond:
            if self._heap:
                return heapq.heappop(self._heap)
            return None

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


# ----------------------------------------------------------------------
# aggregate result
# ----------------------------------------------------------------------
@dataclass
class DistributedCampaignResult(CampaignResult):
    """A :class:`CampaignResult` plus the coordinator's fault-tolerance
    telemetry."""

    mode: str = "distributed"       # "distributed" | "in-process"
    #: True when every worker was lost and the remainder ran in-process.
    degraded: bool = False
    retries: int = 0                # requeues (attempts beyond the first)
    evictions: int = 0
    readmissions: int = 0
    duplicate_completions: int = 0
    worker_stats: list[dict] = field(default_factory=list)

    def summary(self) -> str:
        base = super().summary()
        workers = len(self.worker_stats)
        tail = (f" [distributed: {workers} workers, {self.retries} retries, "
                f"{self.evictions} evictions, {self.readmissions} readmissions"
                f"{', DEGRADED to in-process' if self.degraded else ''}]")
        return base + tail


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
class _Coordinator:
    def __init__(self, *, workers: list[WorkerClient], cache: ResultCache,
                 policy: RetryPolicy, use_cache: bool, refresh: bool,
                 share_cache: bool, in_process_fallback: bool,
                 max_failures: int | None, total: int,
                 emit: Callable[[str], None]) -> None:
        self.workers = workers
        self.cache = cache
        self.policy = policy
        self.use_cache = use_cache
        self.refresh = refresh
        self.in_process_fallback = in_process_fallback
        self.max_failures = max_failures
        self.total = total
        self.emit = emit
        self.worker_cache_dir = (str(Path(cache.root).resolve())
                                 if share_cache and use_cache else None)

        self.queue = _WorkQueue()
        self.results: list[InstanceResult | None] = [None] * total
        self.shutdown = threading.Event()
        self._cond = threading.Condition()
        self._done: set[int] = set()
        self._remaining = 0
        self._failures = 0
        # repro: allow[REP003] -- fixed-seed private stream for retry
        # backoff jitter; shapes timing only, never a recorded result
        self._rng = random.Random(0xC0FFEE)
        # Telemetry
        self.retries = 0
        self.duplicate_completions = 0
        self.degraded = False
        self.aborted = False

    # -- bookkeeping ----------------------------------------------------
    def add_pending(self, tasks: Sequence[_Task]) -> None:
        self._remaining = len(tasks)
        for task in tasks:
            self.queue.put(task)

    def is_done(self, index: int) -> bool:
        with self._cond:
            return index in self._done

    def _progress(self, task: _Task, text: str) -> None:
        self.emit(f"[{task.index + 1}/{self.total}] "
                  f"{task.instance.describe()}: {text}")

    def complete_success(self, task: _Task, record: dict,
                         elapsed: float, worker: WorkerClient | None) -> bool:
        """Record one finished instance; False for a duplicate completion.

        Duplicates are expected under at-least-once execution (a requeued
        task can finish twice); the content-addressed cache key makes the
        second write a no-op rewrite of identical content, and the
        coordinator keeps only the first result.
        """
        with self._cond:
            if task.index in self._done:
                self.duplicate_completions += 1
                return False
            self._done.add(task.index)
            self._remaining -= 1
            self.results[task.index] = InstanceResult(
                instance=task.instance, key=task.key, record=record,
                cached=False, elapsed_seconds=elapsed,
                attempts=task.attempts,
                worker=worker.name if worker is not None else None)
            self._cond.notify_all()
        if self.use_cache:
            self.cache.put(task.key, record)
        where = worker.name if worker is not None else "in-process"
        attempt = f", attempt {task.attempts}" if task.attempts > 1 else ""
        self._progress(task, f"ran in {elapsed:.2f}s on {where}{attempt}")
        return True

    def complete_failure(self, task: _Task, failure: dict) -> bool:
        error = f"{failure['error_type']}: {failure['message']}"
        with self._cond:
            if task.index in self._done:
                self.duplicate_completions += 1
                return False
            self._done.add(task.index)
            self._remaining -= 1
            self._failures += 1
            self.results[task.index] = InstanceResult(
                instance=task.instance, key=task.key, record=None,
                cached=False, elapsed_seconds=0.0, error=error,
                failure=failure, attempts=task.attempts)
            if self.max_failures is not None \
                    and self._failures > self.max_failures:
                self.aborted = True
            self._cond.notify_all()
        self._progress(task, f"FAILED after {task.attempts} attempt(s): "
                             f"{error}")
        return True

    def mark_cached(self, index: int, instance: ScenarioInstance, key: str,
                    record: dict) -> None:
        self.results[index] = InstanceResult(
            instance=instance, key=key, record=record, cached=True,
            elapsed_seconds=0.0)
        self.emit(f"[{index + 1}/{self.total}] {instance.describe()}: cached")

    # -- retry / eviction policy ---------------------------------------
    def _note_failure(self, task: _Task, worker: WorkerClient,
                      exc: WorkerError) -> None:
        worker.failures += 1
        # Requeue (or permanently fail) *before* any eviction bookkeeping,
        # so the all-workers-lost check never sees a task in limbo.
        if not exc.retryable:
            self.complete_failure(task, failure_record(
                f"WorkerError.{exc.kind}", str(exc), attempts=task.attempts))
        elif task.attempts >= self.policy.max_attempts:
            self.complete_failure(task, failure_record(
                f"WorkerError.{exc.kind}",
                f"retries exhausted ({task.attempts} attempts); last error: "
                f"{exc}", attempts=task.attempts))
        else:
            task.last_error = str(exc)
            delay = self.policy.delay_for(task.attempts, self._rng)
            with self._cond:
                self.retries += 1
            self._progress(task, f"attempt {task.attempts} failed "
                                 f"({exc.kind}); requeued with "
                                 f"{delay * 1e3:.0f}ms backoff")
            self.queue.put(task, delay=delay)
        # Worker health accounting.
        if exc.kind == "connect":
            self._evict(worker, reason="connection refused")
        elif exc.kind in ("timeout", "transport", "protocol", "http"):
            worker.consecutive_failures += 1
            if worker.consecutive_failures >= self.policy.evict_after:
                self._evict(worker,
                            reason=f"{worker.consecutive_failures} "
                                   "consecutive failures")

    def _evict(self, worker: WorkerClient, *, reason: str) -> None:
        if not worker.healthy:
            return
        worker.healthy = False
        worker.evictions += 1
        self.emit(f"worker {worker.name} evicted ({reason}); probing /healthz "
                  f"every {self.policy.probe_interval:.2f}s")
        with self._cond:
            self._cond.notify_all()   # wake the monitor: maybe all are gone

    def _readmit(self, worker: WorkerClient) -> None:
        worker.healthy = True
        worker.consecutive_failures = 0
        worker.readmissions += 1
        self.emit(f"worker {worker.name} healthy again; readmitted")
        with self._cond:
            self._cond.notify_all()

    # -- worker thread ---------------------------------------------------
    def worker_loop(self, worker: WorkerClient) -> None:
        while not self.shutdown.is_set():
            if not worker.healthy:
                if not self._probe_until_healthy(worker):
                    return          # shut down while evicted
                continue
            task = self.queue.get()
            if task is None:
                return              # queue closed: sweep finished/aborted
            if self.is_done(task.index):
                continue            # stale requeue of a completed instance
            task.attempts += 1
            try:
                payload = worker.run_instance(
                    task.instance, timeout=self.policy.request_timeout,
                    cache_dir=self.worker_cache_dir,
                    use_cache=self.use_cache,
                    refresh=self.refresh and task.attempts == 1)
            except WorkerError as exc:
                self._note_failure(task, worker, exc)
                continue
            worker.consecutive_failures = 0
            try:
                record, elapsed = self._record_from_payload(task, payload)
            except WorkerError as exc:
                self._note_failure(task, worker, exc)
                continue
            worker.successes += 1
            self.complete_success(task, record, elapsed, worker)

    def _probe_until_healthy(self, worker: WorkerClient) -> bool:
        while not self.shutdown.wait(self.policy.probe_interval):
            if worker.probe(self.policy.probe_timeout):
                self._readmit(worker)
                return True
        return False

    def _record_from_payload(self, task: _Task,
                             payload: dict) -> tuple[dict, float]:
        """Rebuild the canonical cache record from a worker's 200 payload.

        The worker computed the same content-addressed key from the same
        code; a mismatch means version skew between coordinator and worker,
        which no retry can fix.
        """
        remote_key = payload.get("key")
        if remote_key != task.key:
            raise WorkerError(
                "protocol",
                f"worker returned key {str(remote_key)[:12]!r} for instance "
                f"keyed {task.key[:12]!r} -- coordinator/worker version skew",
                retryable=False)
        spec = get_scenario(task.instance.scenario)
        elapsed = float(payload.get("elapsed_seconds", 0.0))
        record = make_record(key=task.key, scenario=task.instance.scenario,
                             params=task.instance.params,
                             result=payload["result"],
                             elapsed_seconds=elapsed,
                             cache_version=spec.cache_version)
        return record, elapsed

    # -- monitor / degradation ------------------------------------------
    def run(self) -> None:
        """Drive the sweep to completion (the caller already queued tasks)."""
        threads = [threading.Thread(target=self.worker_loop, args=(w,),
                                    name=f"repro-worker-{w.name}", daemon=True)
                   for w in self.workers]
        for thread in threads:
            thread.start()
        try:
            while True:
                with self._cond:
                    if self._remaining == 0 or self.aborted:
                        break
                    all_lost = all(not w.healthy for w in self.workers)
                    if not all_lost:
                        self._cond.wait(0.1)
                        continue
                # Every worker is evicted with work left: degrade to
                # in-process execution (workers can still be readmitted
                # concurrently and help drain the queue), or -- with the
                # fallback disabled -- fail the remainder instead of
                # spinning forever on an empty fleet.
                if self.in_process_fallback:
                    self.degraded = True
                    self.emit("all workers lost; degrading to in-process "
                              "execution")
                    self.drain_in_process()
                else:
                    self.emit("all workers lost; failing remaining instances "
                              "(in-process fallback disabled)")
                    self.fail_pending()
        finally:
            self.shutdown.set()
            self.queue.close()
            for thread in threads:
                thread.join(timeout=5.0)

    def drain_in_process(self) -> None:
        """Execute queued tasks locally until the sweep completes/aborts."""
        while True:
            with self._cond:
                if self._remaining == 0 or self.aborted:
                    return
            task = self.queue.pop_nowait()
            if task is None:
                # Remaining tasks are leased to a (readmitted) worker.
                with self._cond:
                    if self._remaining and not self.aborted:
                        self._cond.wait(0.1)
                continue
            if self.is_done(task.index):
                continue
            task.attempts += 1
            try:
                result, elapsed = _execute(task.instance.scenario,
                                           dict(task.instance.params))
                spec = get_scenario(task.instance.scenario)
                record = make_record(key=task.key,
                                     scenario=task.instance.scenario,
                                     params=task.instance.params,
                                     result=result, elapsed_seconds=elapsed,
                                     cache_version=spec.cache_version)
            except Exception as exc:  # noqa: BLE001 - per-instance failure
                self.complete_failure(
                    task, failure_from_exception(exc, attempts=task.attempts))
            else:
                self.complete_success(task, record, elapsed, None)

    def fail_pending(self) -> None:
        """Permanently fail queued tasks (all workers lost, no fallback)."""
        while True:
            with self._cond:
                if self._remaining == 0 or self.aborted:
                    return
            task = self.queue.pop_nowait()
            if task is None:
                # A readmitted worker may still hold (and finish) a lease.
                with self._cond:
                    if self._remaining and not self.aborted:
                        self._cond.wait(0.1)
                continue
            if self.is_done(task.index):
                continue
            self.complete_failure(task, failure_record(
                "AllWorkersLost",
                f"every worker was evicted with work pending; last error: "
                f"{task.last_error or 'n/a'}", attempts=task.attempts))


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def run_distributed_campaign(
        instances: Sequence[ScenarioInstance], *,
        workers: Sequence[str | WorkerClient],
        name: str = "campaign",
        cache: ResultCache | None = None,
        use_cache: bool = True,
        refresh: bool = False,
        policy: RetryPolicy | None = None,
        max_failures: int | None = None,
        share_cache: bool = True,
        in_process_fallback: bool = True,
        progress: Callable[[str], None] | None = None,
) -> DistributedCampaignResult:
    """Execute ``instances`` across HTTP workers with fault tolerance.

    ``workers`` are ``host:port`` strings (or prebuilt
    :class:`WorkerClient` objects); an empty list runs everything
    in-process, which is also the degradation path when every worker is
    lost mid-sweep.  ``share_cache`` forwards the coordinator's cache
    directory in each request so localhost workers write the very records
    the coordinator reads (remote fleets should pass ``False``).  All other
    parameters mirror :func:`repro.campaign.runner.run_campaign`; the
    result additionally carries retry/eviction/degradation telemetry.
    """
    policy = policy if policy is not None else RetryPolicy()
    cache = cache if cache is not None else ResultCache()
    emit = progress or (lambda line: None)
    clients = _as_clients(workers)
    started = time.perf_counter()
    total = len(instances)

    coordinator = _Coordinator(
        workers=clients, cache=cache, policy=policy, use_cache=use_cache,
        refresh=refresh, share_cache=share_cache,
        in_process_fallback=in_process_fallback, max_failures=max_failures,
        total=total, emit=emit)

    # Peel cache hits first (this is what makes re-launched coordinators
    # resume instead of re-solving), then queue the misses.
    seq = itertools.count()
    tasks: list[_Task] = []
    for index, instance in enumerate(instances):
        spec = get_scenario(instance.scenario)
        try:
            key = instance_key(instance.scenario, instance.params,
                               cache_version=spec.cache_version)
        except TypeError as exc:
            coordinator.results[index] = InstanceResult(
                instance=instance, key="", record=None, cached=False,
                elapsed_seconds=0.0, error=f"TypeError: {exc}",
                failure=failure_from_exception(exc))
            emit(f"[{index + 1}/{total}] {instance.describe()}: "
                 f"ERROR TypeError: {exc}")
            continue
        record = cache.get(key) if (use_cache and not refresh) else None
        if record is not None:
            coordinator.mark_cached(index, instance, key, record)
        else:
            tasks.append(_Task(not_before=0.0, seq=next(seq), index=index,
                               instance=instance, key=key))

    if tasks:
        coordinator.add_pending(tasks)
        if clients:
            coordinator.run()
        else:
            coordinator.drain_in_process()

    final = [r for r in coordinator.results if r is not None]
    return DistributedCampaignResult(
        name=name, results=final, jobs=max(1, len(clients)),
        wall_seconds=time.perf_counter() - started,
        aborted=coordinator.aborted, skipped=total - len(final),
        mode="distributed" if clients else "in-process",
        degraded=coordinator.degraded,
        retries=coordinator.retries,
        evictions=sum(w.evictions for w in clients),
        readmissions=sum(w.readmissions for w in clients),
        duplicate_completions=coordinator.duplicate_completions,
        worker_stats=[{
            "worker": w.name, "healthy": w.healthy, "requests": w.requests,
            "successes": w.successes, "failures": w.failures,
            "evictions": w.evictions, "readmissions": w.readmissions,
        } for w in clients])


# ----------------------------------------------------------------------
# local worker processes (--spawn, tests, benchmarks)
# ----------------------------------------------------------------------
_BANNER = re.compile(r"listening on http://([0-9.]+):(\d+)")


@dataclass
class SpawnedWorker:
    """One locally forked ``python -m repro serve`` process."""

    process: subprocess.Popen
    host: str
    port: int

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def kill(self) -> None:
        """SIGKILL -- the chaos tests' worker-loss injection."""
        try:
            self.process.send_signal(signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass

    def stop(self, timeout: float = 5.0) -> None:
        try:
            self.process.terminate()
            self.process.wait(timeout=timeout)
        except (ProcessLookupError, OSError):
            pass
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=timeout)


def _child_env() -> dict[str, str]:
    """Environment for worker subprocesses with ``repro`` importable."""
    env = os.environ.copy()
    src_root = str(Path(__file__).resolve().parents[2])
    parts = [src_root] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                          if p and p != src_root]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def spawn_local_workers(count: int, *, startup_timeout: float = 30.0,
                        store_dir: str | os.PathLike | None = None,
                        extra_args: Sequence[str] = ()) -> list[SpawnedWorker]:
    """Fork ``count`` local serve workers on ephemeral ports.

    Each worker's bound port is parsed from its startup banner; the call
    returns only once every worker answered ``/healthz``.  On any startup
    failure the already-spawned workers are stopped before the error
    propagates.

    ``store_dir`` points every worker at one shared persistent result
    store, so a solve computed by any worker warms the whole pool (and the
    coordinator's own cache root, when they are the same directory).  The
    default is ``--no-store``: short-lived test/benchmark workers must not
    grow a ``.repro-cache/`` in whatever directory they inherit.
    """
    if store_dir is not None:
        store_args: tuple[str, ...] = ("--store-dir", str(store_dir))
    else:
        store_args = ("--no-store",)
    workers: list[SpawnedWorker] = []
    try:
        for _ in range(count):
            process = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--port", "0",
                 *store_args, *extra_args],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=_child_env())
            port = _read_banner_port(process, startup_timeout)
            workers.append(SpawnedWorker(process, "127.0.0.1", port))
        deadline = time.monotonic() + startup_timeout
        for worker in workers:
            client = WorkerClient(worker.host, worker.port)
            while not client.probe(1.0):
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"worker {worker.address} never became healthy")
                time.sleep(0.05)
    except Exception:
        stop_workers(workers)
        raise
    return workers


def _read_banner_port(process: subprocess.Popen, timeout: float) -> int:
    deadline = time.monotonic() + timeout
    captured = []
    while time.monotonic() < deadline:
        if process.poll() is not None:
            break
        ready, _, _ = select.select([process.stdout], [], [], 0.25)
        if not ready:
            continue
        line = process.stdout.readline()
        if not line:
            break
        captured.append(line)
        match = _BANNER.search(line)
        if match:
            return int(match.group(2))
    process.kill()
    raise RuntimeError("serve worker never printed its listening banner; "
                       "output so far:\n" + "".join(captured))


def stop_workers(workers: Sequence[SpawnedWorker]) -> None:
    """Terminate every spawned worker (idempotent, kill-safe)."""
    for worker in workers:
        worker.stop()
