"""Typed scenario specifications for the campaign subsystem.

A :class:`ScenarioSpec` names one experiment driver (an E1-E12 ``run_*``
function) together with its default parameters, reduced smoke-size
parameters, and discoverable metadata (DAG family x platform x speed model x
fault model x solver knobs).  A :class:`ScenarioInstance` is one concrete,
runnable parameterisation of a spec -- the unit the sweep expander emits and
the parallel runner executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping, Sequence
from typing import Any

__all__ = ["ScenarioSpec", "ScenarioInstance"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, parameterised experiment scenario.

    ``runner`` is the underlying ``repro.experiments.run_*`` function; it is
    always called with keyword arguments only.  ``defaults`` reproduce the
    canonical experiment table (what the ``benchmarks/bench_e*.py`` wrappers
    assert on) and ``smoke`` holds the overrides that shrink the scenario to
    a seconds-scale sanity run for ``--smoke`` campaigns and CI.
    """

    name: str                       # registry key, e.g. "e1-fork-closed-form"
    experiment: str                 # experiment id in DESIGN terms, e.g. "E1"
    title: str                      # one-line human description
    runner: Callable[..., Any]      # run_* driver returning rows or a dict
    defaults: Mapping[str, Any] = field(default_factory=dict)
    smoke: Mapping[str, Any] = field(default_factory=dict)
    # Discoverable metadata: what the scenario exercises.
    dag_family: str = "mixed"       # chain | fork | series-parallel | layered | mixed
    platform: str = "single"        # single | multi
    speed_model: str = "continuous"  # continuous | discrete | vdd | incremental
    fault_model: str = "none"       # none | analytic | monte-carlo
    solver: str = ""                # headline solver knob, e.g. "convex", "lp:scipy"
    columns: Sequence[str] | None = None  # preferred report column order
    cache_version: int = 1          # bump to invalidate cached results
    #: True when the scenario's runner evaluates its solver grid through the
    #: batched kernel (``repro.solvers.solve_batch``): such instances are so
    #: cheap in-process that the campaign runner executes them inline
    #: instead of paying process-pool dispatch for them.
    batchable: bool = False
    #: True when the result is a pure function of the parameters.  False for
    #: scenarios whose results embed wall-clock measurements (E5's scaling
    #: probes): their cached records still replay identically, but two
    #: executions of the same config produce different timing fields.
    deterministic: bool = True

    def params(self, overrides: Mapping[str, Any] | None = None, *,
               smoke: bool = False) -> dict[str, Any]:
        """Effective keyword arguments: defaults, then smoke, then overrides."""
        merged = dict(self.defaults)
        if smoke:
            merged.update(self.smoke)
        if overrides:
            unknown = set(overrides) - set(merged)
            if unknown:
                raise KeyError(
                    f"unknown parameter(s) {sorted(unknown)} for scenario "
                    f"{self.name!r}; known: {sorted(merged)}")
            merged.update(overrides)
        return merged

    def run(self, overrides: Mapping[str, Any] | None = None, *,
            smoke: bool = False, **kwargs: Any) -> Any:
        """Run the scenario and return the raw experiment result.

        Overrides may be passed as a mapping or as keyword arguments (the
        form the benchmark wrappers use); both are validated against the
        scenario's known parameters.
        """
        merged = {**(overrides or {}), **kwargs}
        return self.runner(**self.params(merged, smoke=smoke))

    def instance(self, overrides: Mapping[str, Any] | None = None, *,
                 smoke: bool = False, seed: int | None = None,
                 label: str | None = None) -> "ScenarioInstance":
        """Bind parameters into a runnable :class:`ScenarioInstance`."""
        params = self.params(overrides, smoke=smoke)
        if seed is not None:
            if "seed" not in params:
                raise KeyError(f"scenario {self.name!r} takes no seed parameter")
            params["seed"] = seed
        return ScenarioInstance(scenario=self.name, params=params,
                                label=label or self.name)


@dataclass(frozen=True)
class ScenarioInstance:
    """One concrete parameterisation of a registered scenario.

    Instances are deliberately plain (scenario *name* plus a keyword dict):
    they pickle cheaply into worker processes and canonicalise stably into
    cache keys.
    """

    scenario: str
    params: Mapping[str, Any]
    label: str = ""

    def describe(self) -> str:
        return self.label or self.scenario
