"""Declarative parameter sweeps: grid expansion into scenario instances.

A campaign is a list of entries, each naming a registered scenario with
fixed parameter overrides (``params``), a cartesian ``grid`` of swept
parameters, and optionally a number of seed replicates (``seeds``) whose
per-instance child seeds are derived deterministically from a base seed via
:func:`repro.core.rng.spawn_child_seeds`.  Campaign files are JSON::

    {
      "name": "fork-sweep",
      "entries": [
        {"scenario": "e1-fork-closed-form",
         "params": {"slacks": [1.5]},
         "grid": {"sizes": [[2, 4], [8, 16]]},
         "seeds": 3, "base_seed": 7}
      ]
    }

``expand_campaign`` flattens that declaration into an ordered list of
:class:`~repro.campaign.spec.ScenarioInstance`; the expansion order is
deterministic (entry order, then grid order with sorted keys, then seed
index), so instance identity is stable across runs and processes.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from collections.abc import Mapping, Sequence
from typing import Any

from ..core.rng import spawn_child_seeds
from .registry import get_scenario, iter_scenarios
from .spec import ScenarioInstance

__all__ = ["expand_grid", "expand_entry", "expand_campaign",
           "load_campaign_file", "all_scenarios_campaign"]


def expand_grid(grid: Mapping[str, Sequence[Any]] | None) -> list[dict[str, Any]]:
    """Cartesian product of a ``{param: [values...]}`` grid, sorted-key order.

    An empty/absent grid expands to one empty combination (the entry's fixed
    parameters alone).
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    for key in keys:
        if not isinstance(grid[key], (list, tuple)):
            raise TypeError(f"grid values must be lists, got {grid[key]!r} "
                            f"for parameter {key!r}")
    combos = []
    for values in itertools.product(*(grid[k] for k in keys)):
        combos.append(dict(zip(keys, values)))
    return combos


def expand_entry(entry: Mapping[str, Any], *, smoke: bool = False) -> list[ScenarioInstance]:
    """Expand one campaign entry into its scenario instances."""
    known = {"scenario", "params", "grid", "seeds", "base_seed"}
    unknown = set(entry) - known
    if unknown:
        raise KeyError(f"unknown campaign entry key(s) {sorted(unknown)}; "
                       f"known: {sorted(known)}")
    spec = get_scenario(entry["scenario"])
    fixed = dict(entry.get("params") or {})
    combos = expand_grid(entry.get("grid"))

    replicates = int(entry.get("seeds", 0) or 0)
    seeds: list[int | None]
    if replicates:
        base_seed = int(entry.get("base_seed",
                                  spec.defaults.get("seed", 0) or 0))
        seeds = list(spawn_child_seeds(base_seed, replicates))
    else:
        seeds = [None]          # keep the scenario's own seed parameter

    instances = []
    for combo_index, combo in enumerate(combos):
        overrides = {**fixed, **combo}
        for seed_index, seed in enumerate(seeds):
            parts = [spec.name]
            if combo:
                parts.append(",".join(f"{k}={v}" for k, v in sorted(combo.items())))
            if seed is not None:
                parts.append(f"seed#{seed_index}")
            instances.append(spec.instance(overrides, smoke=smoke, seed=seed,
                                           label=" ".join(parts)))
    return instances


def expand_campaign(campaign: Mapping[str, Any], *, smoke: bool = False) -> list[ScenarioInstance]:
    """Expand a whole campaign declaration into an ordered instance list."""
    entries = campaign.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ValueError("campaign must declare a non-empty 'entries' list")
    instances: list[ScenarioInstance] = []
    for entry in entries:
        instances.extend(expand_entry(entry, smoke=smoke))
    return instances


def load_campaign_file(path: str | Path) -> dict:
    """Load and minimally validate a JSON campaign file."""
    with Path(path).open(encoding="utf-8") as fh:
        campaign = json.load(fh)
    if not isinstance(campaign, Mapping):
        raise ValueError(f"campaign file {path} must contain a JSON object")
    campaign = dict(campaign)
    campaign.setdefault("name", Path(path).stem)
    return campaign


def all_scenarios_campaign() -> dict:
    """The built-in ``all`` campaign: every registered scenario once."""
    return {
        "name": "all",
        "entries": [{"scenario": spec.name} for spec in iter_scenarios()],
    }
