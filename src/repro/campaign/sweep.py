"""Declarative parameter sweeps: grid expansion into scenario instances.

A campaign is a list of entries, each naming a registered scenario with
fixed parameter overrides (``params``), a cartesian ``grid`` of swept
parameters, and optionally a number of seed replicates (``seeds``) whose
per-instance child seeds are derived deterministically from a base seed via
:func:`repro.core.rng.spawn_child_seeds`.  Campaign files are JSON::

    {
      "name": "fork-sweep",
      "entries": [
        {"scenario": "e1-fork-closed-form",
         "params": {"slacks": [1.5]},
         "grid": {"sizes": [[2, 4], [8, 16]]},
         "seeds": 3, "base_seed": 7}
      ]
    }

``expand_campaign`` flattens that declaration into an ordered list of
:class:`~repro.campaign.spec.ScenarioInstance`; the expansion order is
deterministic (entry order, then grid order with sorted keys, then seed
index), so instance identity is stable across runs and processes.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from collections.abc import Mapping, Sequence
from typing import Any

from ..core.rng import spawn_child_seeds
from .registry import get_scenario, iter_scenarios
from .spec import ScenarioInstance

__all__ = ["expand_grid", "expand_entry", "expand_campaign",
           "expand_problem_batch",
           "load_campaign_file", "all_scenarios_campaign"]


def expand_grid(grid: Mapping[str, Sequence[Any]] | None) -> list[dict[str, Any]]:
    """Cartesian product of a ``{param: [values...]}`` grid, sorted-key order.

    An empty/absent grid expands to one empty combination (the entry's fixed
    parameters alone).
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    for key in keys:
        if not isinstance(grid[key], (list, tuple)):
            raise TypeError(f"grid values must be lists, got {grid[key]!r} "
                            f"for parameter {key!r}")
    combos = []
    for values in itertools.product(*(grid[k] for k in keys)):
        combos.append(dict(zip(keys, values)))
    return combos


def expand_entry(entry: Mapping[str, Any], *, smoke: bool = False) -> list[ScenarioInstance]:
    """Expand one campaign entry into its scenario instances."""
    known = {"scenario", "params", "grid", "seeds", "base_seed"}
    unknown = set(entry) - known
    if unknown:
        raise KeyError(f"unknown campaign entry key(s) {sorted(unknown)}; "
                       f"known: {sorted(known)}")
    spec = get_scenario(entry["scenario"])
    fixed = dict(entry.get("params") or {})
    combos = expand_grid(entry.get("grid"))

    replicates = int(entry.get("seeds", 0) or 0)
    seeds: list[int | None]
    if replicates:
        base_seed = int(entry.get("base_seed",
                                  spec.defaults.get("seed", 0) or 0))
        seeds = list(spawn_child_seeds(base_seed, replicates))
    else:
        seeds = [None]          # keep the scenario's own seed parameter

    instances = []
    for combo_index, combo in enumerate(combos):
        overrides = {**fixed, **combo}
        for seed_index, seed in enumerate(seeds):
            parts = [spec.name]
            if combo:
                parts.append(",".join(f"{k}={v}" for k, v in sorted(combo.items())))
            if seed is not None:
                parts.append(f"seed#{seed_index}")
            instances.append(spec.instance(overrides, smoke=smoke, seed=seed,
                                           label=" ".join(parts)))
    return instances


def expand_problem_batch(entry: Mapping[str, Any]):
    """Expand a problem-grid declaration straight into a columnar batch.

    Where :func:`expand_entry` produces *scenario* instances (each of which
    runs a whole experiment), this produces *problem* instances as one
    :class:`~repro.core.columnar.ProblemBatch`: wire-schema payloads are
    synthesised directly from the grid -- no per-instance ``Problem``
    objects -- so a sweep can feed the zero-copy batch kernels or a
    ``/v1/solve-batch`` request without a materialisation pass.  Entry form::

        {"kind": "bicrit",            # or "tricrit" (chains only)
         "structure": "chain",        # or "fork"
         "grid": {"num_tasks": [4, 8], "slack": [1.2, 1.5]},
         "params": {"fmin": 0.1, "fmax": 1.0, "alpha": 3.0},
         "seeds": 3, "base_seed": 7}

    Expansion order is deterministic (grid order with sorted keys, then
    seed index, weights via
    :func:`~repro.core.rng.spawn_child_seeds`-derived child seeds), so the
    row order -- and hence every content key -- is stable across runs.
    """
    from ..core.columnar import ProblemBatch
    from ..dag.generators import random_weights

    known = {"kind", "structure", "grid", "params", "seeds", "base_seed"}
    unknown = set(entry) - known
    if unknown:
        raise KeyError(f"unknown problem-batch entry key(s) {sorted(unknown)}; "
                       f"known: {sorted(known)}")
    kind = str(entry.get("kind", "bicrit"))
    if kind not in ("bicrit", "tricrit"):
        raise ValueError(f"kind must be 'bicrit' or 'tricrit', got {kind!r}")
    structure = str(entry.get("structure", "chain"))
    if structure not in ("chain", "fork"):
        raise ValueError(f"structure must be 'chain' or 'fork', got {structure!r}")
    if kind == "tricrit" and structure != "chain":
        raise ValueError("tricrit problem grids support chains only")

    params = dict(entry.get("params") or {})
    fmin = float(params.get("fmin", 0.1))
    fmax = float(params.get("fmax", 1.0))
    alpha = float(params.get("alpha", 3.0))
    static_power = float(params.get("static_power", 0.0))
    low = float(params.get("weight_low", 1.0))
    high = float(params.get("weight_high", 10.0))
    # Optional weight rounding: full-precision doubles serialise to 17+
    # significant digits, which dominates wire payload size (and JSON
    # float-parse time) for large sweeps.
    decimals = params.get("weight_decimals")

    replicates = int(entry.get("seeds", 1) or 1)
    base_seed = int(entry.get("base_seed", 0))
    seeds = list(spawn_child_seeds(base_seed, replicates))

    reliability = None
    if kind == "tricrit":
        reliability = {"fmin": fmin, "fmax": fmax,
                       "lambda0": float(params.get("lambda0", 1e-4)),
                       "sensitivity": float(params.get("sensitivity", 3.0)),
                       "frel": float(params.get("frel", fmax))}

    payloads: list[dict[str, Any]] = []
    for combo in expand_grid(entry.get("grid")):
        merged = {**params, **combo}
        n = int(merged.get("num_tasks", 4))
        if n < 1 or (structure == "fork" and n < 2):
            raise ValueError(f"num_tasks={n} too small for a {structure}")
        slack = float(merged.get("slack", 1.5))
        for seed in seeds:
            weights = [float(w) for w in random_weights(n, seed,
                                                        low=low, high=high)]
            if decimals is not None:
                weights = [round(w, int(decimals)) for w in weights]
            ids = [f"T{k}" for k in range(n)]
            tasks = [{"id": t, "weight": w} for t, w in zip(ids, weights)]
            if structure == "chain":
                edges = [[ids[k], ids[k + 1]] for k in range(n - 1)]
                mapping = [ids]
                procs = 1
                span = sum(weights)
            else:
                edges = [[ids[0], ids[k]] for k in range(1, n)]
                mapping = [[t] for t in ids]
                procs = n
                span = weights[0] + max(weights[1:])
            deadline = max(slack * span / fmax, 1e-6)
            if decimals is not None:
                deadline = max(round(deadline, int(decimals)), 1e-6)
            payloads.append({
                "format_version": 1, "kind": kind,
                "deadline": deadline,
                "graph": {"format_version": 1, "tasks": tasks, "edges": edges},
                "mapping": mapping,
                "platform": {
                    "num_processors": procs,
                    "speed_model": {"kind": "continuous",
                                    "fmin": fmin, "fmax": fmax},
                    "energy_model": {"exponent": alpha,
                                     "static_power": static_power},
                    "reliability_model": reliability},
                **({"reliability_model": None} if kind == "tricrit" else {})})
    return ProblemBatch.from_wire(payloads)


def expand_campaign(campaign: Mapping[str, Any], *, smoke: bool = False) -> list[ScenarioInstance]:
    """Expand a whole campaign declaration into an ordered instance list."""
    entries = campaign.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ValueError("campaign must declare a non-empty 'entries' list")
    instances: list[ScenarioInstance] = []
    for entry in entries:
        instances.extend(expand_entry(entry, smoke=smoke))
    return instances


def load_campaign_file(path: str | Path) -> dict:
    """Load and minimally validate a JSON campaign file."""
    with Path(path).open(encoding="utf-8") as fh:
        campaign = json.load(fh)
    if not isinstance(campaign, Mapping):
        raise ValueError(f"campaign file {path} must contain a JSON object")
    campaign = dict(campaign)
    campaign.setdefault("name", Path(path).stem)
    return campaign


def all_scenarios_campaign() -> dict:
    """The built-in ``all`` campaign: every registered scenario once."""
    return {
        "name": "all",
        "entries": [{"scenario": spec.name} for spec in iter_scenarios()],
    }
