"""Content-addressed result cache for campaign runs.

Every scenario instance is keyed by a stable SHA-256 hash of its
canonicalised configuration (scenario name + effective keyword parameters)
plus a code-relevant version tag (the library version and the scenario's
``cache_version``).  Records are JSON files under ``.repro-cache/`` (or
``$REPRO_CACHE_DIR``), so re-running a campaign whose code and parameters
did not change is a pure disk read.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from collections.abc import Iterator, Mapping
from typing import Any

import numpy as np

__all__ = ["ResultCache", "canonicalize", "instance_key", "make_record",
           "DEFAULT_CACHE_DIR"]

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump when the record layout itself changes (invalidates every entry).
_SCHEMA_VERSION = 1


def canonicalize(value: Any) -> Any:
    """Reduce a parameter/result value to a canonical JSON-compatible form.

    Tuples and lists collapse to lists, mappings to plain dicts with string
    keys (insertion order preserved -- key hashing sorts independently, and
    stored result rows keep their column order), numpy scalars/arrays to
    their Python equivalents.  Two configurations that compare equal after
    canonicalisation hash to the same cache key regardless of the container
    types used to express them.
    """
    if isinstance(value, (str, bool, int, type(None))):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.generic):
        return canonicalize(value.item())
    if isinstance(value, np.ndarray):
        return [canonicalize(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): canonicalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [canonicalize(v) for v in items]
    raise TypeError(f"cannot canonicalise {type(value).__name__!r} value {value!r} "
                    "for the result cache")


def _version_tag(cache_version: int) -> str:
    from .. import __version__  # deferred: repro/__init__ imports this package

    return f"repro-{__version__}/schema-{_SCHEMA_VERSION}/scenario-{cache_version}"


def instance_key(scenario: str, params: Mapping[str, Any], *,
                 cache_version: int = 1) -> str:
    """Stable content hash of one scenario configuration."""
    payload = {
        "scenario": scenario,
        "params": canonicalize(params),
        "version": _version_tag(cache_version),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """JSON-file result store addressed by :func:`instance_key` hashes."""

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)

    # -- addressing ----------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- read ----------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """Return the cached record for ``key``, or None on a miss.

        Corrupt entries (invalid JSON / undecodable bytes) are quarantined
        -- moved aside to ``<key>.json.corrupt`` -- so they count as a miss
        exactly once and the recomputed record is not shadowed by a broken
        file on every future read.  Other I/O errors are plain misses.
        """
        path = self.path_for(key)
        try:
            with path.open(encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        # ValueError covers JSONDecodeError and the UnicodeDecodeError a
        # torn write can leave behind.
        except ValueError:
            self._quarantine(path)
            return None
        except OSError:
            return None

    def _quarantine(self, path: Path) -> Path | None:
        """Move a corrupt entry aside (best effort); returns its new path.

        The quarantined name does not match the ``*.json`` glob, so the
        entry disappears from ``records()`` / ``len()`` while staying on
        disk for post-mortem inspection.
        """
        target = path.with_suffix(path.suffix + ".corrupt")
        try:
            path.replace(target)
            return target
        except OSError:
            return None

    def records(self) -> Iterator[dict]:
        """All readable records in the cache, in file-name (key) order."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*.json")):
            try:
                with path.open(encoding="utf-8") as fh:
                    yield json.load(fh)
            except ValueError:
                self._quarantine(path)
                continue
            except OSError:
                continue

    # -- write ---------------------------------------------------------
    def put(self, key: str, record: Mapping[str, Any]) -> Path:
        """Write ``record`` under ``key`` (atomically via a temp file)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=1)
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json")) if self.root.is_dir() else 0


def make_record(*, key: str, scenario: str, params: Mapping[str, Any],
                result: Any, elapsed_seconds: float,
                cache_version: int = 1) -> dict:
    """Assemble the JSON record stored for one executed instance."""
    return {
        "key": key,
        "scenario": scenario,
        "params": canonicalize(params),
        "version": _version_tag(cache_version),
        "created_unix": time.time(),
        "elapsed_seconds": elapsed_seconds,
        "result": canonicalize(result),
    }
