"""Content-addressed result cache for campaign runs.

Every scenario instance is keyed by a stable SHA-256 hash of its
canonicalised configuration (scenario name + effective keyword parameters)
plus a code-relevant version tag (the library version and the scenario's
``cache_version``), so re-running a campaign whose code and parameters did
not change is a pure disk read.

Since the store tier landed, this module is a thin adapter: records live in
the shared persistent :class:`repro.store.ResultStore` under the
``campaign`` namespace (sharded ``<root>/campaign/<key[:2]>/<key>.json``
envelopes with content checksums, atomic writes, quarantine of corrupt
entries) -- the *same* on-disk tree the API engine's result cache writes
through to, so campaigns and servers warm one tier, not two.  The public
surface (:class:`ResultCache` with ``get``/``put``/``records``/``path_for``,
:func:`instance_key`, :func:`make_record`, :func:`canonicalize`) is
unchanged.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections.abc import Iterator, Mapping
from pathlib import Path
from typing import Any

from ..store import ResultStore
from ..store.canonical import canonical_blob, canonicalize

__all__ = ["ResultCache", "canonicalize", "instance_key", "make_record",
           "DEFAULT_CACHE_DIR", "NAMESPACE"]

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Store namespace campaign records live under.
NAMESPACE = "campaign"

#: Bump when the record layout itself changes (invalidates every entry).
_SCHEMA_VERSION = 2


def _version_tag(cache_version: int) -> str:
    from .. import __version__  # deferred: repro/__init__ imports this package

    return f"repro-{__version__}/schema-{_SCHEMA_VERSION}/scenario-{cache_version}"


def instance_key(scenario: str, params: Mapping[str, Any], *,
                 cache_version: int = 1) -> str:
    """Stable content hash of one scenario configuration."""
    payload = {
        "scenario": scenario,
        "params": canonicalize(params),
        "version": _version_tag(cache_version),
    }
    return hashlib.sha256(canonical_blob(payload)).hexdigest()


class ResultCache:
    """Campaign-facing view over the shared persistent result store.

    Addresses the ``campaign`` namespace of a :class:`ResultStore` rooted at
    ``root`` (default ``$REPRO_CACHE_DIR`` or ``.repro-cache``).  An
    existing store instance can be injected to share one in-memory index
    with other consumers in the process.
    """

    def __init__(self, root: str | os.PathLike | None = None, *,
                 store: ResultStore | None = None):
        if store is None:
            if root is None:
                root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
            store = ResultStore(root)
        self.store = store
        self.root: Path = store.root

    # -- addressing ----------------------------------------------------
    def path_for(self, key: str) -> Path:
        """On-disk envelope location for ``key`` (sharded under the
        ``campaign`` namespace)."""
        return self.store.path_for(key, NAMESPACE)

    # -- read ----------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """Return the cached record for ``key``, or None on a miss.

        Corrupt entries (invalid JSON / undecodable bytes / checksum
        mismatches) are quarantined -- moved aside to
        ``<key>.json.corrupt`` -- so they count as a miss exactly once and
        the recomputed record is not shadowed by a broken file on every
        future read.  Other I/O errors are plain misses.
        """
        record = self.store.get(key, NAMESPACE)
        return record if isinstance(record, dict) else None

    def records(self) -> Iterator[dict]:
        """All readable records in the cache, in key order."""
        for envelope in self.store.records(NAMESPACE):
            payload = envelope.get("payload")
            if isinstance(payload, dict):
                yield payload

    # -- write ---------------------------------------------------------
    def put(self, key: str, record: Mapping[str, Any]) -> Path:
        """Write ``record`` under ``key`` (atomically via a temp file)."""
        return self.store.put(key, dict(record), NAMESPACE)

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        return self.store.clear(NAMESPACE)

    def __len__(self) -> int:
        return self.store.count(NAMESPACE)


def make_record(*, key: str, scenario: str, params: Mapping[str, Any],
                result: Any, elapsed_seconds: float,
                cache_version: int = 1) -> dict:
    """Assemble the JSON record stored for one executed instance."""
    return {
        "key": key,
        "scenario": scenario,
        "params": canonicalize(params),
        "version": _version_tag(cache_version),
        "created_unix": time.time(),
        "elapsed_seconds": elapsed_seconds,
        "result": canonicalize(result),
    }
