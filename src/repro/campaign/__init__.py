"""Campaign orchestration: scenario registry, sweeps, parallel runs, caching.

The subsystem that names and operates the reproduction's experiments at
scale:

* :mod:`repro.campaign.spec` -- typed scenario specifications;
* :mod:`repro.campaign.registry` -- every experiment E1-E12 as a named,
  parameterised scenario with defaults, smoke sizes and metadata;
* :mod:`repro.campaign.sweep` -- declarative parameter grids expanded into
  runnable instances with deterministic child seeds;
* :mod:`repro.campaign.runner` -- process-parallel execution with a serial
  fallback and per-instance progress;
* :mod:`repro.campaign.distributed` -- fault-tolerant multi-worker execution
  over the v1 HTTP API (retry/backoff, worker eviction/readmission,
  in-process degradation, resumable via the cache);
* :mod:`repro.campaign.cache` -- content-addressed JSON result cache under
  ``.repro-cache/``;
* :mod:`repro.campaign.cli` -- the ``python -m repro`` command line.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, canonicalize, instance_key
from .distributed import (
    DistributedCampaignResult,
    RetryPolicy,
    WorkerClient,
    WorkerError,
    run_distributed_campaign,
    spawn_local_workers,
)
from .registry import get_scenario, iter_scenarios, register, scenario_names
from .runner import (
    CampaignResult,
    InstanceResult,
    failure_record,
    resolve_jobs,
    run_campaign,
)
from .spec import ScenarioInstance, ScenarioSpec
from .sweep import (
    all_scenarios_campaign,
    expand_campaign,
    expand_entry,
    expand_grid,
    load_campaign_file,
)

__all__ = [
    "ScenarioSpec",
    "ScenarioInstance",
    "register",
    "get_scenario",
    "iter_scenarios",
    "scenario_names",
    "expand_grid",
    "expand_entry",
    "expand_campaign",
    "load_campaign_file",
    "all_scenarios_campaign",
    "ResultCache",
    "DEFAULT_CACHE_DIR",
    "canonicalize",
    "instance_key",
    "run_campaign",
    "resolve_jobs",
    "CampaignResult",
    "InstanceResult",
    "failure_record",
    "run_distributed_campaign",
    "spawn_local_workers",
    "DistributedCampaignResult",
    "RetryPolicy",
    "WorkerClient",
    "WorkerError",
]
