"""Parallel campaign executor with cache integration and progress streaming.

``run_campaign`` takes the expanded instance list, resolves every instance
against the content-addressed :class:`~repro.campaign.cache.ResultCache`,
and executes the misses -- serially for ``jobs=1`` (and as a hard fallback
when no process pool can be created, e.g. in restricted sandboxes), or on a
``concurrent.futures.ProcessPoolExecutor`` for ``jobs>1``.  For scenarios
flagged ``deterministic`` (all but E5, whose scaling probes embed wall-clock
measurements) results are pure functions of the instance parameters, so
``--jobs 1`` and ``--jobs N`` produce identical result payloads (the
``result`` field of the cached records; the timing metadata around it
naturally differs between runs).
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Any

from .cache import ResultCache, instance_key, make_record
from .registry import get_scenario
from .spec import ScenarioInstance

__all__ = ["InstanceResult", "CampaignResult", "failure_record",
           "resolve_jobs", "run_campaign"]


def failure_record(error_type: str, message: str, *,
                   traceback: str = "", attempts: int = 1) -> dict:
    """Structured description of one failed instance execution.

    This is the payload stored on :attr:`InstanceResult.failure` (and in
    campaign result summaries): machine-readable error type, human message,
    the traceback when one was captured locally, and how many execution
    attempts were made (always 1 for the in-process runner; the distributed
    coordinator counts its retries here).
    """
    return {"error_type": error_type, "message": message,
            "traceback": traceback, "attempts": attempts}


def failure_from_exception(exc: BaseException, *, attempts: int = 1) -> dict:
    """A :func:`failure_record` for a caught exception, traceback included."""
    tb = "".join(_traceback.format_exception(type(exc), exc, exc.__traceback__))
    return failure_record(type(exc).__name__, str(exc), traceback=tb,
                          attempts=attempts)


@dataclass
class InstanceResult:
    """Outcome of one scenario instance in a campaign run."""

    instance: ScenarioInstance
    key: str
    record: dict | None         # the cache record (None only on error)
    cached: bool                # served from the result cache
    elapsed_seconds: float      # 0.0 for cache hits
    error: str | None = None    # one-line summary ("Type: message")
    #: Structured failure info (:func:`failure_record`) when ``error`` is set.
    failure: dict | None = None
    #: Execution attempts made (retries included; 1 for local execution).
    attempts: int = 1
    #: Which worker produced the result (distributed runs; None locally).
    worker: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CampaignResult:
    """Aggregate outcome of a campaign run."""

    name: str
    results: list[InstanceResult] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0
    #: True when a ``max_failures`` threshold stopped the sweep early.
    aborted: bool = False
    #: Instances never executed because the sweep aborted first.
    skipped: int = 0

    @property
    def hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def misses(self) -> int:
        return sum(1 for r in self.results if not r.cached and r.ok)

    @property
    def errors(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    @property
    def failures(self) -> list[InstanceResult]:
        """The failed instance results (structured records on ``.failure``)."""
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        n = len(self.results)
        tail = ""
        if self.aborted:
            tail = (f" [ABORTED after {self.errors} failures; "
                    f"{self.skipped} instances skipped]")
        return (f"campaign {self.name!r}: {n} instances, "
                f"{self.hits}/{n} cache hits, {self.misses} executed, "
                f"{self.errors} errors, {self.wall_seconds:.2f}s wall "
                f"(jobs={self.jobs}){tail}")


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else 1 (serial)."""
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _execute(scenario_name: str, params: dict) -> tuple[Any, float]:
    """Run one instance, timing the execution itself (not any queue wait).

    Module-level so it pickles into worker processes; the elapsed seconds
    are measured here so serial and parallel runs record the same quantity.
    Execution goes through :func:`repro.api.run_scenario` -- the same
    scenario front door the ``/v1/campaign`` endpoint uses -- so workers
    and the service share one dispatch semantics.
    """
    from ..api import run_scenario

    t0 = time.perf_counter()
    result = run_scenario(scenario_name, params)
    return result, time.perf_counter() - t0


def run_campaign(instances: Sequence[ScenarioInstance], *,
                 name: str = "campaign",
                 jobs: int | None = None,
                 cache: ResultCache | None = None,
                 use_cache: bool = True,
                 refresh: bool = False,
                 engine: str | None = None,
                 max_failures: int | None = None,
                 progress: Callable[[str], None] | None = None) -> CampaignResult:
    """Execute ``instances``, serving repeats from the result cache.

    ``refresh`` forces re-execution but still writes the fresh records back;
    ``use_cache=False`` bypasses the cache entirely (no reads, no writes).
    ``progress`` receives one human-readable line per completed instance.
    ``max_failures`` aborts the sweep as soon as *more than* that many
    instances have failed (0 aborts on the first failure; None, the default,
    never aborts) -- the aggregate result then carries ``aborted=True`` and
    counts the never-executed instances in ``skipped``.

    ``engine`` (``"batch"`` or ``"scalar"``) overrides the solver-evaluation
    engine of every scenario that exposes an ``engine`` parameter (E11/E12's
    Monte-Carlo engines, E13's batched solver grids); other scenarios are
    untouched.  With ``engine="batch"`` the instances of scenarios flagged
    ``batchable`` in the registry execute in-process -- their vectorized
    solver grids are cheaper than process-pool dispatch -- while the
    remaining (heavy) instances still go through the worker pool when
    ``jobs > 1``.  Results are identical either way: for deterministic
    scenarios the result payload is a pure function of the instance
    parameters, independent of jobs count or execution placement.
    """
    jobs = resolve_jobs(jobs)
    if engine is not None:
        if engine not in ("batch", "scalar"):
            raise ValueError(f"unknown engine {engine!r} (batch or scalar)")
        instances = [
            ScenarioInstance(scenario=inst.scenario,
                             params={**inst.params, "engine": engine},
                             label=inst.label)
            if "engine" in inst.params else inst
            for inst in instances
        ]
    cache = cache if cache is not None else ResultCache()
    emit = progress or (lambda line: None)
    started = time.perf_counter()
    total = len(instances)

    results: list[InstanceResult | None] = [None] * total
    pending: list[tuple[int, ScenarioInstance, str]] = []
    failure_count = 0

    for index, instance in enumerate(instances):
        spec = get_scenario(instance.scenario)
        try:
            key = instance_key(instance.scenario, instance.params,
                               cache_version=spec.cache_version)
        except TypeError as exc:
            # Un-canonicalisable params (e.g. object-valued overrides passed
            # through the Python API) fail that one instance, not the run.
            results[index] = InstanceResult(instance=instance, key="",
                                            record=None, cached=False,
                                            elapsed_seconds=0.0,
                                            error=f"TypeError: {exc}",
                                            failure=failure_from_exception(exc))
            failure_count += 1
            emit(f"[{index + 1}/{total}] {instance.describe()}: "
                 f"ERROR TypeError: {exc}")
            continue
        record = cache.get(key) if (use_cache and not refresh) else None
        if record is not None:
            results[index] = InstanceResult(instance=instance, key=key,
                                            record=record, cached=True,
                                            elapsed_seconds=0.0)
            emit(f"[{index + 1}/{total}] {instance.describe()}: cached")
        else:
            pending.append((index, instance, key))

    def finish(index: int, instance: ScenarioInstance, key: str,
               result: Any, elapsed: float, failure: dict | None) -> None:
        nonlocal failure_count
        if failure is None:
            spec = get_scenario(instance.scenario)
            try:
                record = make_record(key=key, scenario=instance.scenario,
                                     params=instance.params, result=result,
                                     elapsed_seconds=elapsed,
                                     cache_version=spec.cache_version)
            except TypeError as exc:    # non-JSON result value
                failure = failure_from_exception(exc)
        if failure is None:
            if use_cache:
                cache.put(key, record)
            results[index] = InstanceResult(instance=instance, key=key,
                                            record=record, cached=False,
                                            elapsed_seconds=elapsed)
            emit(f"[{index + 1}/{total}] {instance.describe()}: "
                 f"ran in {elapsed:.2f}s")
        else:
            error = f"{failure['error_type']}: {failure['message']}"
            results[index] = InstanceResult(instance=instance, key=key,
                                            record=None, cached=False,
                                            elapsed_seconds=elapsed,
                                            error=error, failure=failure,
                                            attempts=failure.get("attempts", 1))
            failure_count += 1
            emit(f"[{index + 1}/{total}] {instance.describe()}: ERROR {error}")

    def should_abort() -> bool:
        return max_failures is not None and failure_count > max_failures

    aborted = False
    if pending and engine == "batch":
        # The batched in-process path: scenarios whose solver grids run
        # through the vectorized kernel finish faster inline than the
        # process pool can even dispatch them; heavy scenarios (Monte-Carlo
        # simulation, wall-clock probes) stay on the pool below.
        inline = [(i, inst, key) for i, inst, key in pending
                  if get_scenario(inst.scenario).batchable]
        if inline:
            aborted = _run_serial(inline, finish, should_abort)
            pending = [(i, inst, key) for i, inst, key in pending
                       if results[i] is None]

    if pending and not aborted:
        if jobs == 1:
            aborted = _run_serial(pending, finish, should_abort)
        else:
            try:
                aborted = _run_parallel(pending, finish, should_abort, jobs)
            except (OSError, PermissionError) as exc:
                # Restricted environments (no fork/semaphores) fall back to
                # the serial path rather than failing the campaign.
                emit(f"process pool unavailable ({exc}); running serially")
                remaining = [(i, inst, key) for i, inst, key in pending
                             if results[i] is None]
                aborted = _run_serial(remaining, finish, should_abort)

    final = [r for r in results if r is not None]
    return CampaignResult(name=name, results=final, jobs=jobs,
                          wall_seconds=time.perf_counter() - started,
                          aborted=aborted, skipped=total - len(final))


def _run_serial(pending, finish, should_abort) -> bool:
    """Execute ``pending`` in order; returns True when aborted early."""
    for index, instance, key in pending:
        if should_abort():
            return True
        try:
            result, elapsed = _execute(instance.scenario, dict(instance.params))
        except Exception as exc:  # noqa: BLE001 - reported per instance
            finish(index, instance, key, None, 0.0,
                   failure_from_exception(exc))
        else:
            finish(index, instance, key, result, elapsed, None)
    # The threshold was never crossed with work left to skip.
    return False


def _run_parallel(pending, finish, should_abort, jobs: int) -> bool:
    """Execute ``pending`` on a process pool; returns True when aborted."""
    aborted = False
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        submitted = {}
        for index, instance, key in pending:
            future = pool.submit(_execute, instance.scenario,
                                 dict(instance.params))
            submitted[future] = (index, instance, key)
        outstanding = set(submitted)
        while outstanding:
            done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            for future in done:
                index, instance, key = submitted[future]
                try:
                    result, elapsed = future.result()
                except CancelledError:
                    continue            # aborted before it started: skipped
                except Exception as exc:  # noqa: BLE001 - reported per instance
                    finish(index, instance, key, None, 0.0,
                           failure_from_exception(exc))
                else:
                    finish(index, instance, key, result, elapsed, None)
            if should_abort() and not aborted:
                aborted = True
                # repro: allow[REP001] -- cancels every member; order immaterial
                for future in outstanding:
                    future.cancel()
    return aborted
