"""The ``python -m repro`` command line interface.

Subcommands:

* ``repro list`` -- the scenario registry as a table (all E1-E13 entries);
* ``repro solvers`` -- the solver registry with capability columns
  (``--markdown`` emits the README table, ``--problem FILE`` reports which
  solvers admit a stored problem instance);
* ``repro run <scenario> [--param k=v ...]`` -- run one scenario (through
  the result cache) and print its experiment table;
* ``repro campaign <file-or-"all"> [--smoke] [--jobs N]`` -- expand a JSON
  campaign declaration (or the built-in every-scenario campaign), execute
  it in parallel, and report the cache hit count;
* ``repro report [scenario]`` -- re-render the cached result records as
  tables without recomputing anything;
* ``repro cache stats|gc|verify`` -- inspect the persistent result store
  (per-namespace entry/byte counts), evict it down to a byte budget, or
  re-verify every record's content checksum (quarantining mismatches);
* ``repro serve`` -- serve the versioned v1 JSON API over HTTP
  (``POST /v1/solve``, ``/v1/solve-batch``, ``/v1/simulate``,
  ``/v1/campaign``; ``GET /v1/solvers``, ``/v1/store``, ``/healthz``,
  ``/metrics``), optionally as a pre-forked ``--workers N`` fleet sharing
  the store -- see :mod:`repro.api.server` and the README's "Serving at
  scale" section.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from collections.abc import Mapping, Sequence
from typing import Any

from ..experiments.reporting import format_value, rows_to_table
from ..solvers import capability_rows, solvers_for
from .cache import ResultCache
from .registry import get_scenario, iter_scenarios
from .runner import run_campaign
from .sweep import all_scenarios_campaign, expand_campaign, load_campaign_file

__all__ = ["main", "build_parser", "parse_param", "parse_bytes",
           "render_result", "solver_table_markdown"]


# ----------------------------------------------------------------------
# parameter parsing and result rendering
# ----------------------------------------------------------------------
def parse_param(text: str) -> tuple[str, Any]:
    """Parse one ``--param key=value`` argument.

    Values are Python literals where possible (``sizes=2,4`` becomes the
    tuple ``(2, 4)``, ``slack=1.5`` a float, ``none``/``true``/``false``
    the obvious singletons); anything unparseable stays a string, which is
    what string-typed knobs like ``engine=batch`` expect.
    """
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"--param expects key=value, got {text!r}")
    lowered = raw.strip().lower()
    if lowered in ("none", "null"):
        return key, None
    if lowered == "true":
        return key, True
    if lowered == "false":
        return key, False
    try:
        return key, ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        return key, raw


def render_result(result: Any, *, title: str | None = None,
                  columns: Sequence[str] | None = None) -> str:
    """Render an experiment result (row list or dict of sections) as text."""
    if isinstance(result, Sequence) and not isinstance(result, (str, bytes)) \
            and all(isinstance(row, Mapping) for row in result):
        return rows_to_table(list(result), title=title, columns=columns)
    if isinstance(result, Mapping):
        lines = [title] if title else []
        for key, value in result.items():
            if isinstance(value, list) and value \
                    and all(isinstance(row, Mapping) for row in value):
                lines.append("")
                lines.append(rows_to_table(value, title=f"[{key}]"))
            else:
                lines.append(f"{key}: {format_value(value)}")
        return "\n".join(lines)
    return f"{title}\n{result}" if title else str(result)


def _print_progress(line: str) -> None:
    print(line, flush=True)


class _UsageError(Exception):
    """A user mistake (bad name, bad file): message only, no traceback."""


def _lookup_scenario(name: str):
    try:
        return get_scenario(name)
    except KeyError as exc:
        raise _UsageError(exc.args[0]) from exc


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for spec in iter_scenarios():
        rows.append({
            "scenario": spec.name,
            "exp": spec.experiment,
            "dag": spec.dag_family,
            "speeds": spec.speed_model,
            "faults": spec.fault_model,
            "solver": spec.solver,
            "title": spec.title,
        })
    if args.names:
        for row in rows:
            print(row["scenario"])
    else:
        print(rows_to_table(rows, title=f"{len(rows)} registered scenarios"))
    return 0


def solver_table_markdown() -> str:
    """The solver capability table as GitHub markdown (README section)."""
    rows = capability_rows()
    headers = list(rows[0])
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(f"`{row[h]}`" if h == "solver" else str(row[h])
                                       for h in headers) + " |")
    return "\n".join(lines)


def cmd_solvers(args: argparse.Namespace) -> int:
    if args.problem:
        from ..core.problem_io import load_problem_json

        try:
            problem = load_problem_json(args.problem)
        except (OSError, ValueError, KeyError) as exc:
            raise _UsageError(f"cannot load problem file {args.problem}: {exc}") from exc
        rows = []
        for solver, ok, reason in solvers_for(problem):
            rows.append({
                "solver": solver.name,
                "exactness": solver.exactness,
                "admissible": ok,
                "reason": reason or "",
            })
        print(rows_to_table(
            rows, title=f"solver admissibility for {args.problem} ({problem!r})"))
        return 0
    rows = capability_rows()
    if args.names:
        for row in rows:
            print(row["solver"])
    elif args.markdown:
        print(solver_table_markdown())
    else:
        print(rows_to_table(rows, title=f"{len(rows)} registered solvers "
                                        "(dispatch preference order)"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    spec = _lookup_scenario(args.scenario)
    overrides = dict(args.params or [])
    try:
        instance = spec.instance(overrides, smoke=args.smoke, seed=args.seed)
    except KeyError as exc:        # unknown --param name
        raise _UsageError(exc.args[0]) from exc
    outcome = run_campaign(
        [instance], name=f"run:{spec.name}",
        jobs=1, cache=ResultCache(args.cache_dir),
        use_cache=not args.no_cache, refresh=args.refresh,
        progress=_print_progress if not args.json else None,
    ).results[0]
    if not outcome.ok:
        print(f"error: {outcome.error}", file=sys.stderr)
        return 1
    record = outcome.record
    if args.json:
        # repro: allow[REP002] -- human-facing report on stdout, not a keyed path
        json.dump(record, sys.stdout, indent=1)
        print()
    else:
        source = "cache" if outcome.cached else f"{outcome.elapsed_seconds:.2f}s run"
        print(render_result(record["result"],
                            title=f"{spec.experiment} {spec.title} [{source}]",
                            columns=spec.columns))
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    try:
        if args.campaign == "all":
            campaign = all_scenarios_campaign()
        else:
            campaign = load_campaign_file(args.campaign)
        instances = expand_campaign(campaign, smoke=args.smoke)
    except (KeyError, ValueError, FileNotFoundError) as exc:
        # Missing/malformed campaign file, unknown scenario or entry key.
        # KeyError str()-quotes its message, so unwrap args[0] for it only.
        raise _UsageError(exc.args[0] if isinstance(exc, KeyError) else exc) from exc
    if args.workers or args.spawn:
        outcome = _run_distributed(args, campaign["name"], instances)
    else:
        outcome = run_campaign(
            instances, name=campaign["name"],
            jobs=args.jobs, cache=ResultCache(args.cache_dir),
            use_cache=not args.no_cache, refresh=args.refresh,
            engine=args.engine, max_failures=args.max_failures,
            progress=_print_progress,
        )
    print(outcome.summary())
    if args.show_tables:
        for result in outcome.results:
            if result.ok:
                spec = get_scenario(result.instance.scenario)
                print()
                print(render_result(result.record["result"],
                                    title=f"{spec.experiment} {result.instance.describe()}",
                                    columns=spec.columns))
    return 1 if outcome.errors or outcome.aborted else 0


def _run_distributed(args: argparse.Namespace, name: str, instances):
    # Deferred import, mirroring cmd_serve: plain local campaigns should not
    # pay for the HTTP/coordination layer.
    from .distributed import (
        parse_workers,
        run_distributed_campaign,
        spawn_local_workers,
        stop_workers,
    )

    try:
        addresses = parse_workers(args.workers) if args.workers else []
    except ValueError as exc:
        raise _UsageError(exc) from exc
    spawned = []
    try:
        if args.spawn:
            try:
                # Spawned workers share the coordinator's cache root as
                # their persistent store, so worker-computed solves warm
                # the same on-disk tier this campaign reads.
                spawned = spawn_local_workers(
                    args.spawn, store_dir=ResultCache(args.cache_dir).root)
            except (OSError, RuntimeError) as exc:
                raise _UsageError(f"cannot spawn local workers: {exc}") from exc
            addresses = addresses + [worker.address for worker in spawned]
            print(f"spawned {len(spawned)} local workers: "
                  f"{', '.join(w.address for w in spawned)}", flush=True)
        return run_distributed_campaign(
            instances, workers=addresses, name=name,
            cache=ResultCache(args.cache_dir),
            use_cache=not args.no_cache, refresh=args.refresh,
            max_failures=args.max_failures,
            progress=_print_progress,
        )
    finally:
        stop_workers(spawned)


def parse_bytes(text: str) -> int:
    """Parse a byte budget: a plain integer or ``100k`` / ``64m`` / ``2g``
    (binary multiples)."""
    from ..store import parse_bytes as _parse
    try:
        return _parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def cmd_cache(args: argparse.Namespace) -> int:
    from ..store import ResultStore

    store = ResultStore(args.cache_dir)
    if args.action == "gc":
        before = store.stats()
        evicted = store.evict_to(args.max_bytes)
        after = store.size_bytes()
        print(f"evicted {evicted} of {before['entries_total']} records: "
              f"{before['bytes_total']} -> {after} bytes "
              f"(budget {args.max_bytes})")
        return 0
    if args.action == "verify":
        report = store.verify()
        print(f"verified {report['checked']} records under {store.root}/: "
              f"{report['ok']} ok, {report['quarantined']} quarantined")
        return 1 if report["quarantined"] else 0
    # stats
    stats = store.stats()
    if args.json:
        # repro: allow[REP002] -- human-facing report on stdout, not a keyed path
        json.dump(stats, sys.stdout, indent=1)
        print()
        return 0
    print(f"store root: {stats['root']}")
    rows = [{"namespace": ns, **counts}
            for ns, counts in sorted(stats["namespaces"].items())]
    if rows:
        print(rows_to_table(rows, title=f"{stats['entries_total']} records, "
                                        f"{stats['bytes_total']} bytes"))
    else:
        print("empty (no namespaces yet)")
    if stats["corrupt_quarantined_files"]:
        print(f"{stats['corrupt_quarantined_files']} quarantined "
              f"*.json.corrupt files on disk")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    # Deferred import: the CLI should not pay for (or require) the HTTP
    # layer unless it is actually serving.  The server owns its own parser
    # (--host/--port/--max-tasks/...), so the flags live in exactly one
    # place; this subcommand just forwards everything after "serve".
    from ..api.server import main

    return main(args.server_args)


def cmd_report(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    wanted = _lookup_scenario(args.scenario).name if args.scenario else None
    shown = 0
    for record in cache.records():
        if wanted is not None and record.get("scenario") != wanted:
            continue
        if "result" not in record:
            print(f"skipping malformed cache record "
                  f"{record.get('key', '?')[:12]} (no result field)",
                  file=sys.stderr)
            continue
        try:
            spec = get_scenario(record["scenario"])
            title = f"{spec.experiment} {spec.name}"
            columns = spec.columns
        except KeyError:
            title = str(record.get("scenario"))
            columns = None
        seed = record.get("params", {}).get("seed")
        extras = [f"seed={seed}" if seed is not None else "",
                  f"{record.get('elapsed_seconds', 0.0):.2f}s",
                  f"key={record.get('key', '')[:12]}"]
        print()
        print(render_result(record["result"],
                            title=f"{title} ({', '.join(e for e in extras if e)})",
                            columns=columns))
        shown += 1
    if not shown:
        where = f" for scenario {wanted!r}" if wanted else ""
        print(f"no cached records{where} under {cache.root}/ "
              "(run a campaign first)")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Campaign orchestration for the conf_ipps_Aupy12 "
                    "reproduction: list, run, sweep and cache the E1-E12 "
                    "experiment scenarios.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show the scenario registry")
    p_list.add_argument("--names", action="store_true",
                        help="print bare scenario names only")
    p_list.set_defaults(func=cmd_list)

    p_solvers = sub.add_parser(
        "solvers", help="show the solver registry with capability columns")
    p_solvers.add_argument("--names", action="store_true",
                           help="print bare solver names only")
    p_solvers.add_argument("--markdown", action="store_true",
                           help="emit the capability table as markdown "
                                "(the README section is generated this way)")
    p_solvers.add_argument("--problem", default=None, metavar="FILE",
                           help="report admissibility of every solver for a "
                                "problem-instance JSON file instead")
    p_solvers.set_defaults(func=cmd_solvers)

    p_run = sub.add_parser("run", help="run one scenario and print its table")
    p_run.add_argument("scenario", help="registry name or experiment id (e7)")
    p_run.add_argument("--param", dest="params", action="append",
                       type=parse_param, metavar="KEY=VALUE",
                       help="override a scenario parameter (repeatable); "
                            "values are Python literals, so spell a "
                            "one-element sequence with a trailing comma "
                            "(sizes=8,)")
    p_run.add_argument("--seed", type=int, default=None,
                       help="override the scenario's seed parameter")
    p_run.add_argument("--smoke", action="store_true",
                       help="use the reduced smoke-size parameters")
    p_run.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache entirely")
    p_run.add_argument("--refresh", action="store_true",
                       help="re-execute even on a cache hit, then re-cache")
    p_run.add_argument("--json", action="store_true",
                       help="print the raw result record as JSON")
    _add_cache_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_campaign = sub.add_parser(
        "campaign", help="run a JSON campaign file or the built-in 'all'")
    p_campaign.add_argument("campaign",
                            help="path to a campaign JSON file, or 'all'")
    p_campaign.add_argument("--jobs", type=int, default=None,
                            help="worker processes (default: $REPRO_JOBS or 1)")
    p_campaign.add_argument("--engine", choices=("batch", "scalar"),
                            default=None,
                            help="override the solver/simulation engine of "
                                 "every scenario that takes an engine "
                                 "parameter; 'batch' also executes batchable "
                                 "scenarios in-process instead of on the pool")
    p_campaign.add_argument("--smoke", action="store_true",
                            help="use reduced smoke-size parameters")
    p_campaign.add_argument("--no-cache", action="store_true",
                            help="bypass the result cache entirely")
    p_campaign.add_argument("--refresh", action="store_true",
                            help="re-execute every instance, then re-cache")
    p_campaign.add_argument("--show-tables", action="store_true",
                            help="print every instance's table after the summary")
    p_campaign.add_argument("--workers", default=None, metavar="HOST:PORT,...",
                            help="distribute instances across running "
                                 "`repro serve` workers (fault-tolerant "
                                 "coordinator with retry/backoff, worker "
                                 "eviction and in-process fallback)")
    p_campaign.add_argument("--spawn", type=int, default=None, metavar="N",
                            help="fork N local serve workers on ephemeral "
                                 "ports for this run (combines with --workers)")
    p_campaign.add_argument("--max-failures", type=int, default=None,
                            metavar="N",
                            help="abort the campaign once more than N "
                                 "instances have failed (0 aborts on the "
                                 "first failure)")
    _add_cache_flags(p_campaign)
    p_campaign.set_defaults(func=cmd_campaign)

    p_serve = sub.add_parser(
        "serve", add_help=False,
        help="serve the v1 JSON API over HTTP (stdlib server); "
             "see `serve --help` for --host/--port/--max-tasks/...")
    p_serve.add_argument("server_args", nargs=argparse.REMAINDER,
                         help="arguments for the API server "
                              "(repro.api.server)")
    p_serve.set_defaults(func=cmd_serve)

    p_report = sub.add_parser(
        "report", help="render cached result records without recomputing")
    p_report.add_argument("scenario", nargs="?", default=None,
                          help="only this scenario (default: everything cached)")
    _add_cache_flags(p_report)
    p_report.set_defaults(func=cmd_report)

    p_cache = sub.add_parser(
        "cache", help="inspect/maintain the persistent result store "
                      "(stats, gc to a byte budget, checksum verify)")
    cache_sub = p_cache.add_subparsers(dest="action", required=True)
    p_stats = cache_sub.add_parser(
        "stats", help="per-namespace entry/byte counts of the store")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the raw stats payload as JSON")
    _add_cache_flags(p_stats)
    p_stats.set_defaults(func=cmd_cache, action="stats")
    p_gc = cache_sub.add_parser(
        "gc", help="evict least-recently-used records down to a byte budget")
    p_gc.add_argument("--max-bytes", type=parse_bytes, required=True,
                      metavar="BYTES",
                      help="target size; accepts suffixes k/m/g (binary)")
    _add_cache_flags(p_gc)
    p_gc.set_defaults(func=cmd_cache, action="gc")
    p_verify = cache_sub.add_parser(
        "verify", help="re-check every record's content checksum; "
                       "mismatches are quarantined (exit 1 if any)")
    _add_cache_flags(p_verify)
    p_verify.set_defaults(func=cmd_cache, action="verify")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    arglist = list(argv) if argv is not None else sys.argv[1:]
    if arglist and arglist[0] == "serve":
        # Forward to the server's own parser before argparse sees the rest:
        # argparse.REMAINDER does not reliably capture leading optionals
        # ("serve --port 0"), and this keeps every serve flag defined in
        # exactly one place (repro.api.server.build_parser).
        from ..api.server import main as serve_main

        return serve_main(arglist[1:])
    args = build_parser().parse_args(arglist)
    try:
        return args.func(args)
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
