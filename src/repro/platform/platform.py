"""Homogeneous multiprocessor platform description.

The paper's platform is a set of ``p`` identical processors, all sharing the
same speed model (CONTINUOUS, DISCRETE, VDD-HOPPING or INCREMENTAL), the same
energy model and the same reliability model.  :class:`Platform` bundles those
pieces so that solvers only take two arguments: a problem instance and a
platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.energy import EnergyModel
from ..core.reliability import ReliabilityModel
from ..core.speeds import ContinuousSpeeds, SpeedModel

__all__ = ["Platform"]


@dataclass(frozen=True)
class Platform:
    """``p`` identical processors with a shared speed/energy/reliability model.

    Parameters
    ----------
    num_processors:
        Number of identical processors ``p >= 1``.
    speed_model:
        The DVFS model of the processors (defaults to CONTINUOUS on
        ``[0.1, 1.0]`` -- normalised speeds).
    energy_model:
        Dynamic-power model; defaults to the paper's cube law.
    reliability_model:
        Transient-fault model; optional, only needed for TRI-CRIT problems
        and for the fault-injection simulator.  When absent, a default model
        matching the speed bounds is built lazily by :meth:`reliability`.
    """

    num_processors: int
    speed_model: SpeedModel = field(default_factory=lambda: ContinuousSpeeds(0.1, 1.0))
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    reliability_model: ReliabilityModel | None = None

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("a platform needs at least one processor")

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def fmin(self) -> float:
        return self.speed_model.fmin

    @property
    def fmax(self) -> float:
        return self.speed_model.fmax

    def reliability(self) -> ReliabilityModel:
        """The reliability model, building a default one when unset."""
        if self.reliability_model is not None:
            return self.reliability_model
        return ReliabilityModel(fmin=self.fmin, fmax=self.fmax)

    def with_speed_model(self, speed_model: SpeedModel) -> "Platform":
        """Copy of the platform with a different speed model.

        Used by the rounding adapters (a CONTINUOUS solution is computed on
        a continuous twin of a VDD-HOPPING platform, then rounded).
        """
        return Platform(
            num_processors=self.num_processors,
            speed_model=speed_model,
            energy_model=self.energy_model,
            reliability_model=self.reliability_model,
        )

    def continuous_twin(self) -> "Platform":
        """The same platform with a CONTINUOUS speed model on ``[fmin, fmax]``."""
        return self.with_speed_model(ContinuousSpeeds(self.fmin, self.fmax))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Platform(p={self.num_processors}, speeds={self.speed_model!r}, "
            f"alpha={self.energy_model.exponent})"
        )
