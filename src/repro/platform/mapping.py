"""Task-to-processor mappings.

The paper assumes "the mapping is given, say by an ordered list of tasks to
execute on each processor": finding the mapping itself is the classical
NP-complete makespan problem, so the energy optimisation starts from a fixed
allocation and ordering, and only the speeds (and re-executions) remain to be
chosen.

:class:`Mapping` stores, for each processor, the ordered list of tasks it
executes.  The key derived object is the *augmented graph*
(:meth:`Mapping.augmented_graph`): the original precedence DAG plus an edge
between consecutive tasks of each processor.  All makespan computations of
the solvers reduce to longest-path computations on that DAG, and a mapping is
valid iff the augmented graph is acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping as TMapping, Sequence

from ..dag.taskgraph import TaskGraph, TaskId

__all__ = ["Mapping", "InvalidMappingError"]


class InvalidMappingError(ValueError):
    """Raised when a mapping is inconsistent with the task graph."""


class Mapping:
    """Ordered assignment of every task to exactly one processor.

    Parameters
    ----------
    assignment:
        Sequence of ordered task lists, one per processor.  ``assignment[k]``
        lists the tasks processor ``k`` executes, in execution order.
    graph:
        The task graph the mapping refers to; used for validation and for
        building the augmented graph.
    """

    def __init__(self, assignment: Sequence[Sequence[TaskId]], graph: TaskGraph) -> None:
        self._lists: tuple[tuple[TaskId, ...], ...] = tuple(
            tuple(proc_tasks) for proc_tasks in assignment
        )
        self._graph = graph
        self._processor_of: dict[TaskId, int] = {}
        self._position_of: dict[TaskId, int] = {}
        for proc, tasks in enumerate(self._lists):
            for pos, t in enumerate(tasks):
                if t not in graph:
                    raise InvalidMappingError(f"mapped task {t!r} is not in the graph")
                if t in self._processor_of:
                    raise InvalidMappingError(f"task {t!r} is mapped twice")
                self._processor_of[t] = proc
                self._position_of[t] = pos
        missing = set(graph.tasks()) - set(self._processor_of)
        if missing:
            raise InvalidMappingError(
                f"tasks not mapped to any processor: {sorted(map(str, missing))}"
            )
        self._augmented: TaskGraph | None = None
        # Validate acyclicity eagerly: building the augmented graph raises if
        # the processor orderings contradict the precedence constraints.
        self.augmented_graph()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_processor(cls, graph: TaskGraph, order: Sequence[TaskId] | None = None) -> "Mapping":
        """Everything on one processor, by default in topological order."""
        order = list(order) if order is not None else graph.topological_order()
        return cls([order], graph)

    @classmethod
    def one_task_per_processor(cls, graph: TaskGraph) -> "Mapping":
        """Fully parallel mapping: each task gets its own processor.

        Tasks are assigned in topological order so processor 0 always holds
        the first source; this is the natural mapping for fork/join closed
        forms where every branch runs on a dedicated processor.
        """
        return cls([[t] for t in graph.topological_order()], graph)

    @classmethod
    def from_processor_of(cls, graph: TaskGraph, processor_of: TMapping[TaskId, int],
                          num_processors: int | None = None) -> "Mapping":
        """Build a mapping from a task->processor dictionary.

        The per-processor order is the topological order of the graph, which
        is always consistent with the precedence constraints.
        """
        if num_processors is None:
            num_processors = (max(processor_of.values()) + 1) if processor_of else 1
        lists: list[list[TaskId]] = [[] for _ in range(num_processors)]
        for t in graph.topological_order():
            if t not in processor_of:
                raise InvalidMappingError(f"task {t!r} has no processor assignment")
            proc = processor_of[t]
            if not (0 <= proc < num_processors):
                raise InvalidMappingError(
                    f"task {t!r} assigned to processor {proc} outside 0..{num_processors - 1}"
                )
            lists[proc].append(t)
        return cls(lists, graph)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> TaskGraph:
        return self._graph

    @property
    def num_processors(self) -> int:
        return len(self._lists)

    def tasks_on(self, processor: int) -> tuple[TaskId, ...]:
        """Ordered tasks of one processor."""
        return self._lists[processor]

    def processor_of(self, task_id: TaskId) -> int:
        """Processor executing a task."""
        return self._processor_of[task_id]

    def position_of(self, task_id: TaskId) -> int:
        """Rank of a task in its processor's ordered list."""
        return self._position_of[task_id]

    def as_lists(self) -> list[list[TaskId]]:
        return [list(tasks) for tasks in self._lists]

    def processor_loads(self) -> list[float]:
        """Total weight assigned to each processor."""
        return [
            sum(self._graph.weight(t) for t in tasks) for tasks in self._lists
        ]

    def predecessor_on_processor(self, task_id: TaskId) -> TaskId | None:
        """Task executed immediately before ``task_id`` on the same processor."""
        pos = self._position_of[task_id]
        if pos == 0:
            return None
        return self._lists[self._processor_of[task_id]][pos - 1]

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def augmented_graph(self) -> TaskGraph:
        """Precedence DAG plus consecutive-on-same-processor edges.

        The makespan of a schedule with per-task durations ``d_i`` equals the
        longest path in this DAG with node weights ``d_i``; every solver in
        :mod:`repro.continuous` and :mod:`repro.discrete` works on it.
        Raises :class:`InvalidMappingError` when the processor orders create
        a cycle with the precedence constraints.
        """
        if self._augmented is None:
            extra_edges: list[tuple[TaskId, TaskId]] = []
            precedence = self._graph.edges()
            existing = set(precedence)
            for tasks in self._lists:
                for u, v in zip(tasks[:-1], tasks[1:]):
                    if (u, v) not in existing:
                        extra_edges.append((u, v))
            try:
                # Keep the precedence edges in graph order (not set order):
                # edge insertion order reaches the numerical solvers through
                # adjacency iteration, and hash-randomised order would make
                # results differ between processes.
                self._augmented = TaskGraph(
                    self._graph.weights(), precedence + extra_edges
                )
            except ValueError as exc:
                raise InvalidMappingError(
                    f"processor orderings conflict with precedence constraints: {exc}"
                ) from exc
        return self._augmented

    def serialized_chains(self) -> list[list[TaskId]]:
        """Per-processor ordered task lists (alias of :meth:`as_lists`)."""
        return self.as_lists()

    def is_single_processor(self) -> bool:
        return self.num_processors == 1 or all(
            len(tasks) == 0 for tasks in self._lists[1:]
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._lists == other._lists and self._graph == other._graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = [len(tasks) for tasks in self._lists]
        return f"Mapping(p={self.num_processors}, tasks_per_proc={sizes})"
