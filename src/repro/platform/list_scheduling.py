"""List-scheduling heuristics that produce the task-to-processor mapping.

The paper's energy heuristics assume the mapping is given; in the companion
experiments "we coupled them with a critical-path list-scheduling algorithm".
Section V raises the question of how much the choice of that mapping
heuristic matters -- experiment E12 of this reproduction answers it with an
ablation over the priority rules implemented here.

All heuristics run the classical list-scheduling loop at maximum speed
``fmax``: repeatedly pick the ready task with the highest priority and place
it on the processor where it can start earliest.  What changes between
heuristics is the priority:

* ``critical_path`` -- bottom level (the classic CP/HEFT-like rule the paper
  uses);
* ``largest_task_first`` -- task weight;
* ``topological`` -- position in a deterministic topological order
  (essentially FIFO by readiness);
* ``random`` -- random priorities (a weak baseline);
* ``min_loaded`` uses the CP priority but places tasks on the least-loaded
  processor instead of the earliest-start one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from ..core.rng import resolve_rng
from ..dag.analysis import bottom_levels, top_levels
from ..dag.taskgraph import TaskGraph, TaskId
from .mapping import Mapping

__all__ = [
    "ListScheduleResult",
    "list_schedule",
    "critical_path_mapping",
    "largest_first_mapping",
    "topological_mapping",
    "random_mapping",
    "min_loaded_mapping",
    "round_robin_mapping",
    "MAPPING_HEURISTICS",
]


@dataclass(frozen=True)
class ListScheduleResult:
    """Outcome of a list-scheduling pass at maximum speed."""

    mapping: Mapping
    start_times: dict[TaskId, float]
    finish_times: dict[TaskId, float]
    makespan: float

    def processor_utilisation(self) -> list[float]:
        """Busy time of each processor divided by the makespan."""
        busy = [0.0] * self.mapping.num_processors
        graph = self.mapping.graph
        for t in graph.tasks():
            busy[self.mapping.processor_of(t)] += (
                self.finish_times[t] - self.start_times[t]
            )
        if self.makespan == 0:
            return [0.0] * self.mapping.num_processors
        return [b / self.makespan for b in busy]


def list_schedule(graph: TaskGraph, num_processors: int, *, fmax: float = 1.0,
                  priority: Callable[[TaskGraph], dict[TaskId, float]] | None = None,
                  placement: str = "earliest_start",
                  seed: int | None = None) -> ListScheduleResult:
    """Generic list scheduling at speed ``fmax``.

    Parameters
    ----------
    priority:
        Function mapping the graph to a priority per task (higher = earlier);
        defaults to the bottom level (critical-path priority).
    placement:
        ``"earliest_start"`` (classic) or ``"min_loaded"``.
    seed:
        Only used to break ties randomly; ``None`` keeps ties deterministic.
    """
    if num_processors < 1:
        raise ValueError("need at least one processor")
    if fmax <= 0:
        raise ValueError("fmax must be positive")
    if placement not in ("earliest_start", "min_loaded"):
        raise ValueError(f"unknown placement rule {placement!r}")

    prio = (priority or bottom_levels)(graph)
    rng = resolve_rng(seed)
    tie_break = {t: (rng.random() if seed is not None else 0.0) for t in graph.tasks()}

    in_degree = {t: len(graph.predecessors(t)) for t in graph.tasks()}
    ready: list[tuple[float, float, str, TaskId]] = []
    counter = 0
    for t in graph.tasks():
        if in_degree[t] == 0:
            heapq.heappush(ready, (-prio[t], tie_break[t], str(t), t))

    proc_available = [0.0] * num_processors
    proc_lists: list[list[TaskId]] = [[] for _ in range(num_processors)]
    start: dict[TaskId, float] = {}
    finish: dict[TaskId, float] = {}

    scheduled = 0
    while ready:
        _, _, _, task = heapq.heappop(ready)
        duration = graph.weight(task) / fmax
        earliest_data = max(
            (finish[p] for p in graph.predecessors(task)), default=0.0
        )
        if placement == "earliest_start":
            best_proc = min(
                range(num_processors),
                key=lambda k: (max(proc_available[k], earliest_data), proc_available[k], k),
            )
        else:  # min_loaded
            best_proc = min(
                range(num_processors), key=lambda k: (proc_available[k], k)
            )
        s = max(proc_available[best_proc], earliest_data)
        start[task] = s
        finish[task] = s + duration
        proc_available[best_proc] = finish[task]
        proc_lists[best_proc].append(task)
        scheduled += 1
        for succ in graph.successors(task):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                heapq.heappush(ready, (-prio[succ], tie_break[succ], str(succ), succ))

    if scheduled != graph.num_tasks:  # pragma: no cover - defensive
        raise RuntimeError("list scheduling failed to schedule every task")

    makespan = max(finish.values(), default=0.0)
    mapping = Mapping(proc_lists, graph)
    return ListScheduleResult(mapping=mapping, start_times=start,
                              finish_times=finish, makespan=makespan)


# ----------------------------------------------------------------------
# named heuristics (what the E12 ablation sweeps over)
# ----------------------------------------------------------------------
def critical_path_mapping(graph: TaskGraph, num_processors: int, *,
                          fmax: float = 1.0) -> ListScheduleResult:
    """Bottom-level priority, earliest-start placement (the paper's choice)."""
    return list_schedule(graph, num_processors, fmax=fmax, priority=bottom_levels)


def largest_first_mapping(graph: TaskGraph, num_processors: int, *,
                          fmax: float = 1.0) -> ListScheduleResult:
    """Largest-weight-first priority."""
    return list_schedule(
        graph, num_processors, fmax=fmax,
        priority=lambda g: {t: g.weight(t) for t in g.tasks()},
    )


def topological_mapping(graph: TaskGraph, num_processors: int, *,
                        fmax: float = 1.0) -> ListScheduleResult:
    """FIFO-by-readiness priority (negative topological rank)."""
    def prio(g: TaskGraph) -> dict[TaskId, float]:
        order = g.topological_order()
        return {t: -float(i) for i, t in enumerate(order)}

    return list_schedule(graph, num_processors, fmax=fmax, priority=prio)


def random_mapping(graph: TaskGraph, num_processors: int, *, fmax: float = 1.0,
                   seed: int = 0) -> ListScheduleResult:
    """Random priorities -- the weak baseline of the E12 ablation."""
    def prio(g: TaskGraph) -> dict[TaskId, float]:
        rng = resolve_rng(seed)
        return {t: float(rng.random()) for t in g.tasks()}

    return list_schedule(graph, num_processors, fmax=fmax, priority=prio, seed=seed)


def min_loaded_mapping(graph: TaskGraph, num_processors: int, *,
                       fmax: float = 1.0) -> ListScheduleResult:
    """Critical-path priority but least-loaded-processor placement."""
    return list_schedule(
        graph, num_processors, fmax=fmax, priority=bottom_levels,
        placement="min_loaded",
    )


def round_robin_mapping(graph: TaskGraph, num_processors: int, *,
                        fmax: float = 1.0) -> ListScheduleResult:
    """Round-robin allocation in topological order.

    Not a list schedule in the strict sense (placement ignores start times);
    implemented directly so the ablation includes a mapping that balances
    task counts but ignores both the critical path and the load.
    """
    lists: list[list[TaskId]] = [[] for _ in range(num_processors)]
    for i, t in enumerate(graph.topological_order()):
        lists[i % num_processors].append(t)
    mapping = Mapping(lists, graph)
    # Compute start/finish times of the induced schedule at fmax.
    durations = {t: graph.weight(t) / fmax for t in graph.tasks()}
    start: dict[TaskId, float] = {}
    finish: dict[TaskId, float] = {}
    for t in mapping.augmented_graph().topological_order():
        preds = mapping.augmented_graph().predecessors(t)
        s = max((finish[p] for p in preds), default=0.0)
        start[t] = s
        finish[t] = s + durations[t]
    makespan = max(finish.values(), default=0.0)
    return ListScheduleResult(mapping=mapping, start_times=start,
                              finish_times=finish, makespan=makespan)


#: Registry used by the mapping-impact ablation (experiment E12).
MAPPING_HEURISTICS: dict[str, Callable[..., ListScheduleResult]] = {
    "critical_path": critical_path_mapping,
    "largest_first": largest_first_mapping,
    "topological": topological_mapping,
    "random": random_mapping,
    "min_loaded": min_loaded_mapping,
    "round_robin": round_robin_mapping,
}
