"""Platform substrate: processors, mappings and list-scheduling heuristics."""

from .list_scheduling import (
    MAPPING_HEURISTICS,
    ListScheduleResult,
    critical_path_mapping,
    list_schedule,
)
from .mapping import InvalidMappingError, Mapping
from .platform import Platform

__all__ = [
    "Platform",
    "Mapping",
    "InvalidMappingError",
    "list_schedule",
    "critical_path_mapping",
    "ListScheduleResult",
    "MAPPING_HEURISTICS",
]
