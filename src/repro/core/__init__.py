"""Core models: speeds, energy, reliability, schedules and problem definitions."""

from .energy import EnergyModel, energy_for_duration, reexecution_energy, task_energy
from .problems import (
    BiCritProblem,
    InfeasibleProblemError,
    SolutionReport,
    SolveResult,
    TriCritProblem,
)
from .problem_io import (
    load_problem_json,
    problem_from_dict,
    problem_to_dict,
    save_problem_json,
)
from .reliability import ReliabilityModel
from .rng import resolve_seed, spawn_child_seeds
from .schedule import Execution, Schedule, ScheduleViolation, TaskDecision
from .speeds import (
    INTEL_XSCALE_SPEEDS,
    ContinuousSpeeds,
    DiscreteSpeeds,
    IncrementalSpeeds,
    SpeedModel,
    VddHoppingSpeeds,
)

__all__ = [
    "EnergyModel",
    "task_energy",
    "reexecution_energy",
    "energy_for_duration",
    "ReliabilityModel",
    "resolve_seed",
    "spawn_child_seeds",
    "Execution",
    "TaskDecision",
    "Schedule",
    "ScheduleViolation",
    "BiCritProblem",
    "TriCritProblem",
    "SolutionReport",
    "SolveResult",
    "InfeasibleProblemError",
    "problem_to_dict",
    "problem_from_dict",
    "save_problem_json",
    "load_problem_json",
    "SpeedModel",
    "ContinuousSpeeds",
    "DiscreteSpeeds",
    "VddHoppingSpeeds",
    "IncrementalSpeeds",
    "INTEL_XSCALE_SPEEDS",
]
