"""Problem definitions: BI-CRIT and TRI-CRIT (Definitions 1 and 2 of the paper).

* :class:`BiCritProblem` -- given an application graph mapped onto ``p``
  homogeneous processors, decide the speed of every task so as to minimise
  the total energy subject to the deadline bound ``D``.
* :class:`TriCritProblem` -- additionally decide which tasks are re-executed
  (and the speed of both executions) so that every task also meets its
  reliability threshold ``R_i >= R_i(f_rel)``.

Both classes bundle the instance data (graph, mapping, platform, deadline,
and reliability model for TRI-CRIT), provide instance validation and simple
bounds, and evaluate candidate schedules into :class:`SolutionReport`
objects.  Solvers return :class:`SolveResult` so that every algorithm --
closed form, convex program, LP, branch-and-bound, heuristic -- is
interchangeable in the experiment harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..dag.taskgraph import TaskGraph, TaskId
from .reliability import ReliabilityModel
from .schedule import Schedule, ScheduleViolation

if TYPE_CHECKING:  # imported only for type checking to avoid a package cycle
    from ..platform.mapping import Mapping
    from ..platform.platform import Platform
    from ..solvers.context import SolverContext

__all__ = [
    "InfeasibleProblemError",
    "BiCritProblem",
    "TriCritProblem",
    "SolutionReport",
    "SolveResult",
]


class InfeasibleProblemError(ValueError):
    """Raised when an instance admits no feasible schedule at all."""


@dataclass(frozen=True)
class SolutionReport:
    """Evaluation of a schedule against a problem instance."""

    energy: float
    makespan: float
    deadline: float
    feasible: bool
    violations: tuple[ScheduleViolation, ...]
    num_reexecuted: int = 0
    min_reliability_margin: float | None = None

    @property
    def deadline_slack(self) -> float:
        return self.deadline - self.makespan


@dataclass
class SolveResult:
    """Uniform return type of every solver in the library."""

    schedule: Schedule | None
    energy: float
    status: str
    solver: str
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.status == "optimal" or self.status == "feasible"

    def require_schedule(self) -> Schedule:
        if self.schedule is None:
            raise InfeasibleProblemError(
                f"solver {self.solver!r} returned status {self.status!r} without a schedule"
            )
        return self.schedule


@dataclass(frozen=True)
class BiCritProblem:
    """BI-CRIT: minimise energy subject to a deadline, mapping given."""

    mapping: Mapping
    platform: Platform
    deadline: float

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.mapping.num_processors > self.platform.num_processors:
            raise ValueError(
                f"mapping uses {self.mapping.num_processors} processors but the "
                f"platform only has {self.platform.num_processors}"
            )

    # ------------------------------------------------------------------
    @property
    def graph(self) -> TaskGraph:
        return self.mapping.graph

    @property
    def fmin(self) -> float:
        return self.platform.fmin

    @property
    def fmax(self) -> float:
        return self.platform.fmax

    # ------------------------------------------------------------------
    # bounds and validation
    # ------------------------------------------------------------------
    def min_makespan(self) -> float:
        """Makespan when every task runs once at ``fmax`` under this mapping."""
        schedule = Schedule.uniform_speed(self.mapping, self.platform, self.fmax)
        return schedule.makespan()

    def is_feasible_instance(self, *, tol: float = 1e-9) -> bool:
        """Can the deadline be met at all (running everything at fmax)?"""
        return self.min_makespan() <= self.deadline * (1.0 + tol)

    def validate(self) -> None:
        """Raise :class:`InfeasibleProblemError` when no schedule can meet D."""
        ms = self.min_makespan()
        if ms > self.deadline * (1.0 + 1e-9):
            raise InfeasibleProblemError(
                f"even at fmax the mapped makespan is {ms:.6g} > deadline {self.deadline:.6g}"
            )

    def energy_upper_bound(self) -> float:
        """Energy of the trivial feasible schedule (everything at fmax)."""
        return Schedule.uniform_speed(self.mapping, self.platform, self.fmax).energy()

    def context(self) -> "SolverContext":
        """The instance's memoized :class:`~repro.solvers.context.SolverContext`.

        Lazy import: ``repro.core`` sits below the solver layer.
        """
        from ..solvers.context import SolverContext

        return SolverContext.for_problem(self)

    def energy_lower_bound(self) -> float:
        """Per-task relaxation: each task alone within D at the best allowed speed.

        Each task must run at a speed of at least ``w_i / D`` (it cannot take
        longer than the whole deadline) and at least ``fmin``; the bound sums
        the corresponding energies and ignores every precedence constraint,
        so it is valid for every speed model.
        """
        alpha = self.platform.energy_model.exponent
        total = 0.0
        for t in self.graph.tasks():
            w = self.graph.weight(t)
            if w == 0:
                continue
            f = max(w / self.deadline, self.fmin)
            total += w * f ** (alpha - 1.0)
        return total

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, schedule: Schedule) -> SolutionReport:
        violations = schedule.violations(self.deadline)
        return SolutionReport(
            energy=schedule.energy(),
            makespan=schedule.makespan(),
            deadline=self.deadline,
            feasible=not violations,
            violations=tuple(violations),
            num_reexecuted=schedule.num_reexecuted(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BiCritProblem(n={self.graph.num_tasks}, p={self.mapping.num_processors}, "
            f"D={self.deadline:.4g}, speeds={type(self.platform.speed_model).__name__})"
        )


@dataclass(frozen=True)
class TriCritProblem(BiCritProblem):
    """TRI-CRIT: BI-CRIT plus per-task reliability constraints.

    The reliability model defaults to the platform's (which itself defaults
    to ``frel = fmax``); it can be overridden per problem instance to study
    weaker thresholds.
    """

    reliability_model: ReliabilityModel | None = None

    def reliability(self) -> ReliabilityModel:
        if self.reliability_model is not None:
            return self.reliability_model
        return self.platform.reliability()

    # ------------------------------------------------------------------
    def min_makespan_with_reliability(self) -> float:
        """Makespan of the cheapest *reliable* trivial schedule (all at frel).

        A single execution at ``frel`` is the fastest way to satisfy the
        reliability constraint without re-execution; running faster is also
        reliable, so the minimum achievable makespan is the one at ``fmax``
        (same as BI-CRIT).  This helper reports the makespan at ``frel`` to
        show how much slack the reliability threshold leaves.
        """
        model = self.reliability()
        schedule = Schedule.uniform_speed(self.mapping, self.platform, model.frel)
        return schedule.makespan()

    def validate(self) -> None:
        super().validate()
        # With a single execution at fmax every task is maximally reliable,
        # so BI-CRIT feasibility implies TRI-CRIT feasibility; nothing more
        # to check (re-execution only ever helps reliability).

    def evaluate(self, schedule: Schedule) -> SolutionReport:
        model = self.reliability()
        violations = schedule.violations(
            self.deadline, check_reliability=True, reliability_model=model
        )
        margins = []
        for t in self.graph.tasks():
            threshold = model.threshold(self.graph.weight(t))
            margins.append(schedule.task_reliability(t, model) - threshold)
        return SolutionReport(
            energy=schedule.energy(),
            makespan=schedule.makespan(),
            deadline=self.deadline,
            feasible=not violations,
            violations=tuple(violations),
            num_reexecuted=schedule.num_reexecuted(),
            min_reliability_margin=min(margins) if margins else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        model = self.reliability()
        return (
            f"TriCritProblem(n={self.graph.num_tasks}, p={self.mapping.num_processors}, "
            f"D={self.deadline:.4g}, frel={model.frel:.4g})"
        )
