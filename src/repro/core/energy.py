"""Energy model of the paper (Section II.c).

The paper uses the classical dynamic-power model: a processor operated at
speed ``f`` during ``t`` time units dissipates power ``f^3`` and therefore
consumes ``f^3 * t`` joules.  Executing task ``T_i`` of weight ``w_i`` at
constant speed ``f`` takes ``w_i / f`` time units and costs

    ``E_i = f^3 * w_i / f = w_i * f^2``.

Static energy is ignored because every processor is up during the whole
execution, so the static part is a constant offset that does not influence
the optimisation.

When a task is re-executed at speeds ``f1`` and ``f2`` the paper accounts for
*both* executions even when the first one succeeds (worst-case accounting):
``E_i = w_i * (f1^2 + f2^2)``.

This module provides both scalar helpers and vectorised NumPy versions used
by the solvers and the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import Union

import numpy as np
from numpy.typing import ArrayLike

#: Vectorised numeric result: scalar inputs yield ``float``, array inputs
#: yield an ``ndarray`` of the broadcast shape.
Vectorised = Union[float, np.ndarray]

__all__ = [
    "EnergyModel",
    "task_energy",
    "reexecution_energy",
    "energy_for_duration",
    "schedule_energy",
    "continuous_lower_bound_single_chain",
]

#: Exponent of the dynamic power law ``P(f) = f^alpha``.  The paper fixes
#: ``alpha = 3`` (cube law) following Ishihara & Yasuura; the class below
#: keeps it configurable so that sensitivity studies can vary it.
DEFAULT_POWER_EXPONENT = 3.0


@dataclass(frozen=True)
class EnergyModel:
    """Dynamic-energy model ``P(f) = f^alpha`` with ``alpha > 1``.

    Parameters
    ----------
    exponent:
        Power-law exponent ``alpha``.  The paper (and this reproduction's
        closed forms) use ``alpha = 3``; the general convex machinery works
        for any ``alpha > 1``.
    static_power:
        Constant power drawn by a switched-on processor.  The paper sets it
        to zero (all processors stay on for the whole schedule, so the term
        is constant); it is kept here so that the simulator can report total
        energy including the static part if desired.
    """

    exponent: float = DEFAULT_POWER_EXPONENT
    static_power: float = 0.0

    def __post_init__(self) -> None:
        if self.exponent <= 1.0:
            raise ValueError(
                f"power exponent must be > 1 for a convex model, got {self.exponent}"
            )
        if self.static_power < 0.0:
            raise ValueError("static power cannot be negative")

    # ------------------------------------------------------------------
    # per-execution energies
    # ------------------------------------------------------------------
    def power(self, speed: ArrayLike) -> np.ndarray:
        """Dynamic power ``f^alpha`` (vectorised)."""
        return np.asarray(speed, dtype=float) ** self.exponent

    def task_energy(self, weight: ArrayLike, speed: ArrayLike) -> Vectorised:
        """Energy of one execution of a task of ``weight`` at ``speed``.

        ``E = w * f^(alpha-1)`` -- with the default cube law, ``w * f^2``.
        Vectorised over both arguments.
        """
        w = np.asarray(weight, dtype=float)
        f = np.asarray(speed, dtype=float)
        if np.any(f <= 0):
            raise ValueError("speeds must be positive")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        result = w * f ** (self.exponent - 1.0)
        if np.isscalar(weight) and np.isscalar(speed):
            return float(result)
        return result

    def energy_for_duration(self, weight: ArrayLike, duration: ArrayLike) -> Vectorised:
        """Energy of executing ``weight`` units of work in ``duration`` time.

        The work is executed at the constant speed ``w/d`` (running at a
        constant speed is optimal for a fixed duration because the power law
        is convex), so ``E = w^alpha / d^(alpha-1)`` -- with the cube law,
        ``w^3 / d^2``.  Vectorised.
        """
        w = np.asarray(weight, dtype=float)
        d = np.asarray(duration, dtype=float)
        if np.any(d <= 0):
            raise ValueError("durations must be positive")
        result = w ** self.exponent / d ** (self.exponent - 1.0)
        if np.isscalar(weight) and np.isscalar(duration):
            return float(result)
        return result

    def reexecution_energy(self, weight: ArrayLike, speed_first: ArrayLike,
                           speed_second: ArrayLike) -> Vectorised:
        """Worst-case energy of a re-executed task: both executions count."""
        return self.task_energy(weight, speed_first) + self.task_energy(
            weight, speed_second
        )

    def interval_energy(self, intervals: Iterable[tuple[float, float]]) -> float:
        """Energy of a VDD-HOPPING execution given ``(speed, time)`` intervals."""
        total = 0.0
        for speed, time in intervals:
            if time < 0:
                raise ValueError("interval durations must be non-negative")
            if speed <= 0 and time > 0:
                raise ValueError("speeds must be positive")
            total += float(speed) ** self.exponent * float(time)
        return total

    def static_energy(self, num_processors: int, makespan: float) -> float:
        """Static part of the energy for ``num_processors`` kept on for ``makespan``."""
        return self.static_power * num_processors * makespan

    # ------------------------------------------------------------------
    # aggregate helpers
    # ------------------------------------------------------------------
    def total_energy(self, weights: ArrayLike, speeds: ArrayLike) -> float:
        """Sum of single-execution energies (vectorised convenience)."""
        return float(np.sum(self.task_energy(np.asarray(weights), np.asarray(speeds))))


# ----------------------------------------------------------------------
# module-level functional API (default cube-law model)
# ----------------------------------------------------------------------
_DEFAULT = EnergyModel()


def task_energy(weight: ArrayLike, speed: ArrayLike,
                model: EnergyModel = _DEFAULT) -> Vectorised:
    """Energy ``w * f^2`` of one execution under the default cube law."""
    return model.task_energy(weight, speed)


def reexecution_energy(weight: ArrayLike, speed_first: ArrayLike,
                       speed_second: ArrayLike,
                       model: EnergyModel = _DEFAULT) -> Vectorised:
    """Worst-case energy ``w (f1^2 + f2^2)`` of a re-executed task."""
    return model.reexecution_energy(weight, speed_first, speed_second)


def energy_for_duration(weight: ArrayLike, duration: ArrayLike,
                        model: EnergyModel = _DEFAULT) -> Vectorised:
    """Energy ``w^3 / d^2`` of executing ``weight`` within ``duration``."""
    return model.energy_for_duration(weight, duration)


def schedule_energy(executions: Iterable[tuple[float, Sequence[float]]],
                    model: EnergyModel = _DEFAULT) -> float:
    """Total energy of a schedule given ``(weight, [speeds...])`` records.

    Each record lists the speed of every execution of the task (one entry
    for a plain execution, two for a re-executed task).  All executions are
    charged, matching the worst-case accounting of the paper.
    """
    total = 0.0
    for weight, speeds in executions:
        for f in speeds:
            total += model.task_energy(weight, f)
    return total


def continuous_lower_bound_single_chain(weights: ArrayLike, deadline: float,
                                        model: EnergyModel = _DEFAULT) -> float:
    """Energy lower bound ``(sum w_i)^3 / D^2`` for tasks sharing one processor.

    For a linear chain (or any set of tasks serialised on a single
    processor) the CONTINUOUS optimum runs every task at the common speed
    ``sum(w)/D``; the resulting energy is a lower bound for every discrete
    model on the same instance.
    """
    w = float(np.sum(np.asarray(weights, dtype=float)))
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    return model.energy_for_duration(w, deadline)
