"""Scoped garbage-collection pause for allocation-heavy request handling.

A 10k-instance ``/v1/solve-batch`` request allocates millions of small
containers (parsed JSON, columnar rows, result records) that all survive
until the response is serialised.  Threshold-driven generational GC rescans
that growing live set dozens of times mid-request, which measures as ~40%
of end-to-end latency.  Pausing automatic collection for the scope of one
request and running a single young-generation sweep afterwards does the
same reclamation work once, deterministically, after the response bytes
are already on the wire.

The pause is a global hint, not a correctness property: with several scopes
active (threaded server), a depth counter keeps collection disabled until
the last scope exits, and the previous enabled/disabled state is restored.
If the host application runs with GC disabled already, the scope is a no-op.
"""

from __future__ import annotations

import contextlib
import gc
import threading
from collections.abc import Iterator

__all__ = ["paused_gc"]

_lock = threading.Lock()
_depth = 0  # guarded-by: _lock
_was_enabled = False  # guarded-by: _lock


@contextlib.contextmanager
def paused_gc(*, collect: bool = True) -> Iterator[None]:
    """Disable automatic GC for the scope; optionally sweep gen-0 on exit.

    ``collect=True`` (the default) runs ``gc.collect(0)`` when the last
    nested scope exits: objects allocated while paused are all still in
    generation 0 (promotion only happens at collection time), so one young
    sweep reclaims the scope's garbage at a deterministic point instead of
    wherever the next allocation lands.
    """
    global _depth, _was_enabled
    with _lock:
        _depth += 1
        if _depth == 1:
            _was_enabled = gc.isenabled()
            if _was_enabled:
                gc.disable()
    try:
        yield
    finally:
        with _lock:
            _depth -= 1
            resume = _depth == 0 and _was_enabled
            if resume:
                gc.enable()
        if resume and collect:
            gc.collect(0)
