"""Reliability model of the paper (Section II.b).

Dynamic voltage and frequency scaling has a negative effect on transient
fault rates (Zhu et al., reference [14] of the paper): the slower a task
runs, the more likely it is to be hit by a transient fault.  The paper
adopts the exponential fault-rate model

    ``lambda(f) = lambda0 * exp(d * (fmax - f) / (fmax - fmin))``

where ``lambda0`` is the fault rate at maximum speed and ``d >= 0`` measures
the sensitivity of the fault rate to DVFS.  The reliability of task ``T_i``
of weight ``w_i`` executed once at speed ``f`` is, to first order in the
(small) fault probability,

    ``R_i(f) = 1 - lambda(f) * w_i / f``                        (eq. 1)

because ``w_i / f`` is the exposure time of the task.  The reliability
constraint of the TRI-CRIT problem requires every task to be at least as
reliable as if it were executed once at a reference speed ``f_rel``:

    ``R_i >= R_i(f_rel)``.

A task executed once therefore needs ``f >= f_rel``.  A *re-executed* task
(two attempts at speeds ``f1`` and ``f2``) succeeds when at least one attempt
succeeds, so

    ``R_i = 1 - (1 - R_i(f1)) * (1 - R_i(f2))``

and the constraint becomes ``(1 - R_i(f1)) (1 - R_i(f2)) <= 1 - R_i(f_rel)``,
i.e. the product of the two failure probabilities must not exceed the single
failure probability at ``f_rel``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np
from numpy.typing import ArrayLike

#: Vectorised numeric result: scalar inputs yield ``float``, array inputs
#: yield an ``ndarray`` of the broadcast shape.
Vectorised = Union[float, np.ndarray]

__all__ = [
    "ReliabilityModel",
    "DEFAULT_LAMBDA0",
    "DEFAULT_SENSITIVITY",
]

#: Default average fault rate at ``fmax`` (faults per unit of time).  The
#: value 1e-5 is in the range used by Zhu et al. and by the companion
#: research reports; it keeps single-task failure probabilities small so the
#: first-order reliability expression of the paper stays accurate.
DEFAULT_LAMBDA0 = 1e-5

#: Default DVFS sensitivity exponent ``d``.  ``d = 3`` is a common choice in
#: the literature (fault rate increases by 10^3 over the speed range when a
#: base-10 exponential is used; here the model is natural-exponential as in
#: the paper's equation (1)).
DEFAULT_SENSITIVITY = 3.0


@dataclass(frozen=True)
class ReliabilityModel:
    """Exponential transient-fault model with a reliability threshold speed.

    Parameters
    ----------
    fmin, fmax:
        Speed range of the processors; used to normalise the exponent.
    lambda0:
        Fault rate at ``fmax``.
    sensitivity:
        Exponent ``d >= 0``: how strongly lowering the speed increases the
        fault rate.  ``d = 0`` makes the fault rate speed-independent.
    frel:
        Reliability reference speed.  A single execution at speed
        ``f >= frel`` satisfies the constraint; the default is ``fmax``
        (the strictest setting, matching the companion report where the
        threshold is the reliability of running at maximum speed).
    """

    fmin: float
    fmax: float
    lambda0: float = DEFAULT_LAMBDA0
    sensitivity: float = DEFAULT_SENSITIVITY
    frel: float | None = None

    def __post_init__(self) -> None:
        if self.fmin <= 0 or self.fmax < self.fmin:
            raise ValueError("need 0 < fmin <= fmax")
        if self.lambda0 < 0:
            raise ValueError("lambda0 must be non-negative")
        if self.sensitivity < 0:
            raise ValueError("sensitivity d must be non-negative")
        frel = self.fmax if self.frel is None else self.frel
        if not (self.fmin <= frel <= self.fmax):
            raise ValueError(
                f"frel={frel} must lie in [fmin={self.fmin}, fmax={self.fmax}]"
            )
        object.__setattr__(self, "frel", float(frel))

    # ------------------------------------------------------------------
    # fault rate and per-execution reliability
    # ------------------------------------------------------------------
    def fault_rate(self, speed: ArrayLike) -> Vectorised:
        """Fault rate ``lambda(f) = lambda0 * exp(d (fmax-f)/(fmax-fmin))``."""
        f = np.asarray(speed, dtype=float)
        if self.fmax == self.fmin:
            scale = np.zeros_like(f)
        else:
            scale = (self.fmax - f) / (self.fmax - self.fmin)
        result = self.lambda0 * np.exp(self.sensitivity * scale)
        if np.isscalar(speed):
            return float(result)
        return result

    def failure_probability(self, weight: ArrayLike, speed: ArrayLike) -> Vectorised:
        """Failure probability of one execution: ``lambda(f) * w / f``.

        This is the first-order expression used in the paper's equation (1).
        Values are clipped to ``[0, 1]`` so that extreme parameter choices
        still yield a valid probability.
        """
        w = np.asarray(weight, dtype=float)
        f = np.asarray(speed, dtype=float)
        if np.any(f <= 0):
            raise ValueError("speeds must be positive")
        p = self.fault_rate(f) * w / f
        p = np.clip(p, 0.0, 1.0)
        if np.isscalar(weight) and np.isscalar(speed):
            return float(p)
        return p

    def reliability(self, weight: ArrayLike, speed: ArrayLike) -> Vectorised:
        """Reliability of a single execution, ``R_i(f) = 1 - lambda(f) w/f``."""
        result = 1.0 - self.failure_probability(weight, speed)
        return result

    def reexecution_reliability(self, weight: ArrayLike, speed_first: ArrayLike,
                                speed_second: ArrayLike) -> Vectorised:
        """Reliability of two independent attempts at the given speeds."""
        p1 = self.failure_probability(weight, speed_first)
        p2 = self.failure_probability(weight, speed_second)
        result = 1.0 - p1 * p2
        if np.isscalar(weight) and np.isscalar(speed_first) and np.isscalar(speed_second):
            return float(result)
        return result

    # ------------------------------------------------------------------
    # constraint helpers
    # ------------------------------------------------------------------
    def threshold(self, weight: ArrayLike) -> float:
        """Reliability threshold ``R_i(frel)`` of a task of given weight."""
        return self.reliability(weight, self.frel)

    def threshold_failure(self, weight: ArrayLike) -> float:
        """Failure-probability budget ``1 - R_i(frel)`` of a task."""
        return self.failure_probability(weight, self.frel)

    def single_execution_ok(self, weight: ArrayLike, speed: ArrayLike, *,
                            tol: float = 1e-12) -> bool:
        """Does one execution at ``speed`` meet the reliability constraint?

        Since reliability is increasing in speed this is equivalent to
        ``speed >= frel`` for any positive weight (and trivially true for a
        zero-weight task); the direct probability comparison is used so that
        the tolerance handling matches the solvers.
        """
        return bool(
            self.failure_probability(weight, speed)
            <= self.threshold_failure(weight) + tol
        )

    def reexecution_ok(self, weight: ArrayLike, speed_first: ArrayLike,
                       speed_second: ArrayLike, *,
                       tol: float = 1e-12) -> bool:
        """Do two executions at the given speeds meet the constraint?"""
        p1 = self.failure_probability(weight, speed_first)
        p2 = self.failure_probability(weight, speed_second)
        return bool(p1 * p2 <= self.threshold_failure(weight) + tol)

    def min_equal_reexecution_speed(self, weight: ArrayLike, *,
                                    tol: float = 1e-12) -> float:
        """Smallest speed ``f`` such that two executions at ``f`` are reliable enough.

        Solves ``failure(w, f)^2 <= threshold_failure(w)`` by bisection on
        ``[fmin, frel]``.  Because failure probability is decreasing in ``f``
        and ``failure(w, frel)^2 <= failure(w, frel)`` always holds (failure
        probabilities are at most 1), a solution always exists in that
        interval; the returned speed is clipped to ``fmin`` when even the
        slowest speed is reliable enough.
        """
        budget = self.threshold_failure(weight)
        if budget <= 0.0:
            # Threshold is perfect reliability: only achievable when the
            # failure probability is exactly zero, i.e. lambda0 == 0.
            # repro: allow[REP006] -- lambda0 is an assigned model
            # parameter, never computed; exact zero is the sentinel
            if self.lambda0 == 0.0:
                return self.fmin
            return float(self.frel)

        def excess(f: float) -> float:
            p = self.failure_probability(weight, f)
            return p * p - budget

        lo, hi = self.fmin, float(self.frel)
        if excess(lo) <= tol:
            return lo
        if excess(hi) > tol:
            # Should not happen (p(frel)^2 <= p(frel) = budget), but guard
            # against degenerate parameters.
            return hi
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if excess(mid) <= 0.0:
                hi = mid
            else:
                lo = mid
            if hi - lo <= 1e-14 * max(1.0, hi):
                break
        return hi

    def min_single_execution_speed(self, weight: ArrayLike) -> float:
        """Smallest speed meeting the constraint with a single execution.

        Equals ``frel`` for every positive weight because reliability is
        increasing in speed and the threshold is defined at ``frel``.
        """
        if np.asarray(weight, dtype=float).size and np.all(np.asarray(weight) == 0):
            return self.fmin
        return float(self.frel)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReliabilityModel(fmin={self.fmin}, fmax={self.fmax}, "
            f"lambda0={self.lambda0}, d={self.sensitivity}, frel={self.frel})"
        )
