"""Schedule representation: speed and re-execution decisions for every task.

Given a task graph, a mapping and a platform, a *schedule* in the sense of
the paper consists of, for every task:

* the number of executions (one, or two when the task is re-executed), and
* the speed profile of each execution -- a single constant speed under the
  CONTINUOUS / DISCRETE / INCREMENTAL models, or a sequence of
  ``(speed, duration)`` intervals under VDD-HOPPING.

From those decisions everything else is derived deterministically:

* the worst-case duration of a task is the total time of *all* its
  executions (the deadline must hold even when every first attempt fails);
* start/finish times follow from longest paths in the augmented graph
  (precedence edges plus same-processor ordering edges);
* the energy charges every execution (worst-case accounting, Section II.c);
* reliability of an execution with intervals ``(f_j, t_j)`` uses the
  exposure-weighted fault probability ``sum_j lambda(f_j) * t_j``, which
  reduces to the paper's ``lambda(f) * w/f`` for a constant speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping as TMapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..dag.taskgraph import TaskGraph, TaskId
from .reliability import ReliabilityModel

if TYPE_CHECKING:  # imported only for type checking to avoid a package cycle
    from ..platform.mapping import Mapping
    from ..platform.platform import Platform

__all__ = ["Execution", "TaskDecision", "Schedule", "ScheduleViolation"]

_WORK_TOL = 1e-6
_TIME_TOL = 1e-7


@dataclass(frozen=True)
class Execution:
    """One execution (attempt) of a task: a sequence of constant-speed intervals."""

    intervals: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.intervals:
            raise ValueError("an execution needs at least one interval")
        for speed, duration in self.intervals:
            if speed <= 0:
                raise ValueError(f"interval speed must be positive, got {speed}")
            if duration < 0:
                raise ValueError(f"interval duration must be non-negative, got {duration}")

    # ------------------------------------------------------------------
    @classmethod
    def at_speed(cls, weight: float, speed: float) -> "Execution":
        """Single constant-speed execution of ``weight`` units of work."""
        if speed <= 0:
            raise ValueError("speed must be positive")
        if weight < 0:
            raise ValueError("weight must be non-negative")
        duration = weight / speed if weight > 0 else 0.0
        return cls(intervals=((float(speed), float(duration)),))

    @classmethod
    def from_intervals(cls, intervals: Iterable[tuple[float, float]]) -> "Execution":
        return cls(intervals=tuple((float(f), float(t)) for f, t in intervals))

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        return sum(t for _, t in self.intervals)

    @property
    def work(self) -> float:
        return sum(f * t for f, t in self.intervals)

    @property
    def is_constant_speed(self) -> bool:
        return len(self.intervals) == 1

    @property
    def speeds(self) -> tuple[float, ...]:
        return tuple(f for f, _ in self.intervals)

    def mean_speed(self) -> float:
        """Work divided by duration."""
        d = self.duration
        return self.work / d if d > 0 else 0.0

    def energy(self, exponent: float = 3.0) -> float:
        """Dynamic energy of this execution: ``sum f_j^alpha * t_j``."""
        return sum(f ** exponent * t for f, t in self.intervals)

    def failure_probability(self, model: ReliabilityModel) -> float:
        """Exposure-weighted transient-fault probability of this execution."""
        p = sum(float(model.fault_rate(f)) * t for f, t in self.intervals)
        return min(max(p, 0.0), 1.0)


@dataclass(frozen=True)
class TaskDecision:
    """All executions scheduled for one task (one, or two with re-execution)."""

    task_id: TaskId
    executions: tuple[Execution, ...]

    def __post_init__(self) -> None:
        if not (1 <= len(self.executions) <= 2):
            raise ValueError(
                "the paper's re-execution model allows one or two executions per task"
            )

    # ------------------------------------------------------------------
    @classmethod
    def single(cls, task_id: TaskId, weight: float, speed: float) -> "TaskDecision":
        return cls(task_id, (Execution.at_speed(weight, speed),))

    @classmethod
    def reexecuted(cls, task_id: TaskId, weight: float, speed_first: float,
                   speed_second: float) -> "TaskDecision":
        return cls(
            task_id,
            (Execution.at_speed(weight, speed_first),
             Execution.at_speed(weight, speed_second)),
        )

    # ------------------------------------------------------------------
    @property
    def is_reexecuted(self) -> bool:
        return len(self.executions) == 2

    @property
    def worst_case_duration(self) -> float:
        """Total time if every execution has to run (deadline accounting)."""
        return sum(e.duration for e in self.executions)

    def energy(self, exponent: float = 3.0) -> float:
        return sum(e.energy(exponent) for e in self.executions)

    def reliability(self, model: ReliabilityModel) -> float:
        """Probability that at least one execution succeeds."""
        failure = 1.0
        for e in self.executions:
            failure *= e.failure_probability(model)
        return 1.0 - failure

    def speeds(self) -> tuple[float, ...]:
        """All constant speeds appearing in the decision (flat)."""
        return tuple(f for e in self.executions for f in e.speeds)


@dataclass(frozen=True)
class ScheduleViolation:
    """One feasibility violation found by :meth:`Schedule.violations`."""

    kind: str
    task_id: TaskId | None
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        prefix = f"[{self.kind}]"
        if self.task_id is not None:
            prefix += f" task {self.task_id!r}:"
        return f"{prefix} {self.message}"


class Schedule:
    """A complete set of per-task decisions for a mapped task graph.

    Schedules are treated as immutable once constructed (decisions are
    frozen dataclasses and solvers always build a new ``Schedule`` instead
    of editing one in place), so the derived timing and energy quantities --
    per-task durations, start/finish times, makespan, worst-case energy --
    are memoised on first use rather than re-walking the DAG on every call.
    """

    def __init__(self, mapping: Mapping, platform: Platform,
                 decisions: TMapping[TaskId, TaskDecision]) -> None:
        self.mapping = mapping
        self.platform = platform
        self.graph: TaskGraph = mapping.graph
        self._derived_cache: dict = {}
        self.decisions: dict[TaskId, TaskDecision] = dict(decisions)
        missing = set(self.graph.tasks()) - set(self.decisions)
        if missing:
            raise ValueError(
                f"schedule is missing decisions for tasks: {sorted(map(str, missing))}"
            )
        extra = set(self.decisions) - set(self.graph.tasks())
        if extra:
            raise ValueError(
                f"schedule has decisions for unknown tasks: {sorted(map(str, extra))}"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_speeds(cls, mapping: Mapping, platform: Platform,
                    speeds: TMapping[TaskId, float]) -> "Schedule":
        """Single execution per task at the given constant speeds."""
        graph = mapping.graph
        decisions = {
            t: TaskDecision.single(t, graph.weight(t), speeds[t]) for t in graph.tasks()
        }
        return cls(mapping, platform, decisions)

    @classmethod
    def uniform_speed(cls, mapping: Mapping, platform: Platform, speed: float) -> "Schedule":
        """Every task once at the same speed (e.g. the no-DVFS baseline at fmax)."""
        return cls.from_speeds(
            mapping, platform, {t: speed for t in mapping.graph.tasks()}
        )

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def task_duration(self, task_id: TaskId) -> float:
        return self.decisions[task_id].worst_case_duration

    def durations(self) -> dict[TaskId, float]:
        """Worst-case duration of every task (memoised; returns a copy)."""
        cached = self._derived_cache.get("durations")
        if cached is None:
            cached = {t: self.task_duration(t) for t in self.graph.tasks()}
            self._derived_cache["durations"] = cached
        return dict(cached)

    def task_durations(self) -> dict[TaskId, float]:
        """Alias of :meth:`durations` (worst-case duration per task)."""
        return self.durations()

    def start_finish_times(self) -> tuple[dict[TaskId, float], dict[TaskId, float]]:
        """Earliest start/finish times respecting precedence and processor order."""
        cached = self._derived_cache.get("start_finish")
        if cached is None:
            augmented = self.mapping.augmented_graph()
            durations = self.durations()
            start: dict[TaskId, float] = {}
            finish: dict[TaskId, float] = {}
            for t in augmented.topological_order():
                s = max((finish[p] for p in augmented.predecessors(t)), default=0.0)
                start[t] = s
                finish[t] = s + durations[t]
            cached = (start, finish)
            self._derived_cache["start_finish"] = cached
        return dict(cached[0]), dict(cached[1])

    def makespan(self) -> float:
        """Worst-case total execution time of the schedule (memoised)."""
        cached = self._derived_cache.get("makespan")
        if cached is None:
            _, finish = self.start_finish_times()
            cached = max(finish.values(), default=0.0)
            self._derived_cache["makespan"] = cached
        return cached

    # ------------------------------------------------------------------
    # energy and reliability
    # ------------------------------------------------------------------
    def energy(self) -> float:
        """Total worst-case dynamic energy (all executions charged; memoised)."""
        cached = self._derived_cache.get("energy")
        if cached is None:
            alpha = self.platform.energy_model.exponent
            cached = float(sum(d.energy(alpha) for d in self.decisions.values()))
            self._derived_cache["energy"] = cached
        return cached

    def energy_with_static(self) -> float:
        """Dynamic energy plus the static part over the makespan."""
        return self.energy() + self.platform.energy_model.static_energy(
            self.platform.num_processors, self.makespan()
        )

    def task_reliability(self, task_id: TaskId,
                         model: ReliabilityModel | None = None) -> float:
        model = model or self.platform.reliability()
        return self.decisions[task_id].reliability(model)

    def reliabilities(self, model: ReliabilityModel | None = None) -> dict[TaskId, float]:
        model = model or self.platform.reliability()
        return {t: self.decisions[t].reliability(model) for t in self.graph.tasks()}

    def num_reexecuted(self) -> int:
        return sum(1 for d in self.decisions.values() if d.is_reexecuted)

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def violations(self, deadline: float | None = None, *,
                   check_reliability: bool = False,
                   reliability_model: ReliabilityModel | None = None,
                   speed_tol: float = 1e-6,
                   deadline_tol: float = 1e-6,
                   reliability_tol: float = 1e-12) -> list[ScheduleViolation]:
        """All feasibility violations of this schedule.

        Checks, in order: work conservation of every execution, speed
        admissibility against the platform's speed model (including the
        intra-task switching restriction), the deadline, and optionally the
        per-task reliability thresholds.
        """
        out: list[ScheduleViolation] = []
        speed_model = self.platform.speed_model
        for t, decision in self.decisions.items():
            w = self.graph.weight(t)
            for k, execution in enumerate(decision.executions):
                if abs(execution.work - w) > _WORK_TOL * max(1.0, w):
                    out.append(ScheduleViolation(
                        "work", t,
                        f"execution {k} performs {execution.work:.6g} units of work, "
                        f"task weight is {w:.6g}",
                    ))
                if len(execution.intervals) > 1 and not speed_model.allows_intra_task_switching:
                    out.append(ScheduleViolation(
                        "switching", t,
                        "speed changes during a task are not allowed by this speed model",
                    ))
                for speed, _ in execution.intervals:
                    if not speed_model.is_admissible(speed, tol=speed_tol):
                        out.append(ScheduleViolation(
                            "speed", t,
                            f"speed {speed:.6g} is not admissible for {speed_model!r}",
                        ))
        if deadline is not None:
            ms = self.makespan()
            if ms > deadline * (1.0 + deadline_tol) + deadline_tol:
                out.append(ScheduleViolation(
                    "deadline", None,
                    f"makespan {ms:.6g} exceeds deadline {deadline:.6g}",
                ))
        if check_reliability:
            model = reliability_model or self.platform.reliability()
            for t in self.graph.tasks():
                threshold = model.threshold(self.graph.weight(t))
                achieved = self.task_reliability(t, model)
                if achieved + reliability_tol < threshold:
                    out.append(ScheduleViolation(
                        "reliability", t,
                        f"reliability {achieved:.12g} below threshold {threshold:.12g}",
                    ))
        return out

    def is_feasible(self, deadline: float | None = None, *,
                    check_reliability: bool = False,
                    reliability_model: ReliabilityModel | None = None,
                    **tols: float) -> bool:
        return not self.violations(
            deadline, check_reliability=check_reliability,
            reliability_model=reliability_model, **tols,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def speed_assignment(self) -> dict[TaskId, tuple[float, ...]]:
        """Flat view: task -> all constant speeds used by its executions."""
        return {t: d.speeds() for t, d in self.decisions.items()}

    def summary(self, deadline: float | None = None) -> dict[str, float]:
        """Headline metrics of the schedule (used by the reporting layer)."""
        result = {
            "energy": self.energy(),
            "makespan": self.makespan(),
            "num_tasks": float(self.graph.num_tasks),
            "num_reexecuted": float(self.num_reexecuted()),
        }
        if deadline is not None:
            result["deadline"] = float(deadline)
            result["deadline_slack"] = float(deadline - result["makespan"])
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(n={self.graph.num_tasks}, E={self.energy():.6g}, "
            f"makespan={self.makespan():.6g}, reexec={self.num_reexecuted()})"
        )
