"""JSON (de)serialisation of BI-CRIT / TRI-CRIT problem instances.

Mirrors the conventions of :mod:`repro.dag.io` (format-versioned dicts,
``save``/``load`` JSON helpers): a problem file bundles the task graph, the
ordered task-to-processor mapping, the platform (speed model, energy model,
reliability model) and the deadline, so a campaign can reference a concrete
problem-instance file instead of regenerating instances from generator
parameters.  The solver-ablation experiment (E13) accepts such files via its
``problem_files`` parameter, and ``python -m repro solvers --problem FILE``
reports which registry solvers admit the stored instance.

As in :mod:`repro.dag.io`, task identifiers are stringified on write, so a
round trip canonicalises ids to strings (weights, edges, mapping order and
every model parameter are preserved exactly).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..dag.io import taskgraph_from_dict, taskgraph_to_dict
from .energy import EnergyModel
from .problems import BiCritProblem, TriCritProblem
from .reliability import ReliabilityModel
from .speeds import (
    ContinuousSpeeds,
    DiscreteSpeeds,
    IncrementalSpeeds,
    SpeedModel,
    VddHoppingSpeeds,
)

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "save_problem_json",
    "load_problem_json",
]

_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# model pieces
# ----------------------------------------------------------------------
def _speed_model_to_dict(model: SpeedModel) -> dict[str, Any]:
    if isinstance(model, IncrementalSpeeds):
        return {"kind": "incremental", "fmin": model.fmin,
                "fmax": model.physical_fmax, "delta": model.delta}
    if isinstance(model, VddHoppingSpeeds):
        return {"kind": "vdd", "speeds": list(model.speeds)}
    if isinstance(model, DiscreteSpeeds):
        return {"kind": "discrete", "speeds": list(model.speeds)}
    if isinstance(model, ContinuousSpeeds):
        return {"kind": "continuous", "fmin": model.fmin, "fmax": model.fmax}
    raise TypeError(f"cannot serialise speed model {type(model).__name__}")


def _speed_model_from_dict(data: dict[str, Any]) -> SpeedModel:
    kind = data.get("kind")
    if kind == "continuous":
        return ContinuousSpeeds(float(data["fmin"]), float(data["fmax"]))
    if kind == "discrete":
        return DiscreteSpeeds([float(s) for s in data["speeds"]])
    if kind == "vdd":
        return VddHoppingSpeeds([float(s) for s in data["speeds"]])
    if kind == "incremental":
        return IncrementalSpeeds(float(data["fmin"]), float(data["fmax"]),
                                 float(data["delta"]))
    raise ValueError(f"unknown speed model kind {kind!r}")


def _reliability_to_dict(model: ReliabilityModel | None) -> dict[str, Any] | None:
    if model is None:
        return None
    return {"fmin": model.fmin, "fmax": model.fmax, "lambda0": model.lambda0,
            "sensitivity": model.sensitivity, "frel": model.frel}


def _reliability_from_dict(data: dict[str, Any] | None) -> ReliabilityModel | None:
    if data is None:
        return None
    return ReliabilityModel(fmin=float(data["fmin"]), fmax=float(data["fmax"]),
                            lambda0=float(data["lambda0"]),
                            sensitivity=float(data["sensitivity"]),
                            frel=None if data.get("frel") is None else float(data["frel"]))


# ----------------------------------------------------------------------
# problems
# ----------------------------------------------------------------------
def problem_to_dict(problem: BiCritProblem) -> dict[str, Any]:
    """JSON-serialisable representation of a BI-CRIT / TRI-CRIT instance."""
    platform = problem.platform
    payload: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "kind": "tricrit" if isinstance(problem, TriCritProblem) else "bicrit",
        "deadline": float(problem.deadline),
        "graph": taskgraph_to_dict(problem.graph),
        "mapping": [[str(t) for t in tasks] for tasks in problem.mapping.as_lists()],
        "platform": {
            "num_processors": platform.num_processors,
            "speed_model": _speed_model_to_dict(platform.speed_model),
            "energy_model": {"exponent": platform.energy_model.exponent,
                             "static_power": platform.energy_model.static_power},
            "reliability_model": _reliability_to_dict(platform.reliability_model),
        },
    }
    if isinstance(problem, TriCritProblem):
        payload["reliability_model"] = _reliability_to_dict(problem.reliability_model)
    return payload


def problem_from_dict(data: dict[str, Any]) -> BiCritProblem:
    """Inverse of :func:`problem_to_dict` (task ids come back as strings)."""
    from ..platform.mapping import Mapping
    from ..platform.platform import Platform

    version = data.get("format_version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported problem format version {version}")
    kind = data.get("kind", "bicrit")
    if kind not in ("bicrit", "tricrit"):
        raise ValueError(f"unknown problem kind {kind!r}")

    graph = taskgraph_from_dict(data["graph"])
    mapping = Mapping(data["mapping"], graph)
    platform_data = data["platform"]
    platform = Platform(
        num_processors=int(platform_data["num_processors"]),
        speed_model=_speed_model_from_dict(platform_data["speed_model"]),
        energy_model=EnergyModel(
            exponent=float(platform_data["energy_model"]["exponent"]),
            static_power=float(platform_data["energy_model"]["static_power"]),
        ),
        reliability_model=_reliability_from_dict(platform_data.get("reliability_model")),
    )
    deadline = float(data["deadline"])
    if kind == "tricrit":
        return TriCritProblem(
            mapping=mapping, platform=platform, deadline=deadline,
            reliability_model=_reliability_from_dict(data.get("reliability_model")),
        )
    return BiCritProblem(mapping=mapping, platform=platform, deadline=deadline)


def save_problem_json(problem: BiCritProblem, path: str | Path) -> None:
    """Write a problem instance to a JSON file."""
    Path(path).write_text(
        # repro: allow[REP002] -- pretty human-readable file, not a cache key
        json.dumps(problem_to_dict(problem), indent=2, sort_keys=True))


def load_problem_json(path: str | Path) -> BiCritProblem:
    """Read a problem instance written by :func:`save_problem_json`."""
    return problem_from_dict(json.loads(Path(path).read_text()))
