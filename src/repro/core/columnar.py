"""Columnar struct-of-arrays problem batches: the zero-copy interchange tier.

Every earlier layer converted per instance: JSON wire payloads became frozen
request dataclasses, then per-instance :class:`~repro.core.problems.Problem`
objects, and only inside :mod:`repro.solvers.batch` did the data finally
reach NumPy arrays.  For a 10k-instance ``/v1/solve-batch`` the hot path was
therefore dominated by Python object materialisation and per-instance
canonical-JSON hashing, not by solving.

:class:`ProblemBatch` is the struct-of-arrays representation that replaces
that pipeline: one strict parsing pass over the wire payloads fills flat
NumPy columns (deadlines, speed/energy/reliability parameters, structure
flags) plus one ragged task-weight array addressed by offsets.  The batch
kernels read those columns directly; no ``Problem`` object exists for a row
unless something genuinely per-instance is needed.

The parser is *verify-or-fall-back*: a row is marked fast only when every
validation the object pipeline would perform (``problem_from_dict`` plus the
model constructors) has been replicated and passed, and the graph structure
has been positively verified as a chain or a fork in canonical (topological)
payload order.  Any doubt -- unknown speed models, non-canonical task order,
string-typed numbers, duplicate edges -- marks the row ``fallback``; such
rows are materialised through the legacy object path and produce exactly the
legacy behaviour (including its error messages).  Fast rows are grouped and
solved so that the resulting array programs are *bit-identical* to the ones
the object path would have run on the same batch.

Content hashing is vectorised the same way: rows sharing a payload skeleton
(same ids, structure, mapping, platform shape) share one canonical-JSON
template with float slots; per-row keys are a string join plus SHA-256, not
a ``json.dumps`` per instance.  The first row of every template is verified
byte-for-byte against the real :func:`repro.store.canonical.canonical_blob`,
so a template can never silently diverge from the scalar key path.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Mapping as TMapping, Sequence
from typing import Any

import numpy as np

from .problems import BiCritProblem
from .reliability import DEFAULT_LAMBDA0, DEFAULT_SENSITIVITY

__all__ = ["ProblemBatch", "problem_content_key",
           "KIND_BICRIT", "KIND_TRICRIT"]

#: Attribute memoizing the content hash on the (frozen) problem object,
#: mirroring how ``SolverContext.for_problem`` memoizes the context.
_KEY_ATTR = "_api_content_key"


def problem_content_key(problem: BiCritProblem) -> str:
    """Stable content hash of a problem instance (its JSON schema form).

    The hash is memoized on the problem object, so in-process consumers that
    resubmit the same instance (ablation grids, Pareto sweeps) pay the
    serialisation exactly once.  ``repro.api.engine`` re-exports this; it
    lives here so the columnar key templates and the scalar path share one
    definition without a core -> api import.
    """
    key = getattr(problem, _KEY_ATTR, None)
    if key is None:
        from ..store.canonical import canonical_blob
        from .problem_io import problem_to_dict

        key = hashlib.sha256(canonical_blob(problem_to_dict(problem))).hexdigest()
        object.__setattr__(problem, _KEY_ATTR, key)
    return key

KIND_BICRIT = 0
KIND_TRICRIT = 1

_NUMBER = (int, float)

#: Float columns of a parsed batch, in constructor order.
_FLOAT_COLUMNS = ("deadline", "total_weight", "fmin", "fmax", "alpha",
                  "static_power", "rel_fmin", "rel_fmax", "rel_lambda0",
                  "rel_sensitivity", "rel_frel")
_INT_COLUMNS = ("kind", "num_tasks", "num_positive", "mapping_processors",
                "platform_processors")
_BOOL_COLUMNS = ("is_chain", "is_fork", "single_processor",
                 "one_task_per_processor", "mapping_in_order", "fallback")


def _is_number(x: Any) -> bool:
    return type(x) in _NUMBER or (isinstance(x, _NUMBER)
                                  and not isinstance(x, bool))


def _finite(x: float) -> bool:
    return math.isfinite(x)


#: Chained-comparison bound: ``0.0 <= w < _INF`` is one bytecode test that
#: rejects inf and (via IEEE comparison semantics) NaN without a call.
_INF = math.inf


class _Row:
    """Mutable per-row scratch during parsing (fast rows only)."""

    __slots__ = ("kind", "deadline", "task_ids", "weights", "total",
                 "num_positive", "is_chain", "is_fork", "mapping_lists",
                 "mapping_in_order", "single_processor",
                 "one_task_per_processor", "mapping_processors",
                 "platform_processors", "fmin", "fmax", "alpha",
                 "static_power", "plat_rel", "prob_rel", "eff_rel")


def _parse_rel(data: Any) -> tuple[float, float, float, float, float] | None:
    """Validated ``(fmin, fmax, lambda0, sensitivity, frel)`` with ``frel``
    resolved the way :class:`ReliabilityModel` resolves it; ``None`` signals
    *give up* (caller falls back), not absence."""
    if not isinstance(data, TMapping):
        return None
    fmin = data.get("fmin")
    fmax = data.get("fmax")
    lambda0 = data.get("lambda0")
    sensitivity = data.get("sensitivity")
    if not (_is_number(fmin) and _is_number(fmax) and _is_number(lambda0)
            and _is_number(sensitivity)):
        return None
    fmin, fmax = float(fmin), float(fmax)
    lambda0, sensitivity = float(lambda0), float(sensitivity)
    if not (0.0 < fmin <= fmax and _finite(fmin) and _finite(fmax)):
        return None
    if not (_finite(lambda0) and _finite(sensitivity)
            and lambda0 >= 0.0 and sensitivity >= 0.0):
        return None
    frel = data.get("frel")
    if frel is None:
        frel = fmax
    elif _is_number(frel):
        frel = float(frel)
        if not (fmin <= frel <= fmax):
            return None
    else:
        return None
    return (fmin, fmax, lambda0, sensitivity, frel)


def _parse_row(payload: Any) -> _Row | None:
    """One strict verify-or-fall-back pass over a wire payload.

    Returns ``None`` (fall back to the object pipeline) unless *every*
    validation of ``problem_from_dict`` + the model constructors has been
    replicated and passed *and* the graph is a verified chain or fork whose
    payload task order is topological.
    """
    if not (type(payload) is dict or isinstance(payload, TMapping)):
        return None
    if payload.get("format_version", 1) != 1:
        return None
    kind = payload.get("kind", "bicrit")
    if kind not in ("bicrit", "tricrit"):
        return None
    deadline = payload.get("deadline")
    if type(deadline) is float:
        if not 0.0 < deadline < _INF:
            return None
    elif not (_is_number(deadline) and _finite(float(deadline))
              and float(deadline) > 0.0):
        return None

    graph = payload.get("graph")
    if not (type(graph) is dict or isinstance(graph, TMapping)) \
            or graph.get("format_version", 1) != 1:
        return None
    tasks = graph.get("tasks")
    edges = graph.get("edges")
    if not isinstance(tasks, list) or not isinstance(edges, list) or not tasks:
        return None
    n = len(tasks)
    ids: list[str] = []
    weights: list[float] = []
    total = 0.0
    num_positive = 0
    ids_append = ids.append
    weights_append = weights.append
    for entry in tasks:
        if not (type(entry) is dict or isinstance(entry, TMapping)):
            return None
        tid = entry.get("id")
        w = entry.get("weight")
        if type(tid) is not str:
            return None
        if type(w) is not float:
            if not _is_number(w):
                return None
            w = float(w)
        if not 0.0 <= w < _INF:
            return None
        ids_append(tid)
        weights_append(w)
        total += w
        if w > 0.0:
            num_positive += 1
    index = {tid: k for k, tid in enumerate(ids)}
    id_set = index.keys()
    if len(index) != n:
        return None

    # Structure verification doubles as the acyclicity / topological-order
    # proof: a chain must be exactly the consecutive pairs of the payload
    # order, a fork exactly source->child edges from the first payload
    # task.  ``n-1`` *distinct* edges that are each some consecutive pair
    # (resp. each source->other) necessarily cover all of them, so the
    # per-edge index test is equivalent to the full set comparison without
    # materialising the expected edge sets.
    n_edges = 0
    chain_ok = fork_ok = True
    seen: set[tuple[str, str]] = set()
    index_get = index.get
    for edge in edges:
        if not isinstance(edge, (list, tuple)) or len(edge) != 2:
            return None
        u, v = edge
        if type(u) is not str or type(v) is not str or u == v:
            return None
        ku = index_get(u)
        kv = index_get(v)
        if ku is None or kv is None:
            return None
        pair = (u, v)
        if pair in seen:
            return None
        seen.add(pair)
        n_edges += 1
        if kv != ku + 1:
            chain_ok = False
        if ku != 0:
            fork_ok = False
    if n_edges == 0 and n == 1:
        is_chain = is_fork = True
    elif n_edges != n - 1:
        return None
    else:
        is_chain = chain_ok
        is_fork = fork_ok
        if not (is_chain or is_fork):
            return None

    mapping = payload.get("mapping")
    if not isinstance(mapping, list):
        return None
    flat: list[str] = []
    one_per_proc = True
    for proc_tasks in mapping:
        if not isinstance(proc_tasks, list):
            return None
        if len(proc_tasks) > 1:
            one_per_proc = False
        for t in proc_tasks:
            if type(t) is not str:
                return None
            flat.append(t)
    if len(flat) != n or set(flat) != id_set:
        return None      # duplicates or uncovered tasks: let Mapping complain
    m = len(mapping)
    single_proc = m == 1 or all(len(proc_tasks) == 0 for proc_tasks in mapping[1:])
    mapping_in_order = flat == ids

    platform = payload.get("platform")
    if not (type(platform) is dict or isinstance(platform, TMapping)):
        return None
    procs = platform.get("num_processors")
    if type(procs) is not int or procs < 1 or m > procs:
        return None
    speed = platform.get("speed_model")
    if not (type(speed) is dict or isinstance(speed, TMapping)) \
            or speed.get("kind") != "continuous":
        return None
    fmin, fmax = speed.get("fmin"), speed.get("fmax")
    if type(fmin) is not float or type(fmax) is not float:
        if not (_is_number(fmin) and _is_number(fmax)):
            return None
        fmin, fmax = float(fmin), float(fmax)
    if not 0.0 < fmin <= fmax < _INF:
        return None
    energy = platform.get("energy_model")
    if not (type(energy) is dict or isinstance(energy, TMapping)):
        return None
    alpha, static = energy.get("exponent"), energy.get("static_power")
    if type(alpha) is not float or type(static) is not float:
        if not (_is_number(alpha) and _is_number(static)):
            return None
        alpha, static = float(alpha), float(static)
    if not (1.0 < alpha < _INF and 0.0 <= static < _INF):
        return None
    plat_rel_data = platform.get("reliability_model")
    if plat_rel_data is None:
        plat_rel = None
    else:
        plat_rel = _parse_rel(plat_rel_data)
        if plat_rel is None:
            return None
    prob_rel = None
    if kind == "tricrit":
        prob_rel_data = payload.get("reliability_model")
        if prob_rel_data is not None:
            prob_rel = _parse_rel(prob_rel_data)
            if prob_rel is None:
                return None

    row = _Row()
    row.kind = KIND_TRICRIT if kind == "tricrit" else KIND_BICRIT
    row.deadline = float(deadline)
    row.task_ids = ids
    row.weights = weights
    row.total = total
    row.num_positive = num_positive
    row.is_chain = is_chain
    row.is_fork = is_fork
    row.mapping_lists = mapping
    row.mapping_in_order = mapping_in_order
    row.single_processor = single_proc
    row.one_task_per_processor = one_per_proc
    row.mapping_processors = m
    row.platform_processors = procs
    row.fmin = fmin
    row.fmax = fmax
    row.alpha = alpha
    row.static_power = static
    row.plat_rel = plat_rel
    row.prob_rel = prob_rel
    # Effective reliability model, resolved the way Problem.reliability()
    # resolves it: instance model, else platform model, else the default
    # built from the platform speed bounds.
    row.eff_rel = (prob_rel or plat_rel
                   or (fmin, fmax, DEFAULT_LAMBDA0, DEFAULT_SENSITIVITY, fmax))
    return row


class ProblemBatch:
    """A batch of problem instances as parallel columns plus ragged weights.

    Construct with :meth:`from_wire` (payload dicts, never raises -- invalid
    rows are marked ``fallback``), :meth:`from_problems` (existing Problem
    objects, round-tripped through their canonical payload form) or
    :meth:`from_any` (mixed).  Fast rows carry everything the batch kernels
    and the key hasher need in columns; fallback rows retain only the
    payload and are materialised on demand via :meth:`problem`.
    """

    def __init__(self, payloads: list[Any], rows: list[_Row | None],
                 problems: list[BiCritProblem | None] | None = None) -> None:
        size = len(payloads)
        self.payloads = payloads
        self._problems: list[BiCritProblem | None] = (
            list(problems) if problems is not None else [None] * size)
        self.task_ids: list[list[str] | None] = [None] * size
        cols: dict[str, np.ndarray] = {}
        for name in _FLOAT_COLUMNS:
            cols[name] = np.zeros(size, dtype=float)
        for name in _INT_COLUMNS:
            cols[name] = np.zeros(size, dtype=np.int64)
        for name in _BOOL_COLUMNS:
            cols[name] = np.zeros(size, dtype=bool)
        offsets = np.zeros(size + 1, dtype=np.int64)
        flat_weights: list[float] = []
        for i, row in enumerate(rows):
            if row is None:
                cols["fallback"][i] = True
                offsets[i + 1] = offsets[i]
                continue
            self.task_ids[i] = row.task_ids
            cols["kind"][i] = row.kind
            cols["deadline"][i] = row.deadline
            cols["total_weight"][i] = row.total
            cols["fmin"][i] = row.fmin
            cols["fmax"][i] = row.fmax
            cols["alpha"][i] = row.alpha
            cols["static_power"][i] = row.static_power
            (cols["rel_fmin"][i], cols["rel_fmax"][i], cols["rel_lambda0"][i],
             cols["rel_sensitivity"][i], cols["rel_frel"][i]) = row.eff_rel
            cols["num_tasks"][i] = len(row.task_ids)
            cols["num_positive"][i] = row.num_positive
            cols["mapping_processors"][i] = row.mapping_processors
            cols["platform_processors"][i] = row.platform_processors
            cols["is_chain"][i] = row.is_chain
            cols["is_fork"][i] = row.is_fork
            cols["single_processor"][i] = row.single_processor
            cols["one_task_per_processor"][i] = row.one_task_per_processor
            cols["mapping_in_order"][i] = row.mapping_in_order
            flat_weights.extend(row.weights)
            offsets[i + 1] = len(flat_weights)
        self.columns = cols
        self.offsets = offsets
        self.weights = np.array(flat_weights, dtype=float)
        self._rows = rows               # kept for template construction
        self._templates: dict[tuple, Any] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_wire(cls, payloads: Sequence[Any]) -> ProblemBatch:
        """Parse wire payload dicts into columns; never raises -- rows the
        strict parser cannot certify are marked ``fallback``."""
        payloads = list(payloads)
        return cls(payloads, [_parse_row(p) for p in payloads])

    @classmethod
    def from_problems(cls, problems: Sequence[BiCritProblem]) -> ProblemBatch:
        """Columns from existing ``Problem`` objects (backward-compatible
        entry point): each is serialised to its canonical payload form, so
        fast-row classification and content keys match the wire path, while
        :meth:`problem` returns the original objects."""
        from .problem_io import problem_to_dict

        problems = list(problems)
        payloads = [problem_to_dict(p) for p in problems]
        return cls(payloads, [_parse_row(p) for p in payloads],
                   problems=problems)

    @classmethod
    def from_any(cls, items: Sequence[Any]) -> ProblemBatch:
        """Mixed payload-dicts / Problem-objects sequence (or an existing
        batch, returned as-is)."""
        if isinstance(items, ProblemBatch):
            return items
        from .problem_io import problem_to_dict

        payloads: list[Any] = []
        problems: list[BiCritProblem | None] = []
        for item in items:
            if isinstance(item, BiCritProblem):
                payloads.append(problem_to_dict(item))
                problems.append(item)
            else:
                payloads.append(item)
                problems.append(None)
        return cls(payloads, [_parse_row(p) for p in payloads],
                   problems=problems)

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.payloads)

    @property
    def fallback(self) -> np.ndarray:
        return self.columns["fallback"]

    def fallback_indices(self) -> list[int]:
        return [int(i) for i in np.flatnonzero(self.columns["fallback"])]

    def row_weights(self, i: int) -> np.ndarray:
        return self.weights[self.offsets[i]:self.offsets[i + 1]]

    def set_problem(self, i: int, problem: BiCritProblem) -> None:
        """Attach an externally materialised problem (the engine does this
        for fallback rows so interning is shared with the problem pool)."""
        self._problems[i] = problem

    def problem(self, i: int) -> BiCritProblem:
        """Materialise (and memoise) the ``Problem`` object for one row.

        The zero-copy hot path never calls this for fast rows; it exists for
        fallback rows, schedule building and compatibility consumers.
        """
        problem = self._problems[i]
        if problem is None:
            from .problem_io import problem_from_dict

            problem = problem_from_dict(dict(self.payloads[i]))
            self._problems[i] = problem
        return problem

    def take(self, indices: Sequence[int]) -> ProblemBatch:
        """Sub-batch of the given rows (used to peel cache hits by mask)."""
        indices = [int(i) for i in indices]
        sub = ProblemBatch.__new__(ProblemBatch)
        sub.payloads = [self.payloads[i] for i in indices]
        sub._problems = [self._problems[i] for i in indices]
        sub.task_ids = [self.task_ids[i] for i in indices]
        sub.columns = {name: col[indices] if indices else col[:0]
                       for name, col in self.columns.items()}
        counts = self.offsets[1:] - self.offsets[:-1]
        sub_counts = counts[indices] if indices else counts[:0]
        offsets = np.zeros(len(indices) + 1, dtype=np.int64)
        np.cumsum(sub_counts, out=offsets[1:])
        sub.offsets = offsets
        sub.weights = (np.concatenate(
            [self.row_weights(i) for i in indices])
            if indices else self.weights[:0])
        sub._rows = [self._rows[i] for i in indices]
        sub._templates = {}
        return sub

    # ------------------------------------------------------------------
    # vectorised content keys
    # ------------------------------------------------------------------
    def _canonical_order(self, row: _Row) -> tuple[list[int], list[tuple[str, str]]]:
        """Task permutation (payload -> canonical topological order) and the
        canonical sorted edge list, as ``problem_to_dict`` would write them."""
        ids = row.task_ids
        n = len(ids)
        if n == 1:
            return [0], []
        if row.is_chain:
            perm = list(range(n))
            edges = sorted((ids[k], ids[k + 1]) for k in range(n - 1))
        else:
            # Lexicographic topological order of a fork: source first, then
            # the children sorted by id.
            order = [ids[0]] + sorted(ids[1:])
            pos = {t: k for k, t in enumerate(ids)}
            perm = [pos[t] for t in order]
            edges = sorted((ids[0], c) for c in ids[1:])
        return perm, edges

    def _template_for(self, row: _Row) -> Any:
        """The (memoised) canonical-JSON template for a row's skeleton, or
        ``False`` when no trustworthy template exists for it."""
        if len(row.mapping_lists) == 1 and row.mapping_in_order:
            # mapping == [task_ids]: fully determined by the ids tuple, so
            # skip the nested-tuple build on the (hot) standard layout.
            mapping_sig: Any = 0
        else:
            mapping_sig = tuple(tuple(p) for p in row.mapping_lists)
        signature = (row.kind, tuple(row.task_ids), row.is_chain, row.is_fork,
                     mapping_sig,
                     row.platform_processors, row.plat_rel is None,
                     row.prob_rel is None)
        template = self._templates.get(signature)
        if template is None:
            template = self._build_template(row)
            self._templates[signature] = template
        return template

    def _build_template(self, row: _Row) -> Any:
        from ..store.canonical import canonical_blob  # deferred: no core -> store cycle

        if any("\x00" in t for t in row.task_ids):
            return False
        perm, edges = self._canonical_order(row)
        kind = "tricrit" if row.kind == KIND_TRICRIT else "bicrit"

        slots: list[str] = []

        def slot() -> str:
            token = f"\x00{len(slots)}\x00"
            slots.append(token)
            return token

        rel_skeleton = (lambda present: (
            {"fmin": slot(), "fmax": slot(), "lambda0": slot(),
             "sensitivity": slot(), "frel": slot()} if present else None))
        skeleton = {
            "format_version": 1,
            "kind": kind,
            "deadline": slot(),
            "graph": {
                "format_version": 1,
                "tasks": [{"id": row.task_ids[k], "weight": slot()}
                          for k in perm],
                "edges": [[u, v] for u, v in edges],
            },
            "mapping": [list(p) for p in row.mapping_lists],
            "platform": {
                "num_processors": row.platform_processors,
                "speed_model": {"kind": "continuous",
                                "fmin": slot(), "fmax": slot()},
                "energy_model": {"exponent": slot(), "static_power": slot()},
                "reliability_model": rel_skeleton(row.plat_rel is not None),
            },
        }
        if row.kind == KIND_TRICRIT:
            skeleton["reliability_model"] = rel_skeleton(row.prob_rel is not None)
        blob = canonical_blob(skeleton).decode("utf-8")
        # json renders the NUL sentinels as backslash-u escapes, which
        # can never collide with the (NUL-free) id strings of the skeleton.
        rendered = [f'"\\u0000{k}\\u0000"' for k in range(len(slots))]
        if any(blob.count(tok) != 1 for tok in rendered):
            return False
        positions = sorted((blob.index(tok), k, tok)
                           for k, tok in enumerate(rendered))
        parts: list[str] = []
        order: list[int] = []
        prev = 0
        for pos, k, tok in positions:
            parts.append(blob[prev:pos])
            order.append(k)
            prev = pos + len(tok)
        parts.append(blob[prev:])
        template = (parts, order, perm, perm == list(range(len(perm))))

        # Verify the template byte-for-byte against the real canonical blob
        # of this row before trusting it for the whole signature class.
        from ..store.canonical import canonical_blob

        values = self._slot_values(row, perm)
        fast = self._render(template, values)
        if fast.encode("utf-8") != canonical_blob(self._canonical_payload(row)):
            return False
        return template

    @staticmethod
    def _slot_values(row: _Row, perm: list[int],
                     identity: bool = False) -> list[float]:
        values = [row.deadline]
        if identity:
            values += row.weights
        else:
            values.extend(row.weights[k] for k in perm)
        values.extend((row.fmin, row.fmax, row.alpha, row.static_power))
        if row.plat_rel is not None:
            values.extend(row.plat_rel)
        if row.kind == KIND_TRICRIT and row.prob_rel is not None:
            values.extend(row.prob_rel)
        return values

    @staticmethod
    def _render(template: Any, values: list[float]) -> str:
        parts, order = template[0], template[1]
        # Slot values are parse-coerced floats already; repr of a Python
        # float is the shortest round-trip form json.dumps would emit.
        out = [parts[0]]
        for k, part in zip(order, parts[1:]):
            out.append(repr(values[k]))
            out.append(part)
        return "".join(out)

    def _canonical_payload(self, row: _Row) -> dict[str, Any]:
        """What ``problem_to_dict(problem_from_dict(payload))`` would emit
        for a verified fast row, built from columns alone."""
        perm, edges = self._canonical_order(row)
        kind = "tricrit" if row.kind == KIND_TRICRIT else "bicrit"
        rel_dict = (lambda rel: None if rel is None else
                    {"fmin": rel[0], "fmax": rel[1], "lambda0": rel[2],
                     "sensitivity": rel[3], "frel": rel[4]})
        payload: dict[str, Any] = {
            "format_version": 1,
            "kind": kind,
            "deadline": row.deadline,
            "graph": {
                "format_version": 1,
                "tasks": [{"id": row.task_ids[k], "weight": row.weights[k]}
                          for k in perm],
                "edges": [[u, v] for u, v in edges],
            },
            "mapping": [list(p) for p in row.mapping_lists],
            "platform": {
                "num_processors": row.platform_processors,
                "speed_model": {"kind": "continuous",
                                "fmin": row.fmin, "fmax": row.fmax},
                "energy_model": {"exponent": row.alpha,
                                 "static_power": row.static_power},
                "reliability_model": rel_dict(row.plat_rel),
            },
        }
        if row.kind == KIND_TRICRIT:
            payload["reliability_model"] = rel_dict(row.prob_rel)
        return payload

    def content_keys(self) -> list[str]:
        """One canonical content hash per row, equal to
        :func:`repro.api.engine.problem_content_key` of the materialised
        problem -- but computed from columns via shared templates for fast
        rows (no ``Problem``, no per-row ``json.dumps``)."""
        from ..store.canonical import canonical_blob

        sha256 = hashlib.sha256
        keys: list[str] = []
        for i, row in enumerate(self._rows):
            if row is None:
                keys.append(problem_content_key(self.problem(i)))
                continue
            template = self._template_for(row)
            if template is False:
                keys.append(sha256(
                    canonical_blob(self._canonical_payload(row))).hexdigest())
                continue
            values = self._slot_values(row, template[2], template[3])
            keys.append(sha256(
                self._render(template, values).encode("utf-8")).hexdigest())
        return keys
