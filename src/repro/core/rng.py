"""Seed and random-number-generator plumbing shared across the library.

Every stochastic entry point of the reproduction (the ``run_*`` experiment
drivers, the Monte-Carlo simulators, the campaign sweep expander) accepts
``seed: int | numpy.random.Generator | None``.  This module centralises the
two conversions that policy needs:

* :func:`resolve_seed` collapses that union into a plain ``int`` so that
  experiment drivers which derive per-instance seeds arithmetically
  (``seed + i``) keep working and stay reproducible;
* :func:`spawn_child_seeds` derives independent, deterministic child seeds
  from a base seed via :class:`numpy.random.SeedSequence` -- the campaign
  sweep expander uses it to give every expanded scenario instance its own
  stream without correlated draws;
* :func:`resolve_rng` is the one place the library constructs
  :class:`numpy.random.Generator` objects, so that the REP003
  seed-discipline lint can verify no other module calls
  ``np.random.default_rng`` directly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["resolve_rng", "resolve_seed", "spawn_child_seeds"]

#: Upper bound (exclusive) for integer seeds drawn from a Generator; keeps
#: resolved seeds well inside the exactly-representable integer range of the
#: JSON/float round trips performed by the campaign result cache.
_SEED_BOUND = 2**31


def resolve_seed(seed: "int | np.random.Generator | None", default: int) -> int:
    """Collapse the ``int | Generator | None`` seed union into a plain int.

    * ``None`` returns ``default`` (the entry point's documented seed);
    * an ``int`` (or numpy integer) is returned as-is;
    * a :class:`numpy.random.Generator` deterministically advances the
      generator by one draw and returns that integer, so passing the same
      generator state always yields the same resolved seed.
    """
    if seed is None:
        return int(default)
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, _SEED_BOUND))
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    raise TypeError(f"seed must be int, numpy Generator or None, got {type(seed)!r}")


def resolve_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Resolve the seed union into a :class:`numpy.random.Generator`.

    An existing :class:`~numpy.random.Generator` passes through unchanged
    (so callers can thread one stream through a call chain); an ``int`` or
    ``None`` constructs a fresh generator.  This is the library's single
    generator-construction site -- everything else routes through it.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_child_seeds(seed: int, count: int) -> list[int]:
    """Derive ``count`` independent, deterministic child seeds from ``seed``.

    Built on :class:`numpy.random.SeedSequence` spawning, so the children are
    statistically independent of each other and of the parent stream, and the
    mapping ``(seed, count) -> children`` is stable across processes and
    platforms -- the property the parallel campaign runner relies on for
    ``--jobs 1`` and ``--jobs N`` to produce identical results.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint32)[0]) % _SEED_BOUND
            for child in children]
