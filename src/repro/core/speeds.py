"""Speed (DVFS) models from Section II of the paper.

The paper distinguishes four speed models:

* :class:`ContinuousSpeeds` -- a processor may run at any real speed in
  ``[fmin, fmax]`` and may change speed at any time.  Used for the
  theoretical results of Section III.
* :class:`DiscreteSpeeds` -- a finite, arbitrarily distributed set of modes
  ``f_1 < ... < f_m``; the speed is fixed for the whole duration of a task
  but may change between tasks.  This is the classical DVFS model.
* :class:`VddHoppingSpeeds` -- same finite set of modes, but the processor
  may switch modes *during* a task; the energy of the task is the sum of the
  energies of the constant-speed intervals.
* :class:`IncrementalSpeeds` -- modes are regularly spaced,
  ``f = fmin + i * delta`` for integer ``i``; the modern counterpart of a
  potentiometer knob, and the model for which the paper gives an
  approximation algorithm.

All classes share the :class:`SpeedModel` interface so that the scheduling
algorithms can be written generically.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "SpeedModel",
    "ContinuousSpeeds",
    "DiscreteSpeeds",
    "VddHoppingSpeeds",
    "IncrementalSpeeds",
    "INTEL_XSCALE_SPEEDS",
]

#: Normalised speed set of the Intel XScale processor family (reference [9]
#: of the paper).  Widely used in the DVFS literature as a realistic
#: DISCRETE speed set.
INTEL_XSCALE_SPEEDS: tuple[float, ...] = (0.15, 0.4, 0.6, 0.8, 1.0)

_EPS = 1e-9


def _validate_bounds(fmin: float, fmax: float) -> None:
    if not (fmin > 0.0):
        raise ValueError(f"fmin must be positive, got {fmin}")
    if not (fmax >= fmin):
        raise ValueError(f"fmax ({fmax}) must be >= fmin ({fmin})")
    if not (math.isfinite(fmin) and math.isfinite(fmax)):
        raise ValueError("speed bounds must be finite")


class SpeedModel(ABC):
    """Common interface of all speed models.

    A speed model answers three questions:

    * what speeds are admissible (:meth:`is_admissible`),
    * what is the closest admissible speed at least as fast as a requested
      speed (:meth:`round_up`) or at most as fast (:meth:`round_down`),
    * whether the speed of a processor may change in the middle of a task
      (:attr:`allows_intra_task_switching`).
    """

    #: True when a processor may change its speed during the execution of a
    #: single task (CONTINUOUS and VDD-HOPPING models).
    allows_intra_task_switching: bool = False

    #: True when the set of admissible speeds is finite.
    is_discrete: bool = False

    def __init__(self, fmin: float, fmax: float) -> None:
        _validate_bounds(fmin, fmax)
        self.fmin = float(fmin)
        self.fmax = float(fmax)

    # ------------------------------------------------------------------
    # admissibility
    # ------------------------------------------------------------------
    @abstractmethod
    def is_admissible(self, speed: float, *, tol: float = 1e-7) -> bool:
        """Return ``True`` when ``speed`` is an admissible operating point."""

    @abstractmethod
    def round_up(self, speed: float) -> float:
        """Smallest admissible speed ``>= speed``.

        Raises :class:`ValueError` when ``speed`` exceeds ``fmax`` beyond
        tolerance (the request cannot be satisfied).
        """

    @abstractmethod
    def round_down(self, speed: float) -> float:
        """Largest admissible speed ``<= speed``.

        Raises :class:`ValueError` when ``speed`` is below ``fmin`` beyond
        tolerance.
        """

    def clamp(self, speed: float) -> float:
        """Project ``speed`` onto ``[fmin, fmax]`` (before any rounding)."""
        return min(max(speed, self.fmin), self.fmax)

    # ------------------------------------------------------------------
    # helpers shared by the algorithms
    # ------------------------------------------------------------------
    def bracketing_speeds(self, speed: float) -> tuple[float, float]:
        """Return admissible speeds ``(lo, hi)`` with ``lo <= speed <= hi``.

        For continuous models both are ``speed`` itself (after clamping).
        For discrete models these are the two consecutive modes surrounding
        ``speed`` -- the pair used by the VDD-HOPPING rounding adapter of
        Section IV of the paper.
        """
        s = self.clamp(speed)
        return self.round_down(s), self.round_up(s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(fmin={self.fmin}, fmax={self.fmax})"


class ContinuousSpeeds(SpeedModel):
    """CONTINUOUS model: any speed in ``[fmin, fmax]`` is admissible."""

    allows_intra_task_switching = True
    is_discrete = False

    def is_admissible(self, speed: float, *, tol: float = 1e-7) -> bool:
        return self.fmin - tol <= speed <= self.fmax + tol

    def round_up(self, speed: float) -> float:
        if speed > self.fmax + _EPS:
            raise ValueError(
                f"requested speed {speed} exceeds fmax={self.fmax}"
            )
        return min(max(speed, self.fmin), self.fmax)

    def round_down(self, speed: float) -> float:
        if speed < self.fmin - _EPS:
            raise ValueError(
                f"requested speed {speed} is below fmin={self.fmin}"
            )
        return min(max(speed, self.fmin), self.fmax)


class DiscreteSpeeds(SpeedModel):
    """DISCRETE model: a finite, arbitrary set of modes.

    The speed of a processor cannot change during the execution of a task but
    can change from task to task.  The BI-CRIT problem is NP-complete under
    this model (Section IV of the paper).
    """

    allows_intra_task_switching = False
    is_discrete = True

    def __init__(self, speeds: Iterable[float]) -> None:
        modes = sorted(float(s) for s in speeds)
        if not modes:
            raise ValueError("at least one speed mode is required")
        if any(s <= 0 for s in modes):
            raise ValueError("all speed modes must be positive")
        deduped: list[float] = []
        for s in modes:
            if not deduped or abs(s - deduped[-1]) > _EPS:
                deduped.append(s)
        super().__init__(deduped[0], deduped[-1])
        self.speeds: tuple[float, ...] = tuple(deduped)

    @property
    def num_modes(self) -> int:
        return len(self.speeds)

    def is_admissible(self, speed: float, *, tol: float = 1e-7) -> bool:
        return any(abs(speed - s) <= tol for s in self.speeds)

    def round_up(self, speed: float) -> float:
        if speed > self.fmax + _EPS:
            raise ValueError(
                f"requested speed {speed} exceeds fmax={self.fmax}"
            )
        for s in self.speeds:
            if s >= speed - _EPS:
                return s
        return self.fmax  # pragma: no cover - unreachable by construction

    def round_down(self, speed: float) -> float:
        if speed < self.fmin - _EPS:
            raise ValueError(
                f"requested speed {speed} is below fmin={self.fmin}"
            )
        best = self.fmin
        for s in self.speeds:
            if s <= speed + _EPS:
                best = s
            else:
                break
        return best

    def bracketing_speeds(self, speed: float) -> tuple[float, float]:
        s = self.clamp(speed)
        return self.round_down(s), self.round_up(s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiscreteSpeeds({list(self.speeds)})"


class VddHoppingSpeeds(DiscreteSpeeds):
    """VDD-HOPPING model: finite modes, switching allowed during a task.

    The energy consumed during a task is the sum over constant-speed
    intervals of ``f^3 * (interval length)``.  The BI-CRIT problem is
    polynomial under this model (linear programming, Section IV), and an
    optimal solution never needs more than two distinct speeds per task,
    which can moreover be taken consecutive in the mode list.
    """

    allows_intra_task_switching = True

    def consecutive_pairs(self) -> list[tuple[float, float]]:
        """All pairs of consecutive modes ``(f_j, f_{j+1})``."""
        return list(zip(self.speeds[:-1], self.speeds[1:]))

    def hop_split(self, speed: float, work: float) -> list[tuple[float, float]]:
        """Emulate a continuous speed ``speed`` for ``work`` units of work.

        Returns a list of ``(mode, time)`` pairs, using the two consecutive
        modes bracketing ``speed``, such that the total work equals ``work``
        and the total time equals ``work / speed`` -- the rounding used to
        adapt CONTINUOUS heuristics to the VDD-HOPPING model (Section IV).
        """
        if work < 0:
            raise ValueError("work must be non-negative")
        if work == 0:
            return []
        s = self.clamp(speed)
        lo, hi = self.bracketing_speeds(s)
        total_time = work / s
        if abs(hi - lo) <= _EPS:
            return [(lo, total_time)]
        # Solve: t_lo + t_hi = total_time ; lo*t_lo + hi*t_hi = work.
        t_hi = (work - lo * total_time) / (hi - lo)
        t_lo = total_time - t_hi
        # Numerical guard: tiny negatives from floating point are clipped.
        t_hi = max(t_hi, 0.0)
        t_lo = max(t_lo, 0.0)
        parts = []
        if t_lo > _EPS:
            parts.append((lo, t_lo))
        if t_hi > _EPS:
            parts.append((hi, t_hi))
        return parts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VddHoppingSpeeds({list(self.speeds)})"


class IncrementalSpeeds(DiscreteSpeeds):
    """INCREMENTAL model: regularly spaced modes ``fmin + i * delta``.

    ``delta`` is the minimum permissible speed increment.  Admissible speeds
    lie in ``[fmin, fmax]``; the largest mode is ``fmin + floor((fmax -
    fmin)/delta) * delta`` which may be strictly below the physical ``fmax``
    when the range is not a multiple of ``delta``.

    The paper proves BI-CRIT NP-complete under this model but gives an
    approximation within ``(1 + delta/fmin)^2 (1 + 1/K)^2`` computable in
    time polynomial in the instance size and in ``K``
    (:mod:`repro.discrete.incremental_approx`).
    """

    allows_intra_task_switching = False

    def __init__(self, fmin: float, fmax: float, delta: float) -> None:
        _validate_bounds(fmin, fmax)
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        n_steps = int(math.floor((fmax - fmin) / delta + 1e-12))
        modes = [fmin + i * delta for i in range(n_steps + 1)]
        super().__init__(modes)
        self.delta = float(delta)
        #: physical maximum speed of the processor; the top *mode* is
        #: ``self.fmax`` which may be lower when (fmax-fmin) % delta != 0.
        self.physical_fmax = float(fmax)

    def mode_index(self, speed: float, *, tol: float = 1e-7) -> int:
        """Index ``i`` such that ``speed == fmin + i*delta`` (within tol)."""
        i = round((speed - self.fmin) / self.delta)
        if not (0 <= i < self.num_modes):
            raise ValueError(f"{speed} is not an admissible incremental mode")
        if abs(self.fmin + i * self.delta - speed) > tol:
            raise ValueError(f"{speed} is not an admissible incremental mode")
        return int(i)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalSpeeds(fmin={self.fmin}, fmax={self.physical_fmax}, "
            f"delta={self.delta}, modes={self.num_modes})"
        )
