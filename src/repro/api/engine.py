"""The long-lived :class:`Engine`: shared hot-path state behind the v1 API.

Before this facade existed every caller paid per-call setup that a service
must amortise: each ``solve()`` parsed its own problem, built its own
:class:`~repro.solvers.context.SolverContext`, and repeated solves of the
same instance re-ran the full solver.  The engine owns that state once, for
the life of the process:

* a **problem pool** -- problems arriving as JSON dicts are interned by
  content hash, so repeated requests for the same instance reuse one problem
  object and therefore one memoized ``SolverContext`` (structure probes,
  re-execution floors, compiled arrays);
* an **LRU result cache** -- solve results keyed by the same canonical
  content hash the campaign cache uses (problem JSON + solver + options);
  a repeat solve is a dictionary lookup, flagged ``cached`` in the response;
* a **batched submit path** -- :meth:`submit_batch` routes whole instance
  lists through :func:`repro.solvers.batch.solve_batch`, which groups
  homogeneous (structure x speed model x solver) runs into single vectorized
  programs, while cache hits are peeled off first;
* an optional **persistent store tier** -- when constructed with a
  :class:`repro.store.ResultStore`, the LRU becomes a write-through view
  over the shared on-disk tier (``results`` namespace): computed results
  are published as rebuildable schedule records, survive restarts, and are
  visible to every worker process sharing the store root;
* **request coalescing** -- identical in-flight solves are single-flighted
  per process: one leader computes, concurrent duplicates wait and share
  the answer (flagged ``cached`` on the wire);
* **service metrics** -- request counters, cache hit rates, store and
  coalescing counters, and a latency ring buffer (p50/p99) exported by
  ``GET /metrics``.

Two layers share one engine: the *object* layer (:meth:`submit` /
:meth:`submit_batch`, returning raw
:class:`~repro.core.problems.SolveResult`\\ s -- what the experiment drivers
and the campaign runner consume) and the *wire* layer (:meth:`solve` /
:meth:`solve_batch` / :meth:`simulate` / :meth:`campaign`, taking the typed
requests of :mod:`repro.api.types` and returning JSON-ready responses -- what
the HTTP service consumes).  Both are thread-safe; the HTTP server is a
``ThreadingHTTPServer``.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import Counter, OrderedDict, deque
from collections.abc import Mapping, Sequence
from typing import Any

from ..core.columnar import _KEY_ATTR, ProblemBatch, problem_content_key
from ..core.gcscope import paused_gc
from ..core.problems import BiCritProblem, SolveResult
from ..core.schedule import Execution, Schedule, TaskDecision
from ..simulation import run_monte_carlo
from ..solvers import SolverContext, get_solver
from ..solvers.batch import solve_batch as _kernel_solve_batch
from ..solvers.dispatch import solve as _kernel_solve
from ..store import Coalescer, ResultStore
from ..store.canonical import canonical_blob as _canonical_blob
from ..store.canonical import canonicalize
from .errors import (
    INTERNAL_ERROR,
    INVALID_PROBLEM,
    INVALID_REQUEST,
    SIZE_LIMIT,
    UNKNOWN_SCENARIO,
    UNKNOWN_SOLVER,
    ApiError,
    error_from_exception,
)
from .types import (
    CampaignRequest,
    CampaignResponse,
    SimulateRequest,
    SimulateResponse,
    SolveBatchRequest,
    SolveBatchResponse,
    SolveRequest,
    SolveResponse,
)

__all__ = ["Engine", "problem_content_key",
           "DEFAULT_MAX_TASKS", "DEFAULT_MAX_BATCH", "DEFAULT_CACHE_SIZE"]

#: Positive-task cap per instance; larger requests get ``size_limit``.
DEFAULT_MAX_TASKS = 512
#: Instance cap per solve-batch request.
DEFAULT_MAX_BATCH = 4096
#: Result-cache capacity (LRU entries).
DEFAULT_CACHE_SIZE = 2048
#: Problem-pool capacity (interned parsed problems).
DEFAULT_POOL_SIZE = 4096
#: Per-route latency ring-buffer length for the p50/p99 metrics.
DEFAULT_LATENCY_WINDOW = 2048

#: Store namespace the engine's persistent results live under.
STORE_NAMESPACE = "results"

#: Bump when the persisted result payload layout changes; part of the
#: request key, so stale persistent records become silent misses instead of
#: parse failures.
_RESULT_SCHEMA_VERSION = 1

#: Waiter deadline on a coalesced in-flight solve (defensive; a leader that
#: outlives this has effectively hung).
DEFAULT_COALESCE_TIMEOUT = 600.0

# ``problem_content_key`` (and its ``_KEY_ATTR`` memo attribute) now live in
# ``repro.core.columnar`` so the columnar key templates and this scalar path
# share one definition without a core -> api import; both names are
# re-exported above unchanged for existing consumers.


class _LRU:
    """Minimal ordered-dict LRU (the engine holds the lock)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.data: OrderedDict[str, Any] = OrderedDict()

    def get(self, key: str) -> Any | None:
        value = self.data.get(key)
        if value is not None:
            self.data.move_to_end(key)
        return value

    def put(self, key: str, value: Any) -> None:
        self.data[key] = value
        self.data.move_to_end(key)
        while len(self.data) > self.capacity:
            self.data.popitem(last=False)

    def __len__(self) -> int:
        return len(self.data)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class Engine:
    """Long-lived solver service state: caches, batch routing, metrics."""

    def __init__(self, *, cache_size: int = DEFAULT_CACHE_SIZE,
                 problem_pool_size: int = DEFAULT_POOL_SIZE,
                 max_tasks: int | None = DEFAULT_MAX_TASKS,
                 max_batch: int | None = DEFAULT_MAX_BATCH,
                 latency_window: int = DEFAULT_LATENCY_WINDOW,
                 store: ResultStore | None = None,
                 coalesce_timeout: float = DEFAULT_COALESCE_TIMEOUT) -> None:
        """``max_tasks`` / ``max_batch`` are per-request admission caps
        (``size_limit`` beyond them); ``None`` disables a cap -- the shared
        in-process engine of :func:`repro.api.default_engine` runs
        uncapped, the HTTP server keeps the service defaults.  ``store``
        attaches the persistent shared tier: the in-memory LRU becomes a
        write-through view over it, so results survive restarts and are
        shared with other worker processes on the same root; ``None`` (the
        default, and what direct library users get) keeps the engine fully
        in-memory."""
        self.max_tasks = max_tasks
        self.max_batch = max_batch
        self.store = store
        self._results = _LRU(cache_size)  # guarded-by: _lock
        self._problems = _LRU(problem_pool_size)  # guarded-by: _lock
        self._coalescer = Coalescer()
        self._coalesce_timeout = coalesce_timeout
        self._lock = threading.RLock()
        self._counters: Counter[str] = Counter()  # guarded-by: _lock
        self._error_counters: Counter[str] = Counter()  # guarded-by: _lock
        self._latencies: dict[str, deque[float]] = {}  # guarded-by: _lock
        self._latency_window = latency_window
        self._created = time.time()

    # ------------------------------------------------------------------
    # problem intake
    # ------------------------------------------------------------------
    def resolve_problem(self, payload: Any) -> BiCritProblem:
        """A problem object from wire or in-process form.

        Dicts are parsed through :func:`repro.core.problem_io` and interned
        by content hash, so identical payloads share one problem object (and
        its memoized :class:`SolverContext`); problem objects pass through.
        Parse failures raise ``invalid_problem``.
        """
        if isinstance(payload, BiCritProblem):
            return payload
        if not isinstance(payload, Mapping):
            raise ApiError(INVALID_PROBLEM,
                           "problem must be a JSON object (the schema of "
                           f"repro.core.problem_io), got {type(payload).__name__}")
        try:
            pool_key = hashlib.sha256(_canonical_blob(payload)).hexdigest()
        except TypeError as exc:
            raise ApiError(INVALID_PROBLEM,
                           f"problem payload is not JSON-canonicalisable: {exc}") from exc
        with self._lock:
            problem = self._problems.get(pool_key)
        if problem is not None:
            return problem
        from ..core.problem_io import problem_from_dict

        try:
            problem = problem_from_dict(dict(payload))
        except (KeyError, ValueError, TypeError) as exc:
            raise ApiError(INVALID_PROBLEM,
                           f"cannot parse problem payload: "
                           f"{type(exc).__name__}: {exc}") from exc
        with self._lock:
            self._problems.put(pool_key, problem)
        return problem

    def _check_size(self, problem: BiCritProblem) -> None:
        if self.max_tasks is None:
            return
        # The cap is a positive-weight task cap (zero-weight tasks cost the
        # solvers nothing), counted exactly like every solver-side
        # enumerative limit so admission and admissibility cannot disagree.
        n = SolverContext.for_problem(problem).num_positive_tasks
        if n > self.max_tasks:
            raise ApiError(SIZE_LIMIT,
                           f"instance has {n} tasks, engine limit is "
                           f"{self.max_tasks}",
                           detail={"tasks": n, "max_tasks": self.max_tasks})

    @staticmethod
    def _check_solver_name(solver: str) -> None:
        if solver != "auto":
            try:
                get_solver(solver)
            except KeyError as exc:
                raise ApiError(UNKNOWN_SOLVER, str(exc.args[0])) from exc

    def _options_blob(self, solver: str,
                      options: Mapping[str, Any]) -> bytes:
        from .. import __version__

        try:
            # The version tag makes keys library-version-scoped: now that
            # results persist across processes, a record written by an older
            # repro (or an older payload schema) must miss, not deserialise.
            return _canonical_blob({
                "solver": solver, "options": dict(options),
                "version": f"repro-{__version__}/"
                           f"result-schema-{_RESULT_SCHEMA_VERSION}"})
        except TypeError as exc:
            raise ApiError(INVALID_REQUEST,
                           f"options are not JSON-canonicalisable: {exc}") from exc

    def _request_key(self, problem: BiCritProblem, solver: str,
                     options: Mapping[str, Any]) -> str:
        blob = self._options_blob(solver, options)
        return hashlib.sha256(
            (problem_content_key(problem) + "|").encode("utf-8") + blob).hexdigest()

    def _batch_request_keys(self, content_keys: Sequence[str], solver: str,
                            options: Mapping[str, Any]) -> list[str]:
        """Request keys for a whole batch in one canonicalisation pass.

        The solver/options/version blob is identical for every row of a
        batch, so it is serialised once and fused with each row's content
        hash -- instead of one ``json.dumps`` per instance as the scalar
        :meth:`_request_key` path would do.  Keys are byte-identical to the
        scalar path by construction (same blob, same fuse).
        """
        blob = self._options_blob(solver, options)
        return [hashlib.sha256((ck + "|").encode("utf-8") + blob).hexdigest()
                for ck in content_keys]

    # ------------------------------------------------------------------
    # object layer (internal consumers: experiments, campaign, benchmarks)
    # ------------------------------------------------------------------
    def submit(self, problem: Any, solver: str = "auto", *,
               options: Mapping[str, Any] | None = None,
               context: SolverContext | None = None,
               use_cache: bool = True) -> tuple[SolveResult, bool]:
        """Solve one instance through the engine; ``(result, was_cached)``.

        This is the in-process front door: the experiment drivers and the
        wire layer both route through it, so they share the result cache and
        the context pool.  Library exceptions
        (:class:`~repro.solvers.dispatch.NoAdmissibleSolverError`, ...)
        propagate unchanged -- translation into :class:`ApiError` codes is a
        wire-layer concern (admission failures such as ``size_limit`` /
        ``unknown_solver`` / ``invalid_problem`` are the engine's own and do
        raise :class:`ApiError` on both layers).
        """
        result, cached, _ = self._solve_entry(problem, solver,
                                              dict(options or {}),
                                              context, use_cache)
        return result, cached

    def _solve_entry(self, problem: Any, solver: str, options: dict[str, Any],
                     context: SolverContext | None,
                     use_cache: bool) -> tuple[SolveResult, bool, float]:
        problem = self.resolve_problem(problem)
        self._check_size(problem)
        self._check_solver_name(solver)
        key = self._request_key(problem, solver, options)
        if not use_cache:
            # Cache-bypassing solves never consulted the cache, so they do
            # not count against the hit rate, are not published to the
            # store, and are not coalesced (a refresh must recompute).
            t0 = time.perf_counter()
            result = _kernel_solve(problem, solver=solver, context=context,
                                   **options)
            return result, False, (time.perf_counter() - t0) * 1e3

        hit = self._cache_lookup(key, problem)
        if hit is not None:
            return hit, True, 0.0

        # Single-flight: concurrent identical requests elect one leader and
        # everyone else shares its answer (or its exception).
        flight, leader = self._coalescer.claim(key)
        if not leader:
            result = flight.wait(self._coalesce_timeout)
            with self._lock:
                self._counters["cache_hits"] += 1
                self._counters["coalesced_hits"] += 1
            return result, True, 0.0
        try:
            # Re-check under the flight: a result published between our
            # lookup and the claim (by a thread whose flight just retired)
            # would otherwise be recomputed.
            hit = self._cache_lookup(key, problem)
            if hit is not None:
                self._coalescer.resolve(flight, result=hit)
                return hit, True, 0.0
            t0 = time.perf_counter()
            result = _kernel_solve(problem, solver=solver, context=context,
                                   **options)
            elapsed_ms = (time.perf_counter() - t0) * 1e3
        except BaseException as exc:
            self._coalescer.resolve(flight, error=exc)
            raise
        with self._lock:
            self._counters["cache_misses"] += 1
            self._results.put(key, result)
        self._store_put(key, result)
        self._coalescer.resolve(flight, result=result)
        return result, False, elapsed_ms

    # ------------------------------------------------------------------
    # the two-level cache (in-memory LRU over the persistent store)
    # ------------------------------------------------------------------
    def _cache_lookup(self, key: str,
                      problem: BiCritProblem) -> SolveResult | None:
        """LRU first, then the persistent tier; promotes store hits."""
        with self._lock:
            hit = self._results.get(key)
            if hit is not None:
                self._counters["cache_hits"] += 1
                return hit
        if self.store is None:
            return None
        payload = self.store.get(key, STORE_NAMESPACE)
        result = (self._result_from_payload(payload, problem)
                  if payload is not None else None)
        with self._lock:
            if result is None:
                self._counters["store_misses"] += 1
                return None
            self._counters["cache_hits"] += 1
            self._counters["store_hits"] += 1
            self._results.put(key, result)
        return result

    def _store_put(self, key: str, result: SolveResult) -> None:
        """Publish a computed result to the shared tier (best effort --
        a full disk or read-only root must not fail the solve)."""
        if self.store is None:
            return
        try:
            self.store.put(key, self._result_to_payload(result),
                           STORE_NAMESPACE)
        except (OSError, TypeError, ValueError):
            pass

    @staticmethod
    def _result_to_payload(result: SolveResult) -> dict[str, Any]:
        """A JSON-rebuildable record of one solve.

        The schedule is stored as the full per-execution interval lists
        (not the flat wire ``speeds`` view, which conflates VDD-hopping
        intra-task intervals with re-executions), so the stored form
        round-trips to a real :class:`Schedule` against the interned
        problem -- simulate and the object layer work on a store hit.
        """
        schedule = result.schedule
        payload: dict[str, Any] = {
            "status": result.status,
            "solver": result.solver,
            "energy": float(result.energy),
            "metadata": {},
            "schedule": None,
        }
        for k, v in result.metadata.items():
            try:
                payload["metadata"][str(k)] = canonicalize(v)
            except TypeError:
                continue       # drop non-JSON metadata, keep the record
        if schedule is not None:
            payload["schedule"] = {"executions": {
                str(t): [[[float(f), float(d)] for f, d in e.intervals]
                         for e in decision.executions]
                for t, decision in schedule.decisions.items()}}
        return payload

    @staticmethod
    def _result_from_payload(payload: Any,
                             problem: BiCritProblem) -> SolveResult | None:
        """Rebuild a :class:`SolveResult` from a stored record; ``None``
        (a miss) when the record does not fit this problem."""
        if not isinstance(payload, Mapping):
            return None
        try:
            schedule = None
            sched_payload = payload.get("schedule")
            if sched_payload is not None:
                by_name = {str(t): t for t in problem.graph.tasks()}
                decisions = {}
                for name, runs in sched_payload["executions"].items():
                    task = by_name[name]
                    decisions[task] = TaskDecision(task, tuple(
                        Execution.from_intervals(run) for run in runs))
                schedule = Schedule(problem.mapping, problem.platform,
                                    decisions)
            return SolveResult(
                schedule=schedule, energy=float(payload["energy"]),
                status=str(payload["status"]), solver=str(payload["solver"]),
                metadata=dict(payload.get("metadata") or {}))
        except (KeyError, TypeError, ValueError):
            return None

    def submit_batch(self, problems: Sequence[Any], solver: str = "auto", *,
                     contexts: Sequence[SolverContext] | None = None,
                     options: Mapping[str, Any] | None = None,
                     use_cache: bool = True) -> list[tuple[SolveResult, bool]]:
        """Solve many instances; cache hits are peeled off, the misses run
        through the vectorized batch kernel as homogeneous groups.

        Returns ``(result, was_cached)`` pairs in input order.  One
        inadmissible instance fails the whole request (matching the scalar
        dispatch semantics of :func:`repro.solvers.batch.plan_batch`);
        like :meth:`submit`, library exceptions propagate unchanged on this
        object layer.
        """
        options = dict(options or {})
        if self.max_batch is not None and len(problems) > self.max_batch:
            raise ApiError(SIZE_LIMIT,
                           f"batch has {len(problems)} instances, engine "
                           f"limit is {self.max_batch}",
                           detail={"instances": len(problems),
                                   "max_batch": self.max_batch})
        resolved = [self.resolve_problem(p) for p in problems]
        for problem in resolved:
            self._check_size(problem)
        self._check_solver_name(solver)
        if contexts is not None and len(contexts) != len(resolved):
            raise ApiError(INVALID_REQUEST,
                           "contexts must match problems one-to-one")

        keys = self._batch_request_keys(
            [problem_content_key(p) for p in resolved], solver, options)
        out: list[tuple[SolveResult, bool] | None] = [None] * len(resolved)
        misses: list[int] = []
        for i, key in enumerate(keys):
            # Two-level peel: the in-memory LRU, then the persistent tier
            # (_cache_lookup counts hits and promotes store hits itself).
            hit = self._cache_lookup(key, resolved[i]) if use_cache else None
            if hit is not None:
                out[i] = (hit, True)
            else:
                misses.append(i)
        if use_cache:
            with self._lock:
                self._counters["cache_misses"] += len(misses)
        if misses:
            miss_problems = [resolved[i] for i in misses]
            miss_contexts = ([contexts[i] for i in misses]
                             if contexts is not None else None)
            results = _kernel_solve_batch(miss_problems, solver,
                                          contexts=miss_contexts, **options)
            with self._lock:
                for i, result in zip(misses, results):
                    out[i] = (result, False)
                    if use_cache:
                        self._results.put(keys[i], result)
            if use_cache:
                for i, result in zip(misses, results):
                    self._store_put(keys[i], result)
        return [pair for pair in out if pair is not None]

    # ------------------------------------------------------------------
    # wire layer (the HTTP service)
    # ------------------------------------------------------------------
    def _build_response(self, result: SolveResult, *, cached: bool,
                        elapsed_ms: float) -> SolveResponse:
        view = getattr(result, "wire_view", None)
        if view is not None:
            # Columnar results carry their wire fields precomputed, so the
            # response never touches ``result.schedule`` (which would force
            # per-task object materialization on the zero-copy path).  The
            # dispatch record is already in canonical plain-typed form
            # (``canonicalize`` preserves insertion order, so re-running it
            # would return an equal dict).
            dispatch = view.get("dispatch")
            if dispatch is None:
                dispatch = canonicalize(result.metadata.get("dispatch", {}))
            return SolveResponse(
                energy=float(result.energy), status=result.status,
                solver=result.solver, feasible=result.feasible,
                makespan=view["makespan"], speeds=view["speeds"],
                num_reexecuted=view["num_reexecuted"],
                dispatch=dispatch,
                cached=cached, elapsed_ms=elapsed_ms)
        schedule = result.schedule
        speeds: dict[str, list[float]] = {}
        makespan = None
        num_reexecuted = 0
        if schedule is not None:
            speeds = {str(t): [float(x) for x in s]
                      for t, s in schedule.speed_assignment().items()}
            makespan = float(schedule.makespan())
            num_reexecuted = schedule.num_reexecuted()
        return SolveResponse(
            energy=float(result.energy), status=result.status,
            solver=result.solver, feasible=result.feasible,
            makespan=makespan, speeds=speeds, num_reexecuted=num_reexecuted,
            dispatch=canonicalize(result.metadata.get("dispatch", {})),
            cached=cached, elapsed_ms=elapsed_ms)

    @staticmethod
    def _translate(exc: Exception) -> ApiError:
        """Wire-layer error mapping (library exception -> stable code)."""
        return error_from_exception(exc)

    def solve(self, request: SolveRequest) -> SolveResponse:
        """``POST /v1/solve``: one instance through cache + dispatch."""
        try:
            result, cached, elapsed_ms = self._solve_entry(
                request.problem, request.solver, dict(request.options),
                None, True)
        except Exception as exc:
            raise self._translate(exc) from exc
        return self._build_response(result, cached=cached, elapsed_ms=elapsed_ms)

    def solve_batch(self, request: SolveBatchRequest) -> SolveBatchResponse:
        """``POST /v1/solve-batch``: grouped vectorized evaluation.

        Wire payloads (all-``Mapping`` problem lists, or a request that
        already carries a parsed :class:`ProblemBatch`) take the columnar
        path: struct-of-arrays from JSON to kernel, no per-instance
        ``Problem`` objects on the all-miss hot path.  Lists containing
        in-process ``Problem`` objects keep the legacy object path.
        """
        t0 = time.perf_counter()
        batch = getattr(request, "batch", None)
        if batch is None and request.problems and all(
                isinstance(p, Mapping) for p in request.problems):
            try:
                batch = ProblemBatch.from_wire(request.problems)
            except Exception:
                # The object path owns the authoritative validation errors.
                batch = None
        if batch is not None:
            # In-process consumers get the same GC relief as the HTTP
            # server scope (nested pauses are depth-counted no-ops).
            with paused_gc():
                return self._solve_batch_columnar(batch, request.solver,
                                                  dict(request.options), t0)
        try:
            pairs = self.submit_batch(request.problems, request.solver,
                                      options=request.options)
        except Exception as exc:
            raise self._translate(exc) from exc
        executed = sum(1 for _, cached in pairs if not cached)
        per_miss_ms = ((time.perf_counter() - t0) * 1e3 / executed
                       if executed else 0.0)
        return SolveBatchResponse(results=[
            self._build_response(result, cached=cached,
                                 elapsed_ms=0.0 if cached else per_miss_ms)
            for result, cached in pairs])

    def _solve_batch_columnar(self, batch: ProblemBatch, solver: str,
                              options: dict[str, Any],
                              t0: float) -> SolveBatchResponse:
        """Columnar ``/v1/solve-batch``: admission checks over columns,
        masked cache peel, and the miss rows handed to the batch kernel as
        a (sub-)``ProblemBatch`` -- semantics identical to the object path
        (same admission order, same errors, same counters, same keys)."""
        try:
            n_rows = len(batch)
            if self.max_batch is not None and n_rows > self.max_batch:
                raise ApiError(SIZE_LIMIT,
                               f"batch has {n_rows} instances, engine "
                               f"limit is {self.max_batch}",
                               detail={"instances": n_rows,
                                       "max_batch": self.max_batch})
            # Fallback rows (payloads the strict columnar parser declined)
            # materialise through the interning resolver, in row order, so
            # parse errors surface exactly where the object path raises
            # them.  Fast rows already parsed strictly and cannot fail.
            for i in batch.fallback_indices():
                batch.set_problem(i, self.resolve_problem(batch.payloads[i]))
            if self.max_tasks is not None:
                fallback = batch.columns["fallback"]
                num_positive = batch.columns["num_positive"]
                if fallback.any() or (n_rows and
                                      num_positive.max() > self.max_tasks):
                    # Row-order walk so the reported instance matches the
                    # object path; skipped entirely on the all-fast,
                    # all-within-limit common case.  Positive-weight counting
                    # mirrors the scalar ``_check_size``.
                    for i in range(n_rows):
                        n = (SolverContext.for_problem(batch.problem(i))
                             .num_positive_tasks if fallback[i]
                             else int(num_positive[i]))
                        if n > self.max_tasks:
                            raise ApiError(
                                SIZE_LIMIT,
                                f"instance has {n} tasks, engine limit is "
                                f"{self.max_tasks}",
                                detail={"tasks": n,
                                        "max_tasks": self.max_tasks})
            self._check_solver_name(solver)
            keys = self._batch_request_keys(batch.content_keys(), solver,
                                            options)
            out: list[tuple[SolveResult, bool] | None] = [None] * n_rows
            misses: list[int] = []
            if self.store is None:
                # LRU-only peel under one lock acquisition; never touches
                # ``batch.problem(i)``, keeping the all-miss path zero-copy.
                with self._lock:
                    for i, key in enumerate(keys):
                        hit = self._results.get(key)
                        if hit is not None:
                            self._counters["cache_hits"] += 1
                            out[i] = (hit, True)
                        else:
                            misses.append(i)
            else:
                for i, key in enumerate(keys):
                    hit = self._cache_lookup(key, batch.problem(i))
                    if hit is not None:
                        out[i] = (hit, True)
                    else:
                        misses.append(i)
            with self._lock:
                self._counters["cache_misses"] += len(misses)
            if misses:
                sub = batch if len(misses) == n_rows else batch.take(misses)
                results = _kernel_solve_batch(sub, solver, **options)
                with self._lock:
                    for i, result in zip(misses, results):
                        out[i] = (result, False)
                        self._results.put(keys[i], result)
                for i, result in zip(misses, results):
                    self._store_put(keys[i], result)
        except Exception as exc:
            raise self._translate(exc) from exc
        executed = len(misses)
        per_miss_ms = ((time.perf_counter() - t0) * 1e3 / executed
                       if executed else 0.0)
        return SolveBatchResponse(results=[
            self._build_response(pair[0], cached=pair[1],
                                 elapsed_ms=0.0 if pair[1] else per_miss_ms)
            for pair in out if pair is not None])

    def simulate(self, request: SimulateRequest) -> SimulateResponse:
        """``POST /v1/simulate``: solve, then Monte-Carlo the schedule."""
        try:
            result, cached, elapsed_ms = self._solve_entry(
                request.problem, request.solver, dict(request.options),
                None, True)
        except Exception as exc:
            raise self._translate(exc) from exc
        if result.schedule is None:
            raise ApiError(INVALID_REQUEST,
                           f"solver {result.solver!r} returned status "
                           f"{result.status!r} without a schedule; nothing to "
                           "simulate", detail={"status": result.status})
        summary = run_monte_carlo(result.schedule, request.trials,
                                  seed=request.seed, engine=request.engine)
        return SimulateResponse(
            solve=self._build_response(result, cached=cached,
                                       elapsed_ms=elapsed_ms),
            trials=summary.trials,
            success_rate=float(summary.success_rate),
            success_stderr=float(summary.success_stderr),
            analytic_reliability=float(summary.analytic_reliability),
            mean_energy=float(summary.mean_energy),
            mean_makespan=float(summary.mean_makespan),
            max_makespan=float(summary.max_makespan),
            mean_attempts=float(summary.mean_attempts),
            engine=request.engine)

    def campaign(self, request: CampaignRequest) -> CampaignResponse:
        """``POST /v1/campaign``: one scenario through the campaign cache."""
        from ..campaign.cache import ResultCache
        from ..campaign.registry import get_scenario
        from ..campaign.runner import run_campaign

        try:
            spec = get_scenario(request.scenario)
        except KeyError as exc:
            raise ApiError(UNKNOWN_SCENARIO, str(exc.args[0])) from exc
        try:
            instance = spec.instance(request.params, smoke=request.smoke)
        except KeyError as exc:
            raise ApiError(INVALID_REQUEST, str(exc.args[0])) from exc
        outcome = run_campaign(
            [instance], name=f"api:{spec.name}", jobs=1,
            cache=ResultCache(request.cache_dir),
            use_cache=request.use_cache, refresh=request.refresh).results[0]
        if not outcome.ok:
            raise ApiError(INTERNAL_ERROR,
                           f"scenario {spec.name!r} failed: {outcome.error}",
                           detail={"scenario": spec.name,
                                   "failure": outcome.failure or {}})
        return CampaignResponse(
            scenario=spec.name, key=outcome.key, cached=outcome.cached,
            elapsed_seconds=outcome.elapsed_seconds,
            result=outcome.record["result"],
            params=canonicalize(instance.params))

    def solver_table(self) -> list[dict[str, Any]]:
        """``GET /v1/solvers``: the registry capability rows."""
        from ..solvers import capability_rows

        return capability_rows()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def record_request(self, route: str, seconds: float, ok: bool) -> None:
        """Count one handled request and feed the latency ring buffer."""
        with self._lock:
            self._counters[route] += 1
            if not ok:
                self._error_counters[route] += 1
            buf = self._latencies.get(route)
            if buf is None:
                buf = self._latencies[route] = deque(maxlen=self._latency_window)
            buf.append(seconds * 1e3)

    def health(self) -> dict[str, Any]:
        """``GET /healthz``: liveness payload (``pid`` identifies which
        worker of a ``--workers N`` fleet answered)."""
        from .. import __version__

        return {"status": "ok", "version": __version__,
                "api_version": "v1", "pid": os.getpid(),
                "uptime_seconds": time.time() - self._created}

    def store_stats(self) -> dict[str, Any]:
        """``GET /v1/store``: durable-tier snapshot plus coalescing state."""
        stats: dict[str, Any] = {"enabled": self.store is not None,
                                 "namespace": STORE_NAMESPACE,
                                 "coalesce": self._coalescer.stats()}
        if self.store is not None:
            stats.update(self.store.stats())
        return stats

    #: Internal counter names excluded from the per-route request table.
    _CACHE_COUNTERS = ("cache_hits", "cache_misses", "coalesced_hits",
                       "store_hits", "store_misses")

    def metrics(self) -> dict[str, Any]:
        """``GET /metrics``: counters, cache hit rate, store and coalescing
        counters, p50/p99 latency."""
        store_counters = self.store.counters() if self.store is not None else {}
        coalesce = self._coalescer.stats()
        with self._lock:
            hits = self._counters["cache_hits"]
            misses = self._counters["cache_misses"]
            store_section = {
                "enabled": self.store is not None,
                # Engine-observed persistent-tier traffic: hits served from
                # disk (after an LRU miss) vs consults that missed.
                "hits": self._counters["store_hits"],
                "misses": self._counters["store_misses"],
                # The store's own counters (writes/evictions/quarantine).
                "backend": store_counters,
                "coalesce": coalesce,
            }
            requests = {route: count for route, count in self._counters.items()
                        if route not in self._CACHE_COUNTERS}
            latency = {}
            for route, buf in self._latencies.items():
                values = sorted(buf)
                latency[route] = {
                    "count": len(values),
                    "p50_ms": _percentile(values, 0.50),
                    "p99_ms": _percentile(values, 0.99),
                    "mean_ms": sum(values) / len(values) if values else 0.0,
                }
            return {
                "uptime_seconds": time.time() - self._created,
                "pid": os.getpid(),
                "requests": requests,
                "requests_total": sum(requests.values()),
                "errors": dict(self._error_counters),
                "cache": {
                    "result_entries": len(self._results),
                    "result_capacity": self._results.capacity,
                    "problem_pool_entries": len(self._problems),
                    "hits": hits,
                    "misses": misses,
                    "coalesced_hits": self._counters["coalesced_hits"],
                    "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                },
                "store": store_section,
                "limits": {"max_tasks": self.max_tasks,
                           "max_batch": self.max_batch},
                "latency_ms": latency,
            }
