"""Transport-independent request handling for the v1 API.

:class:`Service` maps ``(method, path, body)`` triples onto engine calls and
typed responses, so the HTTP server (:mod:`repro.api.server`), the smoke
scripts and the tests all exercise exactly the same routing, validation and
error mapping without needing a socket.  Every handled request -- success or
failure -- is recorded in the engine's metrics with its latency.

Routes (all payloads JSON)::

    POST /v1/solve        SolveRequest       -> SolveResponse
    POST /v1/solve-batch  SolveBatchRequest  -> SolveBatchResponse
    POST /v1/simulate     SimulateRequest    -> SimulateResponse
    POST /v1/campaign     CampaignRequest    -> CampaignResponse
    GET  /v1/solvers      --                 -> {"solvers": [capability rows]}
    GET  /v1/store        --                 -> persistent-store stats
    GET  /healthz         --                 -> liveness payload
    GET  /metrics         --                 -> counters / cache / latency

Failures return an :class:`~repro.api.errors.ErrorResponse` wire payload and
the HTTP status its code maps to.
"""

from __future__ import annotations

import json
import time
from typing import Any

from .engine import Engine
from .errors import (
    INVALID_JSON,
    METHOD_NOT_ALLOWED,
    NOT_FOUND,
    ApiError,
    error_from_exception,
)
from .types import (
    API_VERSION,
    CampaignRequest,
    SimulateRequest,
    SolveBatchRequest,
    SolveRequest,
)

__all__ = ["Service", "ROUTES"]

#: ``(method, path) -> handler name`` -- the wire surface, in one place.
ROUTES: dict[tuple[str, str], str] = {
    ("POST", f"/{API_VERSION}/solve"): "solve",
    ("POST", f"/{API_VERSION}/solve-batch"): "solve_batch",
    ("POST", f"/{API_VERSION}/simulate"): "simulate",
    ("POST", f"/{API_VERSION}/campaign"): "campaign",
    ("GET", f"/{API_VERSION}/solvers"): "solvers",
    ("GET", f"/{API_VERSION}/store"): "store",
    ("GET", "/healthz"): "healthz",
    ("GET", "/metrics"): "metrics",
}

_KNOWN_PATHS = frozenset(path for _, path in ROUTES)


class Service:
    """Route requests to a (possibly shared) :class:`Engine`."""

    def __init__(self, engine: Engine | None = None) -> None:
        self.engine = engine if engine is not None else Engine()

    # ------------------------------------------------------------------
    def handle(self, method: str, path: str,
               body: bytes | str | None = None) -> tuple[int, dict[str, Any]]:
        """Handle one request; returns ``(http_status, json_payload)``.

        Never raises: every failure is folded into an ``ErrorResponse``
        payload with the matching status code.
        """
        method = method.upper()
        path = path.split("?", 1)[0].rstrip("/") or "/"
        t0 = time.perf_counter()
        status, payload = self._dispatch(method, path, body)
        # Metrics are keyed by *known* routes only; arbitrary client paths
        # collapse into one bucket so a URL scanner cannot grow the
        # counter/latency maps without bound.
        route = (f"{method} {path}" if path in _KNOWN_PATHS else "unmatched")
        self.engine.record_request(route, time.perf_counter() - t0,
                                   ok=status < 400)
        return status, payload

    # ------------------------------------------------------------------
    def _dispatch(self, method: str, path: str,
                  body: bytes | str | None) -> tuple[int, dict[str, Any]]:
        try:
            handler = ROUTES.get((method, path))
            if handler is None:
                if path in _KNOWN_PATHS:
                    allowed = sorted(m for m, p in ROUTES if p == path)
                    raise ApiError(METHOD_NOT_ALLOWED,
                                   f"{method} not allowed on {path}; "
                                   f"allowed: {', '.join(allowed)}")
                raise ApiError(NOT_FOUND, f"no such route {path!r}",
                               detail={"routes": sorted(
                                   f"{m} {p}" for m, p in ROUTES)})
            return 200, getattr(self, f"_handle_{handler}")(body)
        except ApiError as exc:
            return exc.http_status, exc.response.to_dict()
        except Exception as exc:  # noqa: BLE001 - the service must not crash
            err = error_from_exception(exc)
            return err.http_status, err.response.to_dict()

    @staticmethod
    def _parse_body(body: bytes | str | None) -> Any:
        if isinstance(body, bytes):
            try:
                body = body.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ApiError(INVALID_JSON,
                               f"request body is not UTF-8: {exc}") from exc
        if body is None or not body.strip():
            raise ApiError(INVALID_JSON, "request body is empty; expected a "
                                         "JSON object")
        try:
            return json.loads(body)
        except ValueError as exc:
            raise ApiError(INVALID_JSON,
                           f"request body is not valid JSON: {exc}") from exc

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _handle_solve(self, body: bytes | str | None) -> dict[str, Any]:
        request = SolveRequest.from_dict(self._parse_body(body))
        return self.engine.solve(request).to_dict()

    def _handle_solve_batch(self, body: bytes | str | None) -> dict[str, Any]:
        request = SolveBatchRequest.from_dict(self._parse_body(body))
        return self.engine.solve_batch(request).to_dict()

    def _handle_simulate(self, body: bytes | str | None) -> dict[str, Any]:
        request = SimulateRequest.from_dict(self._parse_body(body))
        return self.engine.simulate(request).to_dict()

    def _handle_campaign(self, body: bytes | str | None) -> dict[str, Any]:
        request = CampaignRequest.from_dict(self._parse_body(body))
        return self.engine.campaign(request).to_dict()

    def _handle_solvers(self, body: bytes | str | None) -> dict[str, Any]:
        return {"api_version": API_VERSION,
                "solvers": self.engine.solver_table()}

    def _handle_store(self, body: bytes | str | None) -> dict[str, Any]:
        return {"api_version": API_VERSION, **self.engine.store_stats()}

    def _handle_healthz(self, body: bytes | str | None) -> dict[str, Any]:
        return self.engine.health()

    def _handle_metrics(self, body: bytes | str | None) -> dict[str, Any]:
        return self.engine.metrics()
