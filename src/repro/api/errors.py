"""Stable machine-readable error codes for the v1 API.

Every failure that crosses the :mod:`repro.api` boundary -- a malformed
request, an unknown solver name, an instance a solver does not admit, an
over-size payload -- is reported as an :class:`ErrorResponse` carrying one of
the :data:`ERROR_CODES` below.  The codes are part of the wire contract:
clients branch on ``code`` (never on the human-readable ``message``), and the
HTTP transport maps each code to a fixed status via :data:`HTTP_STATUS`.

Inside the process the same information travels as an :class:`ApiError`
exception; :func:`error_from_exception` translates the library's own
exception types (:class:`~repro.solvers.descriptors.InadmissibleSolverError`,
:class:`~repro.solvers.dispatch.NoAdmissibleSolverError`,
:class:`~repro.core.problems.InfeasibleProblemError`) into it at the facade,
so no consumer of :mod:`repro.api` ever needs to import solver internals to
handle a failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ApiError",
    "ErrorResponse",
    "error_from_exception",
    "ERROR_CODES",
    "HTTP_STATUS",
    "INVALID_JSON",
    "INVALID_REQUEST",
    "INVALID_PROBLEM",
    "UNKNOWN_SOLVER",
    "UNKNOWN_SCENARIO",
    "NOT_FOUND",
    "METHOD_NOT_ALLOWED",
    "INADMISSIBLE_SOLVER",
    "NO_ADMISSIBLE_SOLVER",
    "INFEASIBLE_PROBLEM",
    "SIZE_LIMIT",
    "INTERNAL_ERROR",
]

# ----------------------------------------------------------------------
# stable codes (wire contract -- never rename, only add)
# ----------------------------------------------------------------------
INVALID_JSON = "invalid_json"              # request body is not a JSON object
INVALID_REQUEST = "invalid_request"        # JSON ok, fields missing/mistyped
INVALID_PROBLEM = "invalid_problem"        # problem payload fails to parse
UNKNOWN_SOLVER = "unknown_solver"          # solver name not in the registry
UNKNOWN_SCENARIO = "unknown_scenario"      # campaign scenario name unknown
NOT_FOUND = "not_found"                    # no such route
METHOD_NOT_ALLOWED = "method_not_allowed"  # route exists, wrong HTTP method
INADMISSIBLE_SOLVER = "inadmissible_solver"    # named solver rejects instance
NO_ADMISSIBLE_SOLVER = "no_admissible_solver"  # auto-dispatch found nothing
INFEASIBLE_PROBLEM = "infeasible_problem"  # no schedule can meet the deadline
SIZE_LIMIT = "size_limit"                  # instance/batch exceeds the caps
INTERNAL_ERROR = "internal_error"          # unexpected server-side failure

#: HTTP status per code (the transport layer looks them up here).
HTTP_STATUS: dict[str, int] = {
    INVALID_JSON: 400,
    INVALID_REQUEST: 400,
    INVALID_PROBLEM: 400,
    UNKNOWN_SOLVER: 400,
    UNKNOWN_SCENARIO: 404,
    NOT_FOUND: 404,
    METHOD_NOT_ALLOWED: 405,
    INADMISSIBLE_SOLVER: 422,
    NO_ADMISSIBLE_SOLVER: 422,
    INFEASIBLE_PROBLEM: 422,
    SIZE_LIMIT: 413,
    INTERNAL_ERROR: 500,
}

#: Every stable code, for clients and the round-trip tests.
ERROR_CODES = tuple(HTTP_STATUS)


@dataclass(frozen=True)
class ErrorResponse:
    """Structured error payload returned by every failed v1 request."""

    code: str
    message: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in HTTP_STATUS:
            raise ValueError(f"unknown error code {self.code!r}; "
                             f"known: {', '.join(ERROR_CODES)}")

    @property
    def http_status(self) -> int:
        return HTTP_STATUS[self.code]

    def to_dict(self) -> dict[str, Any]:
        """Wire form: ``{"error": {"code", "message", "detail"}}``."""
        return {"error": {"code": self.code, "message": self.message,
                          "detail": dict(self.detail)}}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ErrorResponse":
        body = data.get("error", data)
        return cls(code=str(body["code"]), message=str(body.get("message", "")),
                   detail=dict(body.get("detail", {})))


class ApiError(Exception):
    """An :class:`ErrorResponse` travelling as an exception inside the process."""

    def __init__(self, code: str, message: str, *,
                 detail: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.response = ErrorResponse(code=code, message=message,
                                      detail=dict(detail or {}))

    @property
    def code(self) -> str:
        return self.response.code

    @property
    def http_status(self) -> int:
        return self.response.http_status


def error_from_exception(exc: BaseException) -> ApiError:
    """Translate a library exception into the facade's :class:`ApiError`.

    :class:`ApiError` passes through unchanged; the solver layer's typed
    exceptions map onto their stable codes; anything else becomes
    ``internal_error`` with the exception type recorded in the detail.
    """
    if isinstance(exc, ApiError):
        return exc
    from ..core.problems import InfeasibleProblemError
    from ..solvers import InadmissibleSolverError, NoAdmissibleSolverError

    if isinstance(exc, InadmissibleSolverError):
        return ApiError(INADMISSIBLE_SOLVER, str(exc))
    if isinstance(exc, NoAdmissibleSolverError):
        return ApiError(NO_ADMISSIBLE_SOLVER, str(exc))
    if isinstance(exc, InfeasibleProblemError):
        return ApiError(INFEASIBLE_PROBLEM, str(exc))
    return ApiError(INTERNAL_ERROR, f"{type(exc).__name__}: {exc}",
                    detail={"exception": type(exc).__name__})
