"""Frozen, JSON-round-trippable request/response types of the v1 API.

Every type maps to and from a plain-``dict`` wire form (``to_dict`` /
``from_dict``) built on the problem JSON schema of
:mod:`repro.core.problem_io`: a request's ``problem`` field is exactly the
payload :func:`repro.core.problem_io.problem_to_dict` writes (a constructed
:class:`~repro.core.problems.BiCritProblem` object is also accepted in
process, so internal consumers skip the serialisation round trip).
``from_dict`` validates shape and field types and raises
:class:`~repro.api.errors.ApiError` with the ``invalid_request`` code on any
mismatch -- by the time a request object exists, its fields are trustworthy.

The wire contract is versioned: :data:`API_VERSION` names the prefix every
HTTP route carries (``/v1/solve``), and each response embeds it so clients
can assert what they are talking to.  Fields are only ever added, never
renamed, within a version.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from .errors import INVALID_REQUEST, ApiError, ErrorResponse

__all__ = [
    "API_VERSION",
    "SolveRequest",
    "SolveBatchRequest",
    "SimulateRequest",
    "CampaignRequest",
    "SolveResponse",
    "SolveBatchResponse",
    "SimulateResponse",
    "CampaignResponse",
    "ErrorResponse",
]

#: Version prefix of the wire contract (HTTP routes are ``/v1/...``).
API_VERSION = "v1"

#: Solver-evaluation engines a request may name.
_ENGINES = ("batch", "scalar")


# ----------------------------------------------------------------------
# validation helpers
# ----------------------------------------------------------------------
def _require_mapping(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ApiError(INVALID_REQUEST,
                       f"{what} must be a JSON object, got {type(data).__name__}")
    return data

def _check_keys(data: Mapping[str, Any], allowed: Sequence[str],
                required: Sequence[str], what: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ApiError(INVALID_REQUEST,
                       f"unknown field(s) {sorted(unknown)} in {what}; "
                       f"allowed: {sorted(allowed)}")
    missing = set(required) - set(data)
    if missing:
        raise ApiError(INVALID_REQUEST,
                       f"missing required field(s) {sorted(missing)} in {what}")

def _str_field(data: Mapping[str, Any], key: str, default: str,
               what: str) -> str:
    value = data.get(key, default)
    if not isinstance(value, str):
        raise ApiError(INVALID_REQUEST,
                       f"{what}.{key} must be a string, got {type(value).__name__}")
    return value

def _bool_field(data: Mapping[str, Any], key: str, default: bool,
                what: str) -> bool:
    value = data.get(key, default)
    if not isinstance(value, bool):
        raise ApiError(INVALID_REQUEST,
                       f"{what}.{key} must be a boolean, got {type(value).__name__}")
    return value

def _int_field(data: Mapping[str, Any], key: str, default: int, what: str, *,
               minimum: int | None = None) -> int:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ApiError(INVALID_REQUEST,
                       f"{what}.{key} must be an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ApiError(INVALID_REQUEST,
                       f"{what}.{key} must be >= {minimum}, got {value}")
    return value

def _dict_field(data: Mapping[str, Any], key: str, what: str) -> dict[str, Any]:
    value = data.get(key, {})
    return dict(_require_mapping(value, f"{what}.{key}"))

def _engine_field(data: Mapping[str, Any], what: str) -> str:
    engine = _str_field(data, "engine", "batch", what)
    if engine not in _ENGINES:
        raise ApiError(INVALID_REQUEST,
                       f"{what}.engine must be one of {list(_ENGINES)}, "
                       f"got {engine!r}")
    return engine

def _problem_wire_form(problem: Any) -> dict[str, Any]:
    """The ``problem`` field as its JSON schema dict (serialising objects)."""
    if isinstance(problem, Mapping):
        return dict(problem)
    from ..core.problem_io import problem_to_dict

    return problem_to_dict(problem)


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolveRequest:
    """Solve one BI-CRIT / TRI-CRIT instance.

    ``problem`` is the :mod:`repro.core.problem_io` JSON dict (or, in
    process, an already-constructed problem object); ``solver`` is a
    registry name or ``"auto"``; ``options`` are solver keyword overrides
    (named solvers only -- the dispatcher rejects solver-specific knobs).
    """

    problem: Any
    solver: str = "auto"
    options: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"problem": _problem_wire_form(self.problem),
                "solver": self.solver, "options": dict(self.options)}

    @classmethod
    def from_dict(cls, data: Any) -> "SolveRequest":
        data = _require_mapping(data, "solve request")
        _check_keys(data, ("problem", "solver", "options"), ("problem",),
                    "solve request")
        return cls(problem=dict(_require_mapping(data["problem"],
                                                 "solve request.problem")),
                   solver=_str_field(data, "solver", "auto", "solve request"),
                   options=_dict_field(data, "options", "solve request"))


@dataclass(frozen=True)
class SolveBatchRequest:
    """Solve many instances in one request.

    Homogeneous groups (same structure x speed model x dispatched solver)
    are evaluated through the vectorized batch kernel automatically; the
    response preserves input order.

    ``from_dict`` additionally parses the wire payloads straight into a
    columnar :class:`~repro.core.columnar.ProblemBatch` (``batch``), so the
    engine's zero-copy path starts from struct-of-arrays without a second
    pass over the JSON.  The field is in-process only: it never appears on
    the wire and requests constructed directly (e.g. with ``Problem``
    objects) simply leave it ``None``.
    """

    problems: list[Any]
    solver: str = "auto"
    options: dict[str, Any] = field(default_factory=dict)
    batch: Any = field(default=None, compare=False, repr=False)

    def to_dict(self) -> dict[str, Any]:
        return {"problems": [_problem_wire_form(p) for p in self.problems],
                "solver": self.solver, "options": dict(self.options)}

    @classmethod
    def from_dict(cls, data: Any) -> "SolveBatchRequest":
        data = _require_mapping(data, "solve-batch request")
        _check_keys(data, ("problems", "solver", "options"), ("problems",),
                    "solve-batch request")
        raw = data["problems"]
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ApiError(INVALID_REQUEST,
                           "solve-batch request.problems must be a JSON array")
        problems = [p if type(p) is dict else
                    dict(_require_mapping(p, f"solve-batch request.problems[{i}]"))
                    for i, p in enumerate(raw)]
        batch = None
        if problems:
            from ..core.columnar import ProblemBatch

            try:
                batch = ProblemBatch.from_wire(problems)
            except Exception:
                # Parsing is best effort here: anything the columnar parser
                # cannot digest falls back to the object path in the engine,
                # which owns the authoritative validation errors.
                batch = None
        return cls(problems=problems,
                   solver=_str_field(data, "solver", "auto", "solve-batch request"),
                   options=_dict_field(data, "options", "solve-batch request"),
                   batch=batch)


@dataclass(frozen=True)
class SimulateRequest:
    """Solve an instance, then Monte-Carlo simulate the resulting schedule.

    ``trials`` fault-injected executions of the solved schedule are
    aggregated into reliability / energy / makespan statistics; ``engine``
    picks the vectorized batch kernel (default) or the scalar reference
    walk of :mod:`repro.simulation.engine`.
    """

    problem: Any
    solver: str = "auto"
    trials: int = 1000
    seed: int = 0
    engine: str = "batch"
    options: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"problem": _problem_wire_form(self.problem),
                "solver": self.solver, "trials": self.trials,
                "seed": self.seed, "engine": self.engine,
                "options": dict(self.options)}

    @classmethod
    def from_dict(cls, data: Any) -> "SimulateRequest":
        data = _require_mapping(data, "simulate request")
        _check_keys(data, ("problem", "solver", "trials", "seed", "engine",
                           "options"), ("problem",), "simulate request")
        return cls(problem=dict(_require_mapping(data["problem"],
                                                 "simulate request.problem")),
                   solver=_str_field(data, "solver", "auto", "simulate request"),
                   trials=_int_field(data, "trials", 1000, "simulate request",
                                     minimum=1),
                   seed=_int_field(data, "seed", 0, "simulate request"),
                   engine=_engine_field(data, "simulate request"),
                   options=_dict_field(data, "options", "simulate request"))


@dataclass(frozen=True)
class CampaignRequest:
    """Run one registered campaign scenario through the result cache.

    ``params`` override the scenario defaults exactly like
    ``python -m repro run --param``; ``cache_dir`` defaults to the campaign
    cache (``$REPRO_CACHE_DIR`` or ``.repro-cache``).
    """

    scenario: str
    params: dict[str, Any] = field(default_factory=dict)
    smoke: bool = False
    use_cache: bool = True
    refresh: bool = False
    cache_dir: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {"scenario": self.scenario, "params": dict(self.params),
                "smoke": self.smoke, "use_cache": self.use_cache,
                "refresh": self.refresh, "cache_dir": self.cache_dir}

    @classmethod
    def from_dict(cls, data: Any) -> "CampaignRequest":
        data = _require_mapping(data, "campaign request")
        _check_keys(data, ("scenario", "params", "smoke", "use_cache",
                           "refresh", "cache_dir"), ("scenario",),
                    "campaign request")
        cache_dir = data.get("cache_dir")
        if cache_dir is not None and not isinstance(cache_dir, str):
            raise ApiError(INVALID_REQUEST,
                           "campaign request.cache_dir must be a string or null")
        return cls(scenario=_str_field(data, "scenario", "", "campaign request"),
                   params=_dict_field(data, "params", "campaign request"),
                   smoke=_bool_field(data, "smoke", False, "campaign request"),
                   use_cache=_bool_field(data, "use_cache", True,
                                         "campaign request"),
                   refresh=_bool_field(data, "refresh", False,
                                       "campaign request"),
                   cache_dir=cache_dir)


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolveResponse:
    """Outcome of one solve: energy, schedule summary and dispatch record.

    ``speeds`` maps each task id (stringified, as in the problem JSON
    schema) to its per-execution speed tuple -- two entries for a
    re-executed TRI-CRIT task.  ``cached`` flags responses served from the
    engine's result cache; ``elapsed_ms`` is the compute time of the solve
    that produced the payload (0.0 on cache hits).
    """

    energy: float
    status: str
    solver: str
    feasible: bool
    makespan: float | None
    speeds: dict[str, list[float]]
    num_reexecuted: int
    dispatch: dict[str, Any]
    cached: bool = False
    elapsed_ms: float = 0.0
    api_version: str = API_VERSION

    def to_dict(self) -> dict[str, Any]:
        # ``speeds`` / ``dispatch`` are returned by reference, not copied:
        # the engine builds them as plain dict/list JSON forms already, and
        # this method sits on the serving hot path (10k-instance batch
        # responses run it per row).  Treat the returned payload as
        # read-only.
        return {"api_version": self.api_version, "energy": self.energy,
                "status": self.status, "solver": self.solver,
                "feasible": self.feasible, "makespan": self.makespan,
                "speeds": self.speeds,
                "num_reexecuted": self.num_reexecuted,
                "dispatch": self.dispatch, "cached": self.cached,
                "elapsed_ms": self.elapsed_ms}

    @classmethod
    def from_dict(cls, data: Any) -> "SolveResponse":
        data = _require_mapping(data, "solve response")
        makespan = data.get("makespan")
        return cls(energy=float(data["energy"]), status=str(data["status"]),
                   solver=str(data["solver"]), feasible=bool(data["feasible"]),
                   makespan=None if makespan is None else float(makespan),
                   speeds={str(t): [float(x) for x in s]
                           for t, s in data.get("speeds", {}).items()},
                   num_reexecuted=int(data.get("num_reexecuted", 0)),
                   dispatch=dict(data.get("dispatch", {})),
                   cached=bool(data.get("cached", False)),
                   elapsed_ms=float(data.get("elapsed_ms", 0.0)),
                   api_version=str(data.get("api_version", API_VERSION)))


@dataclass(frozen=True)
class SolveBatchResponse:
    """Per-instance :class:`SolveResponse` list, in input order."""

    results: list[SolveResponse]
    api_version: str = API_VERSION

    @property
    def cached_count(self) -> int:
        return sum(1 for r in self.results if r.cached)

    def to_dict(self) -> dict[str, Any]:
        return {"api_version": self.api_version,
                "count": len(self.results),
                "cached_count": self.cached_count,
                "results": [r.to_dict() for r in self.results]}

    @classmethod
    def from_dict(cls, data: Any) -> "SolveBatchResponse":
        data = _require_mapping(data, "solve-batch response")
        return cls(results=[SolveResponse.from_dict(r)
                            for r in data.get("results", [])],
                   api_version=str(data.get("api_version", API_VERSION)))


@dataclass(frozen=True)
class SimulateResponse:
    """Monte-Carlo statistics of the solved schedule, plus the solve itself."""

    solve: SolveResponse
    trials: int
    success_rate: float
    success_stderr: float
    analytic_reliability: float
    mean_energy: float
    mean_makespan: float
    max_makespan: float
    mean_attempts: float
    engine: str
    api_version: str = API_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {"api_version": self.api_version, "solve": self.solve.to_dict(),
                "trials": self.trials, "success_rate": self.success_rate,
                "success_stderr": self.success_stderr,
                "analytic_reliability": self.analytic_reliability,
                "mean_energy": self.mean_energy,
                "mean_makespan": self.mean_makespan,
                "max_makespan": self.max_makespan,
                "mean_attempts": self.mean_attempts, "engine": self.engine}

    @classmethod
    def from_dict(cls, data: Any) -> "SimulateResponse":
        data = _require_mapping(data, "simulate response")
        return cls(solve=SolveResponse.from_dict(data["solve"]),
                   trials=int(data["trials"]),
                   success_rate=float(data["success_rate"]),
                   success_stderr=float(data["success_stderr"]),
                   analytic_reliability=float(data["analytic_reliability"]),
                   mean_energy=float(data["mean_energy"]),
                   mean_makespan=float(data["mean_makespan"]),
                   max_makespan=float(data["max_makespan"]),
                   mean_attempts=float(data["mean_attempts"]),
                   engine=str(data.get("engine", "batch")),
                   api_version=str(data.get("api_version", API_VERSION)))


@dataclass(frozen=True)
class CampaignResponse:
    """One scenario execution: the cached record plus provenance flags."""

    scenario: str
    key: str
    cached: bool
    elapsed_seconds: float
    result: Any
    params: dict[str, Any] = field(default_factory=dict)
    api_version: str = API_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {"api_version": self.api_version, "scenario": self.scenario,
                "key": self.key, "cached": self.cached,
                "elapsed_seconds": self.elapsed_seconds,
                "result": self.result, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Any) -> "CampaignResponse":
        data = _require_mapping(data, "campaign response")
        return cls(scenario=str(data["scenario"]), key=str(data.get("key", "")),
                   cached=bool(data.get("cached", False)),
                   elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
                   result=data.get("result"),
                   params=dict(data.get("params", {})),
                   api_version=str(data.get("api_version", API_VERSION)))
