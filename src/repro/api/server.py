"""``python -m repro serve``: the stdlib HTTP transport of the v1 API.

A :class:`~http.server.ThreadingHTTPServer` wrapping one shared
:class:`~repro.api.service.Service` (and therefore one long-lived
:class:`~repro.api.engine.Engine`): concurrent requests share the problem
pool, the result cache and the metrics.  No third-party web framework is
used -- the wire format is plain JSON over POST/GET, so ``curl`` is the whole
client story (see the README's "Serving" section).

``make_server(port=0)`` binds an ephemeral port (read it back from
``server.server_address``), which is what the tests and the smoke script
use; :func:`serve` is the blocking entry point behind the CLI.
"""

from __future__ import annotations

import argparse
import json
from collections.abc import Sequence
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .engine import Engine
from .errors import SIZE_LIMIT, ErrorResponse
from .service import Service

__all__ = ["ApiServer", "make_server", "serve", "main",
           "DEFAULT_HOST", "DEFAULT_PORT",
           "DEFAULT_MAX_BODY_BYTES", "DEFAULT_HANDLER_TIMEOUT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765
#: Request bodies larger than this are rejected with ``size_limit`` (413)
#: without ever being read into memory.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024
#: Per-connection socket timeout: a stalled client (half-sent request,
#: unread response) releases its handler thread after this many seconds
#: instead of pinning it forever.
DEFAULT_HANDLER_TIMEOUT = 60.0


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-api/1"
    protocol_version = "HTTP/1.1"
    # Response headers and body go out as separate writes; without
    # TCP_NODELAY, Nagle + delayed ACK serialises them into ~40 ms stalls
    # per keep-alive request on loopback.
    disable_nagle_algorithm = True

    def setup(self) -> None:
        # socketserver applies ``self.timeout`` to the connection in
        # ``setup()``; ``handle_one_request`` already treats a read timeout
        # as close-connection, so a stalled client cannot pin this thread.
        self.timeout = self.server.handler_timeout
        super().setup()

    # One code path for every method: the service does the routing.
    def _dispatch(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        limit = self.server.max_body_bytes
        if limit is not None and length > limit:
            # Reject before reading: an oversized (or lying) Content-Length
            # must not make the server buffer the payload first.
            error = ErrorResponse(
                SIZE_LIMIT,
                f"request body is {length} bytes, server limit is {limit}",
                detail={"content_length": length, "max_body_bytes": limit})
            self._respond(error.http_status, error.to_dict())
            self.close_connection = True
            return
        body = self.rfile.read(length) if length > 0 else b""
        status, payload = self.server.service.handle(self.command, self.path,
                                                     body)
        self._respond(status, payload)

    def _respond(self, status: int, payload: dict) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    do_GET = _dispatch
    do_POST = _dispatch

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class ApiServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`Service`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: Service, *,
                 verbose: bool = False,
                 max_body_bytes: int | None = DEFAULT_MAX_BODY_BYTES,
                 handler_timeout: float | None = DEFAULT_HANDLER_TIMEOUT) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.max_body_bytes = max_body_bytes
        self.handler_timeout = handler_timeout


def make_server(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT, *,
                engine: Engine | None = None,
                verbose: bool = False,
                max_body_bytes: int | None = DEFAULT_MAX_BODY_BYTES,
                handler_timeout: float | None = DEFAULT_HANDLER_TIMEOUT) -> ApiServer:
    """Build (and bind) the API server without starting its loop.

    ``port=0`` binds an ephemeral port; the chosen one is in
    ``server.server_address[1]``.  ``max_body_bytes`` / ``handler_timeout``
    are the request-hardening knobs (None disables either).
    """
    return ApiServer((host, port), Service(engine), verbose=verbose,
                     max_body_bytes=max_body_bytes,
                     handler_timeout=handler_timeout)


def serve(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT, *,
          engine: Engine | None = None, verbose: bool = False,
          max_body_bytes: int | None = DEFAULT_MAX_BODY_BYTES,
          handler_timeout: float | None = DEFAULT_HANDLER_TIMEOUT) -> int:
    """Run the server until interrupted (the ``python -m repro serve`` loop)."""
    server = make_server(host, port, engine=engine, verbose=verbose,
                         max_body_bytes=max_body_bytes,
                         handler_timeout=handler_timeout)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro api v1 listening on http://{bound_host}:{bound_port} "
          f"(POST /v1/solve, /v1/solve-batch, /v1/simulate, /v1/campaign; "
          f"GET /v1/solvers, /healthz, /metrics)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve the repro v1 JSON API over HTTP "
                    "(stdlib ThreadingHTTPServer; no extra dependencies).")
    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"bind address (default {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port, 0 for ephemeral (default {DEFAULT_PORT})")
    parser.add_argument("--max-tasks", type=int, default=None,
                        help="per-instance task cap (size_limit above it)")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="per-request instance cap for /v1/solve-batch")
    parser.add_argument("--cache-size", type=int, default=None,
                        help="result-cache capacity (LRU entries)")
    parser.add_argument("--max-body-bytes", type=int,
                        default=DEFAULT_MAX_BODY_BYTES,
                        help="reject request bodies larger than this with "
                             f"413 size_limit (default {DEFAULT_MAX_BODY_BYTES}; "
                             "0 disables the cap)")
    parser.add_argument("--handler-timeout", type=float,
                        default=DEFAULT_HANDLER_TIMEOUT,
                        help="per-connection socket timeout in seconds so a "
                             "stalled client frees its thread (default "
                             f"{DEFAULT_HANDLER_TIMEOUT:.0f}; 0 disables)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request line")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    overrides = {}
    if args.max_tasks is not None:
        overrides["max_tasks"] = args.max_tasks
    if args.max_batch is not None:
        overrides["max_batch"] = args.max_batch
    if args.cache_size is not None:
        overrides["cache_size"] = args.cache_size
    engine = Engine(**overrides) if overrides else None
    return serve(args.host, args.port, engine=engine, verbose=args.verbose,
                 max_body_bytes=args.max_body_bytes or None,
                 handler_timeout=args.handler_timeout or None)
