"""``python -m repro serve``: the stdlib HTTP transport of the v1 API.

A :class:`~http.server.ThreadingHTTPServer` wrapping one shared
:class:`~repro.api.service.Service` (and therefore one long-lived
:class:`~repro.api.engine.Engine`): concurrent requests share the problem
pool, the result cache and the metrics.  No third-party web framework is
used -- the wire format is plain JSON over POST/GET, so ``curl`` is the whole
client story (see the README's "Serving" section).

Beyond the single process, this module owns the serving topology:

* **graceful drain** -- SIGTERM/SIGINT stop the accept loop, wait up to
  ``--drain-grace`` seconds for in-flight handlers to finish (responses go
  out with ``Connection: close``), then exit; a mid-request kill no longer
  drops the connection;
* **multi-worker fleets** -- ``--workers N`` pre-forks N single-worker
  child processes sharing one port via ``SO_REUSEPORT`` (the kernel load
  balances accepts); where the option is unavailable the children bind
  ephemeral ports behind a tiny pass-through proxy in the parent.  Workers
  share the persistent result store (``--store-dir``), so a solve computed
  by one worker is a disk hit for every other -- and for the next boot.
  Dead workers are respawned; shutdown forwards the signal and waits for
  every child's own drain.

``make_server(port=0)`` binds an ephemeral port (read it back from
``server.server_address``), which is what the tests and the smoke script
use; :func:`serve` is the blocking entry point behind the CLI.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from collections.abc import Sequence
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from ..core.gcscope import paused_gc
from ..store import ResultStore, StoreError, parse_bytes, resolve_store_root
from .engine import Engine
from .errors import SIZE_LIMIT, ErrorResponse
from .service import Service

__all__ = ["ApiServer", "make_server", "serve", "main", "build_parser",
           "DEFAULT_HOST", "DEFAULT_PORT",
           "DEFAULT_MAX_BODY_BYTES", "DEFAULT_HANDLER_TIMEOUT",
           "DEFAULT_DRAIN_GRACE"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765
#: Request bodies larger than this are rejected with ``size_limit`` (413)
#: without ever being read into memory.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024
#: Per-connection socket timeout: a stalled client (half-sent request,
#: unread response) releases its handler thread after this many seconds
#: instead of pinning it forever.
DEFAULT_HANDLER_TIMEOUT = 60.0
#: Seconds a shutdown waits for in-flight requests before giving up.
DEFAULT_DRAIN_GRACE = 10.0

#: Worker banner (also parsed by ``repro.campaign.distributed``): keep the
#: ``listening on http://host:port`` shape stable.
_BANNER = re.compile(r"listening on http://([0-9.]+):(\d+)")

#: Worker-readiness deadline when booting a fleet.
_WORKER_STARTUP_TIMEOUT = 30.0
#: Fleet-wide respawn budget: a worker that keeps crashing must take the
#: fleet down loudly instead of flapping forever.
_MAX_RESPAWNS = 20


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-api/1"
    protocol_version = "HTTP/1.1"
    # Response headers and body go out as separate writes; without
    # TCP_NODELAY, Nagle + delayed ACK serialises them into ~40 ms stalls
    # per keep-alive request on loopback.
    disable_nagle_algorithm = True

    def setup(self) -> None:
        # socketserver applies ``self.timeout`` to the connection in
        # ``setup()``; ``handle_one_request`` already treats a read timeout
        # as close-connection, so a stalled client cannot pin this thread.
        self.timeout = self.server.handler_timeout
        super().setup()

    # One code path for every method: the service does the routing.
    def _dispatch(self) -> None:
        self.server.begin_request()
        try:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                length = 0
            limit = self.server.max_body_bytes
            if limit is not None and length > limit:
                # Reject before reading: an oversized (or lying)
                # Content-Length must not make the server buffer the
                # payload first.
                error = ErrorResponse(
                    SIZE_LIMIT,
                    f"request body is {length} bytes, server limit is {limit}",
                    detail={"content_length": length,
                            "max_body_bytes": limit})
                self._respond(error.http_status, error.to_dict())
                self.close_connection = True
                return
            # Automatic GC rescans a large request's still-live allocations
            # (parsed JSON, columnar rows, results) dozens of times while it
            # is being handled; pause it for the request scope and reclaim
            # with one young-generation sweep after the response is flushed.
            with paused_gc():
                body = self.rfile.read(length) if length > 0 else b""
                status, payload = self.server.service.handle(self.command,
                                                             self.path, body)
                self._respond(status, payload)
        finally:
            self.server.end_request()

    def _respond(self, status: int, payload: dict) -> None:
        # Compact separators: on a 10k-instance solve-batch response the
        # default ", "/": " padding is ~15% of several megabytes.
        # repro: allow[REP002] -- HTTP response body, never hashed into a key
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        # Which process of a --workers fleet answered; headers are additive
        # and outside the frozen v1 JSON schema.
        self.send_header("X-Repro-Worker", str(os.getpid()))
        if self.server.draining:
            # The response still goes out, but keep-alive would leave the
            # client holding a socket into a dying server.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(data)

    do_GET = _dispatch
    do_POST = _dispatch

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class ApiServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`Service`.

    Tracks in-flight requests so :meth:`drain` can shut down without
    dropping work; ``reuse_port`` opts the listening socket into
    ``SO_REUSEPORT`` so several worker processes can share one port.
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: Service, *,
                 verbose: bool = False,
                 max_body_bytes: int | None = DEFAULT_MAX_BODY_BYTES,
                 handler_timeout: float | None = DEFAULT_HANDLER_TIMEOUT,
                 reuse_port: bool = False) -> None:
        # bind_and_activate=False: socket options (SO_REUSEPORT) must be
        # set between socket creation and bind.
        super().__init__(address, _Handler, bind_and_activate=False)
        self.service = service
        self.verbose = verbose
        self.max_body_bytes = max_body_bytes
        self.handler_timeout = handler_timeout
        self.reuse_port = reuse_port
        self.draining = False
        self._inflight = 0  # guarded-by: _inflight_cond
        self._inflight_cond = threading.Condition()
        try:
            if reuse_port:
                if not hasattr(socket, "SO_REUSEPORT"):
                    raise OSError("SO_REUSEPORT is not supported here")
                self.socket.setsockopt(socket.SOL_SOCKET,
                                       socket.SO_REUSEPORT, 1)
            self.server_bind()
            self.server_activate()
        except BaseException:
            self.server_close()
            raise

    # -- in-flight accounting ------------------------------------------
    def begin_request(self) -> None:
        with self._inflight_cond:
            self._inflight += 1

    def end_request(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            if self._inflight <= 0:
                self._inflight_cond.notify_all()

    @property
    def inflight(self) -> int:
        with self._inflight_cond:
            return self._inflight

    def drain(self, grace: float | None = DEFAULT_DRAIN_GRACE) -> bool:
        """Stop accepting and wait (bounded) for in-flight handlers.

        Must be called while ``serve_forever`` runs in another thread
        (``shutdown`` synchronises with the poll loop).  Returns True when
        every in-flight request finished within the grace period.
        """
        self.draining = True
        self.shutdown()
        deadline = (time.monotonic() + grace) if grace is not None else None
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = (deadline - time.monotonic()
                             if deadline is not None else None)
                if remaining is not None and remaining <= 0:
                    return False
                self._inflight_cond.wait(remaining)
        return True


def make_server(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT, *,
                engine: Engine | None = None,
                verbose: bool = False,
                max_body_bytes: int | None = DEFAULT_MAX_BODY_BYTES,
                handler_timeout: float | None = DEFAULT_HANDLER_TIMEOUT,
                reuse_port: bool = False) -> ApiServer:
    """Build (and bind) the API server without starting its loop.

    ``port=0`` binds an ephemeral port; the chosen one is in
    ``server.server_address[1]``.  ``max_body_bytes`` / ``handler_timeout``
    are the request-hardening knobs (None disables either).
    """
    return ApiServer((host, port), Service(engine), verbose=verbose,
                     max_body_bytes=max_body_bytes,
                     handler_timeout=handler_timeout,
                     reuse_port=reuse_port)


def serve(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT, *,
          engine: Engine | None = None, verbose: bool = False,
          max_body_bytes: int | None = DEFAULT_MAX_BODY_BYTES,
          handler_timeout: float | None = DEFAULT_HANDLER_TIMEOUT,
          reuse_port: bool = False,
          drain_grace: float | None = DEFAULT_DRAIN_GRACE) -> int:
    """Run one server until SIGTERM/SIGINT, then drain and exit.

    The accept loop runs in a helper thread while the calling thread waits
    for a stop signal; on SIGTERM (or Ctrl-C) no new connections are
    accepted, in-flight requests get up to ``drain_grace`` seconds to
    finish (their responses carry ``Connection: close``), and only then
    does the process exit.
    """
    server = make_server(host, port, engine=engine, verbose=verbose,
                         max_body_bytes=max_body_bytes,
                         handler_timeout=handler_timeout,
                         reuse_port=reuse_port)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro api v1 listening on http://{bound_host}:{bound_port} "
          f"(POST /v1/solve, /v1/solve-batch, /v1/simulate, /v1/campaign; "
          f"GET /v1/solvers, /v1/store, /healthz, /metrics) [pid {os.getpid()}]",
          flush=True)
    stop = threading.Event()
    installed: list[tuple[signal.Signals, object]] = []
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum: int, frame: Any) -> None:  # noqa: ARG001 - signal signature
            stop.set()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                installed.append((sig, signal.signal(sig, _on_signal)))
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
    loop = threading.Thread(target=server.serve_forever, daemon=True,
                            name="repro-serve-accept")
    loop.start()
    try:
        # Periodic wakeups keep the main thread responsive to signals on
        # platforms where a blocked wait() defers handler delivery.
        while not stop.wait(0.2):
            pass
    except KeyboardInterrupt:
        pass
    print(f"[pid {os.getpid()}] draining "
          f"({server.inflight} in flight, grace {drain_grace}s)", flush=True)
    clean = server.drain(drain_grace)
    server.server_close()
    loop.join(timeout=5)
    for sig, previous in installed:
        signal.signal(sig, previous)
    print(f"[pid {os.getpid()}] shutdown "
          f"{'complete' if clean else 'after grace expired'}", flush=True)
    return 0


# ----------------------------------------------------------------------
# multi-worker fleets
# ----------------------------------------------------------------------
def reuse_port_supported(host: str = DEFAULT_HOST) -> bool:
    """Whether this platform accepts SO_REUSEPORT on a TCP listener."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            probe.bind((host, 0))
        return True
    except OSError:
        return False


def _child_env() -> dict[str, str]:
    """Environment for worker children: current env plus this package's
    ``src`` root on PYTHONPATH, so ``python -m repro`` resolves even when
    the parent was launched from an arbitrary directory."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    if existing:
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src_root + os.pathsep + existing
    else:
        env["PYTHONPATH"] = src_root
    return env


class _Worker:
    """One supervised child process of a fleet."""

    def __init__(self, cmd: list[str]) -> None:
        self.cmd = cmd
        self.proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                                     stderr=subprocess.STDOUT, text=True,
                                     env=_child_env())
        self.port: int | None = None
        self.ready = threading.Event()
        self._pump = threading.Thread(target=self._pump_output, daemon=True)
        self._pump.start()

    def _pump_output(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            line = line.rstrip("\n")
            match = _BANNER.search(line)
            if match:
                self.port = int(match.group(2))
                self.ready.set()
                # Defuse the banner before re-printing: anything scanning
                # *this* process's stdout for "listening on" (the
                # distributed-campaign spawner does) must find the fleet
                # banner, not a worker's.
                line = line.replace("listening on", "serving")
            print(f"[worker {self.proc.pid}] {line}", flush=True)
        self.ready.set()        # EOF: wake any waiter (startup failure)


class _PassThroughProxy:
    """Fallback front door when SO_REUSEPORT is unavailable: a minimal
    TCP pass-through that round-robins whole connections across worker
    backends.  No HTTP parsing -- bytes are spliced both ways until either
    side closes."""

    def __init__(self, host: str, port: int,
                 backends: Sequence[tuple[str, int]]) -> None:
        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._backends = list(backends)  # guarded-by: _lock
        self._next = 0  # guarded-by: _lock
        self._lock = threading.Lock()
        self._stopped = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop,
                                        daemon=True, name="repro-proxy")

    def start(self) -> None:
        self._thread.start()

    def set_backends(self, backends: Sequence[tuple[str, int]]) -> None:
        with self._lock:
            self._backends = list(backends)

    def _pick_order(self) -> list[tuple[str, int]]:
        with self._lock:
            if not self._backends:
                return []
            start = self._next % len(self._backends)
            self._next += 1
            return self._backends[start:] + self._backends[:start]

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return              # listener closed by stop()
            threading.Thread(target=self._bridge, args=(client,),
                             daemon=True).start()

    def _bridge(self, client: socket.socket) -> None:
        upstream = None
        # First healthy backend wins; a dead worker (being respawned) is
        # skipped instead of failing the client connection.
        for backend in self._pick_order():
            try:
                upstream = socket.create_connection(backend, timeout=10)
                break
            except OSError:
                continue
        if upstream is None:
            client.close()
            return
        done = threading.Event()

        def pipe(src: socket.socket, dst: socket.socket) -> None:
            try:
                while True:
                    chunk = src.recv(65536)
                    if not chunk:
                        break
                    dst.sendall(chunk)
            except OSError:
                pass
            finally:
                try:
                    dst.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                done.set()

        threading.Thread(target=pipe, args=(client, upstream),
                         daemon=True).start()
        pipe(upstream, client)
        done.wait(timeout=30)
        for sock in (client, upstream):
            try:
                sock.close()
            except OSError:
                pass

    def stop(self) -> None:
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass


def _worker_cmd(args: argparse.Namespace, port: int, *,
                reuse_port: bool) -> list[str]:
    """The ``python -m repro serve`` command line for one fleet child."""
    cmd = [sys.executable, "-m", "repro", "serve",
           "--host", args.host, "--port", str(port), "--workers", "1",
           "--max-body-bytes", str(args.max_body_bytes),
           "--handler-timeout", str(args.handler_timeout),
           "--drain-grace", str(args.drain_grace)]
    if reuse_port:
        cmd.append("--reuse-port")
    for flag, value in (("--max-tasks", args.max_tasks),
                        ("--max-batch", args.max_batch),
                        ("--cache-size", args.cache_size)):
        if value is not None:
            cmd.extend([flag, str(value)])
    if args.no_store:
        cmd.append("--no-store")
    else:
        # Resolve in the parent so every worker shares one absolute root
        # (the whole point of the tier) regardless of env differences.
        cmd.extend(["--store-dir", str(resolve_store_root(args.store_dir))])
        if args.store_max_bytes:
            cmd.extend(["--store-max-bytes", str(args.store_max_bytes)])
    if args.verbose:
        cmd.append("--verbose")
    return cmd


def _serve_fleet(args: argparse.Namespace) -> int:
    """Parent of a ``--workers N`` fleet: spawn, supervise, drain.

    With SO_REUSEPORT every child listens on the same port and the kernel
    balances accepted connections; otherwise children take ephemeral ports
    behind a :class:`_PassThroughProxy` in this process.  Either way the
    parent prints one fleet banner once the workers are up, respawns dead
    children, and on SIGTERM/SIGINT forwards the signal so each child runs
    its own graceful drain.
    """
    use_reuse_port = reuse_port_supported(args.host)
    placeholder: socket.socket | None = None
    port = args.port
    if use_reuse_port and port == 0:
        # Resolve the ephemeral port up front: a bound (non-listening)
        # placeholder with SO_REUSEPORT reserves the number while the
        # children bind it for real, then goes away.
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        placeholder.bind((args.host, 0))
        port = placeholder.getsockname()[1]

    def spawn() -> _Worker:
        child_port = port if use_reuse_port else 0
        return _Worker(_worker_cmd(args, child_port,
                                   reuse_port=use_reuse_port))

    workers = [spawn() for _ in range(args.workers)]
    proxy: _PassThroughProxy | None = None
    try:
        deadline = time.monotonic() + _WORKER_STARTUP_TIMEOUT
        for worker in workers:
            worker.ready.wait(max(0.1, deadline - time.monotonic()))
            if worker.port is None:
                raise RuntimeError(
                    f"worker pid {worker.proc.pid} did not report a port "
                    f"within {_WORKER_STARTUP_TIMEOUT:.0f}s "
                    f"(exit code {worker.proc.poll()})")
        if placeholder is not None:
            placeholder.close()
            placeholder = None
        if not use_reuse_port:
            proxy = _PassThroughProxy(
                args.host, port,
                [(args.host, w.port) for w in workers if w.port])
            proxy.start()
            port = proxy.address[1]
        mode = "SO_REUSEPORT" if use_reuse_port else "parent proxy"
        print(f"repro api v1 fleet listening on http://{args.host}:{port} "
              f"({args.workers} workers via {mode}) [pid {os.getpid()}]",
              flush=True)

        stop = threading.Event()

        def _on_signal(signum: int, frame: Any) -> None:  # noqa: ARG001 - signal signature
            stop.set()
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, _on_signal)

        respawns = 0
        try:
            while not stop.wait(0.2):
                for i, worker in enumerate(workers):
                    if worker.proc.poll() is None or stop.is_set():
                        continue
                    respawns += 1
                    if respawns > _MAX_RESPAWNS:
                        print(f"fleet: worker respawn budget "
                              f"({_MAX_RESPAWNS}) exhausted, shutting down",
                              flush=True)
                        stop.set()
                        break
                    print(f"fleet: worker pid {worker.proc.pid} exited "
                          f"with {worker.proc.returncode}; respawning",
                          flush=True)
                    replacement = spawn()
                    replacement.ready.wait(_WORKER_STARTUP_TIMEOUT)
                    workers[i] = replacement
                    if proxy is not None:
                        proxy.set_backends([(args.host, w.port)
                                            for w in workers if w.port])
        except KeyboardInterrupt:
            pass

        print(f"fleet: stopping {len(workers)} workers "
              f"(grace {args.drain_grace}s each)", flush=True)
        for worker in workers:
            if worker.proc.poll() is None:
                worker.proc.send_signal(signal.SIGTERM)
        wait_deadline = time.monotonic() + args.drain_grace + 5.0
        for worker in workers:
            try:
                worker.proc.wait(max(0.1, wait_deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait(timeout=5)
        print("fleet: shutdown complete", flush=True)
        return 0
    finally:
        if placeholder is not None:
            placeholder.close()
        if proxy is not None:
            proxy.stop()
        for worker in workers:
            if worker.proc.poll() is None:
                worker.proc.kill()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve the repro v1 JSON API over HTTP "
                    "(stdlib ThreadingHTTPServer; no extra dependencies).")
    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"bind address (default {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port, 0 for ephemeral (default {DEFAULT_PORT})")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes sharing the port and the "
                             "result store (default 1; >1 pre-forks via "
                             "SO_REUSEPORT, or a parent proxy without it)")
    parser.add_argument("--max-tasks", type=int, default=None,
                        help="per-instance task cap (size_limit above it)")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="per-request instance cap for /v1/solve-batch")
    parser.add_argument("--cache-size", type=int, default=None,
                        help="result-cache capacity (LRU entries)")
    parser.add_argument("--store-dir", default=None,
                        help="persistent result-store root shared by all "
                             "workers and campaign runs (default "
                             "$REPRO_STORE_DIR, $REPRO_CACHE_DIR or "
                             ".repro-cache)")
    parser.add_argument("--no-store", action="store_true",
                        help="serve fully in-memory: no persistent result "
                             "store (results die with the process)")
    parser.add_argument("--store-max-bytes", type=parse_bytes, default=0,
                        help="byte budget for the store (500000, 100k, 64m, "
                             "2g); writes evict least-recently-used records "
                             "beyond it (0 = unlimited)")
    parser.add_argument("--max-body-bytes", type=int,
                        default=DEFAULT_MAX_BODY_BYTES,
                        help="reject request bodies larger than this with "
                             f"413 size_limit (default {DEFAULT_MAX_BODY_BYTES}; "
                             "0 disables the cap)")
    parser.add_argument("--handler-timeout", type=float,
                        default=DEFAULT_HANDLER_TIMEOUT,
                        help="per-connection socket timeout in seconds so a "
                             "stalled client frees its thread (default "
                             f"{DEFAULT_HANDLER_TIMEOUT:.0f}; 0 disables)")
    parser.add_argument("--drain-grace", type=float,
                        default=DEFAULT_DRAIN_GRACE,
                        help="seconds to wait for in-flight requests on "
                             "SIGTERM/SIGINT before exiting (default "
                             f"{DEFAULT_DRAIN_GRACE:.0f}; 0 exits "
                             "immediately after stopping the accept loop)")
    parser.add_argument("--reuse-port", action="store_true",
                        help="bind with SO_REUSEPORT (used by fleet workers; "
                             "also lets an external supervisor run several "
                             "servers on one port)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request line")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", flush=True)
        return 2
    if args.workers > 1:
        return _serve_fleet(args)
    overrides = {}
    if args.max_tasks is not None:
        overrides["max_tasks"] = args.max_tasks
    if args.max_batch is not None:
        overrides["max_batch"] = args.max_batch
    if args.cache_size is not None:
        overrides["cache_size"] = args.cache_size
    store = None
    if not args.no_store:
        try:
            store = ResultStore(args.store_dir,
                                max_bytes=args.store_max_bytes or None)
        except StoreError as exc:
            print(f"cannot open result store: {exc}", flush=True)
            return 2
    engine = Engine(store=store, **overrides)
    return serve(args.host, args.port, engine=engine, verbose=args.verbose,
                 max_body_bytes=args.max_body_bytes or None,
                 handler_timeout=args.handler_timeout or None,
                 reuse_port=args.reuse_port,
                 drain_grace=args.drain_grace if args.drain_grace > 0 else 0.0)
