"""``repro.api``: the versioned v1 facade -- the library's single front door.

Every consumer (the CLI, the campaign runner, the experiment drivers, the
HTTP service, external clients) goes through this package instead of
reaching into ``repro.solvers`` / ``repro.simulation`` / ``repro.campaign``
with four different call conventions:

* :mod:`repro.api.types` -- frozen, JSON-round-trippable request/response
  dataclasses built on the problem schema of :mod:`repro.core.problem_io`;
* :mod:`repro.api.errors` -- stable machine-readable error codes
  (``inadmissible_solver``, ``no_admissible_solver``, ``invalid_problem``,
  ``size_limit``, ...) and the :class:`ApiError` carrier;
* :mod:`repro.api.engine` -- the long-lived :class:`Engine` owning the
  shared hot-path state: the problem pool (interned instances with their
  memoized solver contexts), the LRU result cache, and the batched submit
  path that routes homogeneous groups through the vectorized kernels;
* :mod:`repro.api.service` / :mod:`repro.api.server` -- the HTTP surface
  behind ``python -m repro serve``.

In process, the module-level helpers below operate on a shared default
engine, so independent call sites (an ablation grid here, a Pareto sweep
there) transparently share caches::

    import repro.api as api

    result, cached = api.submit(problem)             # SolveResult, hit flag
    pairs = api.submit_batch(problems)               # vectorized + cached
    response = api.solve(api.SolveRequest(problem))  # wire-typed response
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..core.problems import SolveResult

from .engine import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_TASKS,
    Engine,
    problem_content_key,
)
from .errors import (
    ERROR_CODES,
    HTTP_STATUS,
    ApiError,
    ErrorResponse,
    error_from_exception,
)
from .service import ROUTES, Service
from .types import (
    API_VERSION,
    CampaignRequest,
    CampaignResponse,
    SimulateRequest,
    SimulateResponse,
    SolveBatchRequest,
    SolveBatchResponse,
    SolveRequest,
    SolveResponse,
)

__all__ = [
    "API_VERSION",
    "Engine",
    "Service",
    "ApiError",
    "ErrorResponse",
    "error_from_exception",
    "ERROR_CODES",
    "HTTP_STATUS",
    "ROUTES",
    "SolveRequest",
    "SolveBatchRequest",
    "SimulateRequest",
    "CampaignRequest",
    "SolveResponse",
    "SolveBatchResponse",
    "SimulateResponse",
    "CampaignResponse",
    "problem_content_key",
    "default_engine",
    "reset_default_engine",
    "submit",
    "submit_batch",
    "solve",
    "run_scenario",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_TASKS",
]

# ----------------------------------------------------------------------
# the shared in-process engine
# ----------------------------------------------------------------------
_default_engine: Engine | None = None  # guarded-by: _default_lock
_default_lock = threading.Lock()


def default_engine() -> Engine:
    """The process-wide shared :class:`Engine` (created on first use).

    The experiment drivers and the convenience helpers all route through
    it, so repeated solves of the same instance anywhere in the process hit
    one result cache.  It runs *uncapped* (``max_tasks=None``,
    ``max_batch=None``): request-size admission is a service concern, and a
    library caller solving a large instance in process must not be turned
    away.  Servers construct their own ``Engine`` (with the service-default
    caps) instead.
    """
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            _default_engine = Engine(max_tasks=None, max_batch=None)
        return _default_engine


def reset_default_engine() -> None:
    """Drop the shared engine (tests; the next call builds a fresh one)."""
    global _default_engine
    with _default_lock:
        _default_engine = None


# ----------------------------------------------------------------------
# convenience front doors on the shared engine
# ----------------------------------------------------------------------
def submit(problem: Any, solver: str = "auto",
           **kwargs: Any) -> "tuple[SolveResult, bool]":
    """``default_engine().submit(...)``: solve one instance, with caching."""
    return default_engine().submit(problem, solver, **kwargs)


def submit_batch(problems: Sequence[Any], solver: str = "auto",
                 **kwargs: Any) -> "list[tuple[SolveResult, bool]]":
    """``default_engine().submit_batch(...)``: vectorized cached batch solve."""
    return default_engine().submit_batch(problems, solver, **kwargs)


def solve(request: SolveRequest) -> SolveResponse:
    """``default_engine().solve(...)``: wire-typed single solve."""
    return default_engine().solve(request)


def run_scenario(scenario: str, params: Mapping[str, Any]) -> Any:
    """Execute one registered campaign scenario by name.

    The single scenario-execution front door: the campaign runner's workers
    and the ``/v1/campaign`` endpoint both land here, so scenario dispatch
    semantics (registry lookup, keyword-only invocation) live in one place.
    """
    from ..campaign.registry import get_scenario

    return get_scenario(scenario).runner(**dict(params))
