"""Energy / deadline / reliability trade-off curves.

The conclusion of the paper frames the long-term goal as exploring "the best
trade-offs that can be achieved" between execution time, energy and
reliability.  This module traces those trade-off curves for a given mapped
instance:

* :func:`energy_deadline_curve` -- the BI-CRIT Pareto front: optimal energy as
  a function of the deadline, from the tightest feasible deadline (everything
  at ``fmax``) up to a chosen slack.  Under the CONTINUOUS model the curve is
  ``E(D) ~ 1/D^2`` segments (until speed bounds clamp), which the tests check.
* :func:`energy_reliability_curve` -- the TRI-CRIT trade-off: optimal (or
  best-known) energy as a function of the reliability threshold speed
  ``f_rel``, quantifying the price of reliability for a fixed deadline.
* :func:`pareto_filter` -- generic non-dominated filtering used by both.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from ..api import default_engine
from ..core.problems import BiCritProblem, TriCritProblem
from ..core.reliability import ReliabilityModel
from ..continuous.exhaustive import best_known_tricrit
from ..platform.mapping import Mapping
from ..platform.platform import Platform

__all__ = [
    "ParetoPoint",
    "pareto_filter",
    "energy_deadline_curve",
    "energy_reliability_curve",
]


@dataclass(frozen=True)
class ParetoPoint:
    """One point of a trade-off curve."""

    deadline: float
    energy: float
    reliability_speed: float | None = None
    num_reexecuted: int = 0
    feasible: bool = True


def pareto_filter(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """Keep the non-dominated points (smaller deadline and smaller energy win)."""
    kept: list[ParetoPoint] = []
    for p in sorted(points, key=lambda q: (q.deadline, q.energy)):
        if not p.feasible:
            continue
        if kept and kept[-1].energy <= p.energy + 1e-12:
            continue
        kept.append(p)
    return kept


def energy_deadline_curve(mapping: Mapping, platform: Platform, *,
                          slacks: Sequence[float] = (1.0, 1.2, 1.5, 2.0, 3.0, 4.0),
                          solver: Callable[[BiCritProblem], object] | None = None,
                          engine: str = "batch") -> list[ParetoPoint]:
    """Optimal energy as a function of the deadline (BI-CRIT Pareto front).

    ``slacks`` multiply the tightest feasible deadline (the makespan of the
    mapping at ``fmax``).  A custom ``solver`` taking a
    :class:`BiCritProblem` can be supplied to trace the curve under a
    discrete model (e.g. the VDD-HOPPING LP); it defaults to the shared
    :func:`repro.api.default_engine`, whose exact-first auto-dispatch also
    handles discrete platforms and serves repeated sweeps from its result
    cache.  With the default dispatch, ``engine="batch"`` (the default)
    solves the whole deadline sweep through the engine's batched submit
    path (one grouped array program); ``engine="scalar"`` keeps the
    per-point loop (a custom ``solver`` callable always takes the per-point
    path).
    """
    if engine not in ("batch", "scalar"):
        raise ValueError(f"unknown engine {engine!r} (batch or scalar)")
    graph = mapping.graph
    augmented = mapping.augmented_graph()
    finish: dict = {}
    for t in augmented.topological_order():
        s = max((finish[p] for p in augmented.predecessors(t)), default=0.0)
        finish[t] = s + graph.weight(t) / platform.fmax
    base = max(finish.values(), default=0.0)

    deadlines = [slack * base for slack in slacks]
    problems = [BiCritProblem(mapping, platform, deadline)
                for deadline in deadlines]
    if solver is not None:
        results: Sequence[object] = [solver(problem) for problem in problems]
    elif engine == "batch":
        results = [r for r, _ in default_engine().submit_batch(problems)]
    else:
        results = [default_engine().submit(problem)[0] for problem in problems]

    points = []
    for deadline, result in zip(deadlines, results):
        feasible = getattr(result, "feasible", False)
        energy = getattr(result, "energy", float("inf"))
        points.append(ParetoPoint(deadline=deadline, energy=energy,
                                  feasible=bool(feasible)))
    return points


def energy_reliability_curve(mapping: Mapping, platform: Platform, deadline: float, *,
                             frel_values: Sequence[float] | None = None,
                             lambda0: float = 1e-4, sensitivity: float = 3.0,
                             exhaustive_limit: int = 8) -> list[ParetoPoint]:
    """Best-known TRI-CRIT energy as a function of the reliability threshold.

    ``frel_values`` defaults to an even sweep from ``fmin`` (no effective
    reliability constraint beyond feasibility) to ``fmax`` (the strictest
    threshold).  Larger ``f_rel`` means a stricter constraint, hence
    (weakly) larger energy -- the price of reliability.
    """
    if frel_values is None:
        frel_values = np.linspace(platform.fmin, platform.fmax, 5)
    points = []
    for frel in frel_values:
        model = ReliabilityModel(fmin=platform.fmin, fmax=platform.fmax,
                                 lambda0=lambda0, sensitivity=sensitivity,
                                 frel=float(frel))
        problem = TriCritProblem(mapping, platform, deadline,
                                 reliability_model=model)
        result = best_known_tricrit(problem, exhaustive_limit=exhaustive_limit)
        schedule = result.schedule
        points.append(ParetoPoint(
            deadline=deadline,
            energy=result.energy,
            reliability_speed=float(frel),
            num_reexecuted=schedule.num_reexecuted() if schedule is not None else 0,
            feasible=result.feasible,
        ))
    return points
