"""Experiment harness: instance suites, experiment runners and reporting.

One ``run_*`` function per experiment of the index E1-E13 (tabulated in the
root ``README.md``); the campaign registry (``repro.campaign``) names each
runner as a parameterised scenario, and the benchmark modules under
``benchmarks/`` are thin wrappers over those registry entries that print
the tables and time the interesting kernels with pytest-benchmark.  The
drivers obtain their solvers through the registry dispatcher
(:func:`repro.solvers.solve`), so every experiment exercises the same entry
points the ablation sweep (E13) and the public API expose.

Every ``run_*`` entry point accepts ``seed: int | numpy.random.Generator |
None`` (resolved through :func:`repro.core.rng.resolve_seed`): ``None``
selects the experiment's documented default seed, an integer reproduces a
specific table, and a generator deterministically derives the seed from the
generator's stream.
"""

from .adaptation_experiments import (
    run_mapping_ablation_experiment,
    run_reliability_simulation_experiment,
    run_vdd_rounding_experiment,
)
from .closed_form_experiments import (
    run_convex_dag_experiment,
    run_fork_closed_form_experiment,
    run_series_parallel_experiment,
)
from .discrete_experiments import (
    run_incremental_approx_experiment,
    run_np_hardness_experiment,
    run_vdd_lp_experiment,
)
from .instances import (
    DEFAULT_SPEED_RANGE,
    InstanceSpec,
    bicrit_problem,
    chain_suite,
    fork_suite,
    layered_suite,
    make_platform,
    mixed_suite,
    series_parallel_suite,
    tricrit_problem,
)
from .pareto import (
    ParetoPoint,
    energy_deadline_curve,
    energy_reliability_curve,
    pareto_filter,
)
from .reporting import ascii_table, format_value, print_table, rows_to_table
from .solver_ablation import ABLATION_FAMILIES, run_solver_ablation_experiment
from .tricrit_experiments import (
    run_heuristic_comparison_experiment,
    run_tricrit_chain_experiment,
    run_tricrit_fork_experiment,
)

__all__ = [
    "InstanceSpec",
    "DEFAULT_SPEED_RANGE",
    "make_platform",
    "bicrit_problem",
    "tricrit_problem",
    "chain_suite",
    "fork_suite",
    "layered_suite",
    "series_parallel_suite",
    "mixed_suite",
    "ascii_table",
    "rows_to_table",
    "print_table",
    "format_value",
    "ParetoPoint",
    "pareto_filter",
    "energy_deadline_curve",
    "energy_reliability_curve",
    "run_fork_closed_form_experiment",
    "run_series_parallel_experiment",
    "run_convex_dag_experiment",
    "run_vdd_lp_experiment",
    "run_np_hardness_experiment",
    "run_incremental_approx_experiment",
    "run_tricrit_chain_experiment",
    "run_tricrit_fork_experiment",
    "run_heuristic_comparison_experiment",
    "run_vdd_rounding_experiment",
    "run_reliability_simulation_experiment",
    "run_mapping_ablation_experiment",
    "run_solver_ablation_experiment",
    "ABLATION_FAMILIES",
]
