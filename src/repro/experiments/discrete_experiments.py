"""Experiments E4-E6: the discrete speed models.

* E4 (VDD-HOPPING LP): the LP optimum is sandwiched between the CONTINUOUS
  lower bound and the best single-mode (DISCRETE) schedule, its solutions
  use at most two consecutive speeds per task, and the scipy-HiGHS and the
  in-house simplex backends agree.
* E5 (NP-completeness of DISCRETE/INCREMENTAL): the executable 2-PARTITION
  reduction answers 2-PARTITION correctly through the exact scheduling
  solver, and the search effort of the exact solvers grows exponentially
  with the instance size while the VDD LP grows polynomially.
* E6 (INCREMENTAL approximation): the measured energy ratio of the
  approximation algorithm against the continuous lower bound stays within
  the guaranteed factor ``(1 + delta/fmin)^2 (1 + 1/K)^2`` across sweeps of
  ``delta`` and ``K``.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from ..complexity.reductions import verify_partition_reduction
from ..complexity.scaling import (
    fit_growth_exponent,
    measure_discrete_exact_scaling,
    measure_vdd_lp_scaling,
)
from ..core.problems import BiCritProblem
from ..core.rng import resolve_seed
from ..core.speeds import DiscreteSpeeds, IncrementalSpeeds, VddHoppingSpeeds
from ..dag import generators
from ..discrete.incremental_approx import approximation_bound
from ..discrete.vdd_lp import two_speed_structure
from ..platform.mapping import Mapping
from ..platform.platform import Platform
from ..solvers import solve

__all__ = [
    "run_vdd_lp_experiment",
    "run_np_hardness_experiment",
    "run_incremental_approx_experiment",
]


def _chain_problem(n: int, seed: int, speed_model, slack: float) -> BiCritProblem:
    graph = generators.random_chain(n, seed=seed)
    mapping = Mapping.single_processor(graph)
    platform = Platform(1, speed_model)
    deadline = slack * graph.total_weight() / platform.fmax
    return BiCritProblem(mapping=mapping, platform=platform, deadline=deadline)


def _layered_problem(layers: int, width: int, p: int, seed: int, speed_model,
                     slack: float) -> BiCritProblem:
    from ..platform.list_scheduling import critical_path_mapping

    graph = generators.random_layered_dag(layers, width, seed=seed)
    platform = Platform(p, speed_model)
    mapping = critical_path_mapping(graph, p, fmax=platform.fmax).mapping
    schedule_at_fmax = mapping.augmented_graph()
    finish: dict = {}
    for t in schedule_at_fmax.topological_order():
        s = max((finish[q] for q in schedule_at_fmax.predecessors(t)), default=0.0)
        finish[t] = s + graph.weight(t) / platform.fmax
    deadline = slack * max(finish.values(), default=0.0)
    return BiCritProblem(mapping=mapping, platform=platform, deadline=deadline)


def run_vdd_lp_experiment(*, modes: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
                          chain_sizes: Sequence[int] = (5, 10, 20),
                          slack: float = 1.7,
                          seed: int | np.random.Generator | None = 17,
                          compare_backends: bool = True,
                          include_dag: bool = True) -> list[dict]:
    """E4: LP optimum vs continuous bound vs single-mode optimum, two-speed check.

    ``seed`` accepts an int, a generator or ``None`` (default seed 17).
    """
    seed = resolve_seed(seed, 17)
    rows = []
    instances: list[tuple[str, BiCritProblem]] = []
    for i, n in enumerate(chain_sizes):
        instances.append((f"chain-{n}",
                          _chain_problem(n, seed + i, VddHoppingSpeeds(modes), slack)))
    if include_dag:
        instances.append(("layered-4x3",
                          _layered_problem(4, 3, 3, seed + 50, VddHoppingSpeeds(modes), slack)))

    for name, problem in instances:
        vdd = solve(problem, solver="bicrit-vdd-lp", backend="scipy")
        structure = two_speed_structure(vdd.require_schedule())
        continuous = solve(BiCritProblem(
            mapping=problem.mapping,
            platform=problem.platform.continuous_twin(),
            deadline=problem.deadline,
        ))
        discrete_problem = BiCritProblem(
            mapping=problem.mapping,
            platform=problem.platform.with_speed_model(DiscreteSpeeds(modes)),
            deadline=problem.deadline,
        )
        discrete = solve(discrete_problem, solver="bicrit-discrete-milp",
                         backend="scipy")
        row = {
            "instance": name,
            "tasks": problem.graph.num_tasks,
            "continuous_energy": continuous.energy,
            "vdd_lp_energy": vdd.energy,
            "discrete_energy": discrete.energy,
            "vdd_over_continuous": vdd.energy / continuous.energy,
            "discrete_over_vdd": discrete.energy / vdd.energy,
            "max_speeds_per_task": structure.max_speeds_per_task,
            "consecutive_pairs": structure.all_pairs_consecutive,
        }
        if compare_backends and problem.graph.num_tasks <= 10:
            simplex = solve(problem, solver="bicrit-vdd-lp", backend="simplex")
            row["simplex_energy"] = simplex.energy
            row["backend_gap"] = abs(simplex.energy - vdd.energy) / max(vdd.energy, 1e-12)
        rows.append(row)
    return rows


def run_np_hardness_experiment(*, partition_instances: Sequence[Sequence[int]] = (
                                   (3, 1, 1, 2, 2, 1),
                                   (5, 5, 4, 3, 2, 1),
                                   (7, 3, 2, 2, 1, 1),
                                   (8, 6, 5, 4),
                                   (9, 7, 5, 3, 1),
                               ),
                               scaling_sizes: Sequence[int] = (4, 6, 8, 10),
                               lp_sizes: Sequence[int] = (4, 8, 16, 32, 64),
                               scaling_modes: Sequence[float] = (0.5, 1.0),
                               seed: int | np.random.Generator | None = 23) -> dict:
    """E5: reduction correctness plus exponential-vs-polynomial scaling.

    The exact-solver scaling probe uses a two-mode speed set so that the
    ``m^n`` enumeration stays affordable while the exponential growth in the
    number of tasks remains clearly visible.  ``seed`` accepts an int, a
    generator or ``None`` (default seed 23).
    """
    seed = resolve_seed(seed, 23)
    reduction_rows = []
    for integers in partition_instances:
        outcome = verify_partition_reduction(integers, solver="bruteforce")
        outcome["instance"] = "+".join(str(a) for a in integers)
        reduction_rows.append(outcome)

    exact_points = measure_discrete_exact_scaling(scaling_sizes, seed=seed,
                                                  backend="bruteforce",
                                                  modes=scaling_modes)
    lp_points = measure_vdd_lp_scaling(lp_sizes, seed=seed)
    exact_fit = fit_growth_exponent(exact_points, field="work_units")
    lp_fit = fit_growth_exponent(lp_points, field="work_units")
    return {
        "reduction_rows": reduction_rows,
        "exact_scaling": [
            {"tasks": p.num_tasks, "assignments": p.work_units, "seconds": p.seconds}
            for p in exact_points
        ],
        "lp_scaling": [
            {"tasks": p.num_tasks, "lp_variables": p.work_units, "seconds": p.seconds}
            for p in lp_points
        ],
        "exact_fit": exact_fit,
        "lp_fit": lp_fit,
    }


def run_incremental_approx_experiment(*, deltas: Sequence[float] = (0.05, 0.1, 0.2, 0.3),
                                      Ks: Sequence[int | None] = (None, 2, 5),
                                      chain_size: int = 10, slack: float = 1.6,
                                      seed: int | np.random.Generator | None = 29,
                                      speed_range: tuple[float, float] = (0.3, 1.0),
                                      include_dag: bool = True) -> list[dict]:
    """E6: measured approximation ratio vs the guaranteed factor.

    ``seed`` accepts an int, a generator or ``None`` (default seed 29).
    """
    seed = resolve_seed(seed, 29)
    fmin, fmax = speed_range
    rows = []
    instances = [("chain", _chain_problem(chain_size, seed,
                                          IncrementalSpeeds(fmin, fmax, deltas[0]), slack))]
    if include_dag:
        instances.append(("layered-4x3",
                          _layered_problem(4, 3, 3, seed + 5,
                                           IncrementalSpeeds(fmin, fmax, deltas[0]), slack)))
    for name, base_problem in instances:
        continuous = solve(BiCritProblem(
            mapping=base_problem.mapping,
            platform=base_problem.platform.continuous_twin(),
            deadline=base_problem.deadline,
        ))
        for delta, K in itertools.product(deltas, Ks):
            speed_model = IncrementalSpeeds(fmin, fmax, delta)
            problem = BiCritProblem(
                mapping=base_problem.mapping,
                platform=base_problem.platform.with_speed_model(speed_model),
                deadline=base_problem.deadline,
            )
            approx = solve(problem, solver="bicrit-incremental-approx", K=K)
            bound = approximation_bound(speed_model, K=K)
            ratio = approx.energy / continuous.energy
            rows.append({
                "instance": name,
                "delta": delta,
                "K": "exact" if K is None else K,
                "continuous_energy": continuous.energy,
                "approx_energy": approx.energy,
                "measured_ratio": ratio,
                "guaranteed_factor": bound,
                "within_bound": ratio <= bound * (1.0 + 1e-6),
            })
    return rows
