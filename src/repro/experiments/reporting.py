"""Plain-text reporting helpers for the experiment harness.

Every benchmark prints the rows it measured as an aligned ASCII table so the
output of ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction record (the same tables are summarised in ``EXPERIMENTS.md``).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

__all__ = ["format_value", "ascii_table", "rows_to_table", "print_table"]


def format_value(value, *, precision: int = 4) -> str:
    """Human-friendly formatting of ints, floats, bools and strings."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, (int,)) and not isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "nan"
        if value != 0 and (abs(value) >= 10 ** precision or abs(value) < 10 ** (-precision)):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *,
                precision: int = 4, title: str | None = None) -> str:
    """Render rows as an aligned ASCII table."""
    rendered = [[format_value(v, precision=precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def rows_to_table(rows: Sequence[Mapping[str, object]], *, precision: int = 4,
                  title: str | None = None,
                  columns: Sequence[str] | None = None) -> str:
    """Render a list of dict rows (keys become the header)."""
    if not rows:
        return title or "(no rows)"
    headers = list(columns) if columns is not None else list(rows[0].keys())
    body = [[row.get(h, "") for h in headers] for row in rows]
    return ascii_table(headers, body, precision=precision, title=title)


def print_table(rows: Sequence[Mapping[str, object]], *, precision: int = 4,
                title: str | None = None,
                columns: Sequence[str] | None = None) -> None:
    """Print a dict-row table (used by the benchmark harness)."""
    print()
    print(rows_to_table(rows, precision=precision, title=title, columns=columns))
