"""Experiments E7-E9: the tri-criteria problem.

* E7 (chain): the greedy "slow equally, then re-execute" strategy matches
  the exhaustive optimum on small chains, and the exhaustive cost grows
  exponentially (NP-hardness in practice).
* E8 (fork): the polynomial breakpoint-scan algorithm matches the
  brute-force enumeration of re-execution configurations on small forks.
* E9 (heuristic families): across chain-like, fork-like, layered and
  series-parallel instances, the energy-gain heuristic wins on chain-like
  DAGs, the slack heuristic wins on highly parallel DAGs, and best-of-two is
  never worse than either -- the paper's complementarity claim.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..baselines import greedy_reexecution
from ..core.rng import resolve_seed
from ..solvers import solve
from .instances import (
    InstanceSpec,
    chain_suite,
    fork_suite,
    mixed_suite,
    tricrit_problem,
)

__all__ = [
    "run_tricrit_chain_experiment",
    "run_tricrit_fork_experiment",
    "run_heuristic_comparison_experiment",
]


def run_tricrit_chain_experiment(*, sizes: Sequence[int] = (4, 6, 8, 10),
                                 slacks: Sequence[float] = (2.0, 3.0),
                                 frel: float | None = None,
                                 seed: int | np.random.Generator | None = 31) -> list[dict]:
    """E7: greedy chain strategy vs exhaustive optimum, with subset counts.

    ``seed`` accepts an int, a generator or ``None`` (default seed 31).
    """
    seed = resolve_seed(seed, 31)
    rows = []
    specs = chain_suite(sizes=sizes, slacks=slacks, seed=seed)
    for spec in specs:
        problem = tricrit_problem(spec, speeds="continuous", frel=frel)
        exact = solve(problem, solver="tricrit-chain-exact")
        greedy = solve(problem, solver="tricrit-chain-greedy")
        no_reexec = solve(problem, solver="tricrit-no-reexec")
        rows.append({
            "instance": spec.name,
            "tasks": spec.graph.num_tasks,
            "slack": spec.deadline_slack,
            "exact_energy": exact.energy,
            "greedy_energy": greedy.energy,
            "no_reexec_energy": no_reexec.energy,
            "greedy_over_exact": greedy.energy / exact.energy if exact.feasible else float("nan"),
            "exact_reexecuted": len(exact.metadata.get("reexecuted", [])),
            "greedy_reexecuted": len(greedy.metadata.get("reexecuted", [])),
            "subsets_enumerated": exact.metadata.get("subsets_evaluated", 0),
        })
    return rows


def run_tricrit_fork_experiment(*, sizes: Sequence[int] = (2, 4, 6, 8),
                                slacks: Sequence[float] = (2.0, 3.0),
                                frel: float | None = None,
                                seed: int | np.random.Generator | None = 37) -> list[dict]:
    """E8: polynomial fork algorithm vs brute-force enumeration.

    ``seed`` accepts an int, a generator or ``None`` (default seed 37).
    """
    seed = resolve_seed(seed, 37)
    rows = []
    specs = fork_suite(sizes=sizes, slacks=slacks, seed=seed)
    for spec in specs:
        problem = tricrit_problem(spec, speeds="continuous", frel=frel)
        poly = solve(problem, solver="tricrit-fork-poly")
        brute = solve(problem, solver="tricrit-fork-bruteforce")
        rows.append({
            "instance": spec.name,
            "children": spec.graph.num_tasks - 1,
            "slack": spec.deadline_slack,
            "poly_energy": poly.energy,
            "bruteforce_energy": brute.energy,
            "poly_over_brute": poly.energy / brute.energy if brute.feasible else float("nan"),
            "poly_reexecuted": len(poly.metadata.get("reexecuted", [])),
            "configurations": brute.metadata.get("configurations", 0),
        })
    return rows


def run_heuristic_comparison_experiment(*, specs: Sequence[InstanceSpec] | None = None,
                                        frel: float | None = None,
                                        seed: int | np.random.Generator | None = 41,
                                        include_reference: bool = True) -> list[dict]:
    """E9: the two heuristic families and their combination across DAG classes.

    ``seed`` accepts an int, a generator or ``None`` (default seed 41); it
    only shapes the generated suite when ``specs`` is None.
    """
    seed = resolve_seed(seed, 41)
    specs = list(specs) if specs is not None else mixed_suite(seed=seed)
    rows = []
    for spec in specs:
        problem = tricrit_problem(spec, speeds="continuous", frel=frel)
        no_reexec = solve(problem, solver="tricrit-no-reexec")
        h_energy = solve(problem, solver="tricrit-heuristic-energy-gain")
        h_slack = solve(problem, solver="tricrit-heuristic-parallel-slack")
        best = h_energy if h_energy.energy <= h_slack.energy else h_slack
        greedy = greedy_reexecution(problem)
        row = {
            "instance": spec.name,
            "family": spec.family,
            "tasks": spec.graph.num_tasks,
            "processors": spec.num_processors,
            "no_reexec": no_reexec.energy,
            "energy_gain_h": h_energy.energy,
            "parallel_slack_h": h_slack.energy,
            "best_of": best.energy,
            "greedy_baseline": greedy.energy,
            "winner": ("energy_gain" if h_energy.energy < h_slack.energy - 1e-9
                       else "parallel_slack" if h_slack.energy < h_energy.energy - 1e-9
                       else "tie"),
        }
        if include_reference and sum(1 for t in spec.graph.tasks()
                                     if spec.graph.weight(t) > 0) <= 8:
            reference = solve(problem, solver="tricrit-exhaustive", max_tasks=8)
            row["exhaustive"] = reference.energy
            row["best_over_exhaustive"] = (best.energy / reference.energy
                                           if reference.feasible else float("nan"))
        rows.append(row)
    return rows
