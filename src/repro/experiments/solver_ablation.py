"""Experiment E13: cross-solver ablation over the DAG-family grid.

The paper's algorithms are specialised by problem class (chain / fork /
series-parallel / general DAG, continuous / discrete speeds); this
experiment runs *every admissible registry solver* -- or one named solver,
or the auto-dispatcher -- on instances of every requested family and reports
each solver's energy against the best exact reference on the same instance.
It is the registry-level generalisation of the pairwise comparisons of
E7/E8/E9: one sweep ablates the whole solver family, and a campaign grid
over the ``solver`` parameter caches each solver x instance cell separately
in ``.repro-cache/``.

Instances come from the standard suites of
:mod:`repro.experiments.instances`; additionally, concrete problem-instance
files written by :func:`repro.core.problem_io.save_problem_json` can be
ablated via ``problem_files``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..api import default_engine
from ..core.problem_io import load_problem_json
from ..core.problems import BiCritProblem
from ..core.rng import resolve_seed
from ..solvers import (
    SolverContext,
    batch_is_feasible,
    get_solver,
    iter_solvers,
)
from .instances import (
    InstanceSpec,
    bicrit_problem,
    chain_suite,
    fork_suite,
    layered_suite,
    series_parallel_suite,
    tricrit_problem,
)

__all__ = ["run_solver_ablation_experiment", "ABLATION_FAMILIES"]

#: Families of the ablation grid, in canonical order.
ABLATION_FAMILIES = ("chain", "fork", "series-parallel", "dag")


def _family_specs(family: str, *, sizes: Sequence[int], slacks: Sequence[float],
                  dag_shapes: Sequence[tuple[int, int]], num_processors: int,
                  seed: int) -> list[InstanceSpec]:
    if family == "chain":
        return chain_suite(sizes=sizes, slacks=slacks, seed=seed)
    if family == "fork":
        return fork_suite(sizes=sizes, slacks=slacks, seed=seed + 1000)
    if family == "series-parallel":
        return series_parallel_suite(sizes=sizes, slacks=slacks, seed=seed + 2000)
    if family == "dag":
        return layered_suite(shapes=dag_shapes, num_processors=num_processors,
                             slacks=slacks, seed=seed + 3000)
    raise ValueError(f"unknown DAG family {family!r}; "
                     f"known: {', '.join(ABLATION_FAMILIES)}")


def _build_problem(spec: InstanceSpec, *, problem: str, speeds: str,
                   frel: float | None) -> BiCritProblem:
    if problem == "tricrit":
        return tricrit_problem(spec, speeds=speeds, frel=frel)
    if problem == "bicrit":
        return bicrit_problem(spec, speeds=speeds)
    raise ValueError(f"unknown problem kind {problem!r} (bicrit or tricrit)")


def run_solver_ablation_experiment(
        *, families: Sequence[str] = ABLATION_FAMILIES,
        sizes: Sequence[int] = (5,),
        slacks: Sequence[float] = (2.0,),
        dag_shapes: Sequence[tuple[int, int]] = ((3, 2),),
        num_processors: int = 3,
        problem: str = "tricrit",
        speeds: str = "continuous",
        solver: str = "admissible",
        frel: float | None = None,
        problem_files: Sequence[str] = (),
        engine: str = "batch",
        seed: int | np.random.Generator | None = 59) -> list[dict]:
    """E13: run registry solvers over a chain/fork/SP/DAG instance grid.

    Parameters
    ----------
    solver:
        ``"admissible"`` (default) runs every registry solver that admits
        each instance and records the inadmissible ones with their rejection
        reason; ``"auto"`` runs only the dispatcher's choice per instance;
        any registry name runs that single solver (instances it does not
        admit are recorded as ``status="inadmissible"``; unknown names and
        solver/problem-kind mismatches raise immediately).  A campaign grid
        over this parameter ablates solver x family with one cache record
        per cell.  ``ratio_to_exact`` normalises against the best feasible
        exact energy *within the same cell*, so in single-solver and
        ``auto`` cells it is NaN unless the solver that ran is itself exact
        -- join cells from an ``"admissible"`` run to compare heuristics
        against the exact reference.
    engine:
        ``"batch"`` (default) routes every solver x instance grid through
        :func:`repro.solvers.solve_batch`, evaluating each solver's cells as
        one vectorized group; ``"scalar"`` keeps the per-cell ``solve()``
        loop.  The two engines produce the same rows (within floating-point
        tolerance; equivalence is property-tested).
    problem_files:
        Extra concrete instances (JSON files from
        :func:`repro.core.problem_io.save_problem_json`), reported under
        family ``"file"``.
    """
    seed = resolve_seed(seed, 59)
    if engine not in ("batch", "scalar"):
        raise ValueError(f"unknown engine {engine!r} (batch or scalar)")
    if solver not in ("admissible", "auto"):
        # Fail fast on typos (and on solver/problem-kind mismatches) instead
        # of silently producing -- and caching -- an empty result set.
        descriptor = get_solver(solver)
        if descriptor.problem != problem:
            raise ValueError(
                f"solver {solver!r} solves {descriptor.problem.upper()} but this "
                f"ablation builds {problem.upper()} instances")
    instances: list[tuple[str, str, BiCritProblem]] = []
    for family in families:
        for spec in _family_specs(family, sizes=sizes, slacks=slacks,
                                  dag_shapes=dag_shapes,
                                  num_processors=num_processors, seed=seed):
            instances.append((family, spec.name,
                              _build_problem(spec, problem=problem, speeds=speeds,
                                             frel=frel)))
    for path in problem_files:
        loaded = load_problem_json(path)
        name = str(path).rsplit("/", 1)[-1].removesuffix(".json")
        instances.append(("file", name, loaded))

    ctxs = [SolverContext.for_problem(prob) for _, _, prob in instances]
    if engine == "batch":
        # One vectorized fmax-feasibility sweep instead of one walk each.
        batch_is_feasible([prob for _, _, prob in instances], contexts=ctxs)

    # Pass 1: classify every solver x instance cell without running anything.
    # ``entry["cells"]`` holds the admissible cells whose energies are filled
    # in by pass 2 (either one scalar solve per cell or one batched solve
    # per solver group); row order matches the scalar loop exactly.
    entries: list[dict] = []
    for (family, name, prob), ctx in zip(instances, ctxs):
        if not ctx.is_feasible:
            # Generated suites are feasible by construction, but a problem
            # file may not be; one row beats N per-solver "infeasible" rows.
            entries.append({"pre": [{
                "family": family, "instance": name,
                "tasks": prob.graph.num_tasks, "solver": "-", "exactness": "-",
                "status": "infeasible-instance", "energy": math.inf,
                "ratio_to_exact": math.nan, "dispatched": False,
                "reason": (f"even at fmax the makespan is {ctx.min_makespan:.6g}"
                           f" > deadline {prob.deadline:.6g}"),
            }], "cells": [], "auto": False, "prob": prob, "ctx": ctx})
            continue
        entry = {"pre": [], "cells": [], "auto": solver == "auto",
                 "prob": prob, "ctx": ctx,
                 "family": family, "instance": name}
        for descriptor in iter_solvers():
            if descriptor.problem != ctx.kind:
                continue            # wrong problem kind: not an ablation cell
            if solver not in ("admissible", "auto") and descriptor.name != solver:
                continue
            ok, reason = descriptor.admissible(prob, ctx)
            row = {
                "family": family,
                "instance": name,
                "tasks": prob.graph.num_tasks,
                "solver": descriptor.name,
                "exactness": descriptor.exactness,
            }
            if not ok:
                if solver != "auto":
                    row.update(status="inadmissible", energy=math.nan,
                               ratio_to_exact=math.nan, dispatched=False,
                               reason=reason)
                    entry["pre"].append(row)
                continue
            if solver == "auto":
                continue            # handled through the dispatcher below
            entry["cells"].append((descriptor, row))
        entries.append(entry)

    # Pass 2: run the admissible cells, through the shared API engine so
    # repeated ablations of the same instances are served from its result
    # cache (and grid groups go through the vectorized batch kernel).
    api = default_engine()
    if engine == "scalar":
        for entry in entries:
            for descriptor, row in entry["cells"]:
                result, _ = api.submit(entry["prob"], solver=descriptor.name,
                                       context=entry["ctx"])
                row.update(status=result.status, energy=result.energy,
                           dispatched=False, reason=None)
            if entry["auto"]:
                result, _ = api.submit(entry["prob"], context=entry["ctx"])
                entry["auto_result"] = result
    else:
        groups: dict[str, list[tuple[dict, dict]]] = {}
        for entry in entries:
            for descriptor, row in entry["cells"]:
                groups.setdefault(descriptor.name, []).append((entry, row))
        for name_key, members in groups.items():
            pairs = api.submit_batch([e["prob"] for e, _ in members],
                                     solver=name_key,
                                     contexts=[e["ctx"] for e, _ in members])
            for (_, row), (result, _) in zip(members, pairs):
                row.update(status=result.status, energy=result.energy,
                           dispatched=False, reason=None)
        auto_entries = [e for e in entries if e["auto"]]
        if auto_entries:
            pairs = api.submit_batch([e["prob"] for e in auto_entries],
                                     contexts=[e["ctx"] for e in auto_entries])
            for entry, (result, _) in zip(auto_entries, pairs):
                entry["auto_result"] = result

    # Pass 3: assemble rows and per-instance exact references.
    rows: list[dict] = []
    for entry in entries:
        rows.extend(entry["pre"])
        ran = [row for _, row in entry["cells"]]
        if entry.get("auto_result") is not None:
            result = entry["auto_result"]
            prob = entry["prob"]
            chosen = result.metadata["dispatch"]["solver"]
            descriptor = next(d for d in iter_solvers() if d.name == chosen)
            ran.append({
                "family": entry["family"], "instance": entry["instance"],
                "tasks": prob.graph.num_tasks,
                "solver": chosen, "exactness": descriptor.exactness,
                "status": result.status, "energy": result.energy,
                "dispatched": True, "reason": None,
            })
        # Reference: best feasible exact energy on this instance.  Only the
        # "admissible" mode may fall back to the best feasible energy of any
        # class (when the size caps exclude every exact solver); a
        # single-solver or auto cell must not normalise a heuristic against
        # itself, so without an exact run its ratio stays NaN.
        feasible = [r["energy"] for r in ran
                    if r["status"] in ("optimal", "feasible")
                    and math.isfinite(r["energy"])]
        exact = [r["energy"] for r in ran
                 if r["exactness"] == "exact"
                 and r["status"] in ("optimal", "feasible")
                 and math.isfinite(r["energy"])]
        if exact:
            reference = min(exact)
        elif feasible and solver == "admissible":
            reference = min(feasible)
        else:
            reference = math.nan
        for r in ran:
            if math.isfinite(r["energy"]) and math.isfinite(reference) and reference > 0:
                r["ratio_to_exact"] = r["energy"] / reference
            else:
                r["ratio_to_exact"] = math.nan
        rows.extend(ran)
    return rows
