"""Experiments E10-E12: VDD adaptation, reliability simulation, mapping ablation.

* E10: adapting the CONTINUOUS heuristics to VDD-HOPPING by two-speed
  rounding -- "there remains to quantify the performance loss incurred"
  (Section IV); the experiment measures exactly that loss across the mixed
  instance suite and several mode counts.
* E11: the motivation of the TRI-CRIT problem -- DVFS degrades reliability,
  re-execution restores it -- validated by Monte-Carlo fault injection
  against the analytic model.
* E12: the paper's future-work question about the impact of the mapping
  heuristic that precedes the energy optimisation: an ablation over the
  list-scheduling priority rules.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.problems import BiCritProblem
from ..core.rng import resolve_seed
from ..core.schedule import Schedule, TaskDecision
from ..core.speeds import VddHoppingSpeeds
from ..continuous.tricrit_chain import reexecution_speed_floor
from ..dag import generators
from ..platform.list_scheduling import MAPPING_HEURISTICS
from ..solvers import solve
from ..platform.mapping import Mapping
from ..simulation.montecarlo import run_monte_carlo
from .instances import (
    DEFAULT_SPEED_RANGE,
    InstanceSpec,
    make_platform,
    mixed_suite,
    tricrit_problem,
)

__all__ = [
    "run_vdd_rounding_experiment",
    "run_reliability_simulation_experiment",
    "run_mapping_ablation_experiment",
]


def run_vdd_rounding_experiment(*, specs: Sequence[InstanceSpec] | None = None,
                                mode_counts: Sequence[int] = (3, 5, 9),
                                frel: float | None = None,
                                seed: int | np.random.Generator | None = 43) -> list[dict]:
    """E10: energy loss of the rounded VDD heuristic vs its continuous source.

    ``seed`` accepts an int, a generator or ``None`` (default seed 43); it
    only shapes the generated suite when ``specs`` is None.
    """
    seed = resolve_seed(seed, 43)
    specs = list(specs) if specs is not None else mixed_suite(seed=seed)
    fmin, fmax = DEFAULT_SPEED_RANGE
    rows = []
    for spec in specs:
        continuous_problem = tricrit_problem(spec, speeds="continuous", frel=frel)
        continuous = solve(continuous_problem, solver="tricrit-best-of")
        for m in mode_counts:
            modes = np.linspace(fmin, fmax, m)
            vdd_problem = tricrit_problem(spec, speeds=VddHoppingSpeeds(modes),
                                          frel=frel)
            adapted = solve(vdd_problem, solver="tricrit-vdd-heuristic")
            bicrit_lp = solve(BiCritProblem(
                mapping=vdd_problem.mapping, platform=vdd_problem.platform,
                deadline=vdd_problem.deadline,
            ), solver="bicrit-vdd-lp")
            rows.append({
                "instance": spec.name,
                "family": spec.family,
                "modes": m,
                "continuous_energy": continuous.energy,
                "vdd_adapted_energy": adapted.energy,
                "vdd_bicrit_lp": bicrit_lp.energy,
                "adaptation_loss": (adapted.energy / continuous.energy - 1.0
                                    if continuous.feasible else float("nan")),
                "feasible": adapted.feasible,
            })
    return rows


def run_reliability_simulation_experiment(*, chain_size: int = 8,
                                          speed_fractions: Sequence[float] = (1.0, 0.8, 0.6, 0.4),
                                          trials: int = 4000,
                                          lambda0: float = 1e-3,
                                          sensitivity: float = 4.0,
                                          seed: int | np.random.Generator | None = 47,
                                          engine: str = "batch") -> list[dict]:
    """E11: Monte-Carlo reliability vs analytic model, with and without re-execution.

    A relatively high ``lambda0`` is used so that the failure probabilities
    are measurable with a reasonable number of trials; the qualitative shape
    (reliability drops as the speed drops, re-execution restores it at an
    energy cost) is what matters.  ``engine`` selects the Monte-Carlo kernel
    (the vectorized ``"batch"`` fast path by default, ``"scalar"`` for the
    reference per-trial walk).  ``seed`` accepts an int, a generator or
    ``None`` (default seed 47); it drives both the instance generation and
    the fault injection.
    """
    seed = resolve_seed(seed, 47)
    graph = generators.random_chain(chain_size, seed=seed)
    mapping = Mapping.single_processor(graph)
    platform = make_platform(1, speeds="continuous", lambda0=lambda0,
                             sensitivity=sensitivity)
    model = platform.reliability()
    fmax = platform.fmax
    rows = []
    for fraction in speed_fractions:
        speed = max(fraction * fmax, platform.fmin)
        single = Schedule.from_speeds(mapping, platform,
                                      {t: speed for t in graph.tasks()})
        mc_single = run_monte_carlo(single, trials, seed=seed, engine=engine)
        decisions = {}
        for t in graph.tasks():
            w = graph.weight(t)
            floor = reexecution_speed_floor(model, w, platform.fmin)
            reexec_speed = max(speed, floor)
            decisions[t] = TaskDecision.reexecuted(t, w, reexec_speed, reexec_speed)
        reexec = Schedule(mapping, platform, decisions)
        mc_reexec = run_monte_carlo(reexec, trials, seed=seed + 1, engine=engine)
        rows.append({
            "speed_fraction": fraction,
            "single_analytic_reliability": mc_single.analytic_reliability,
            "single_simulated_reliability": mc_single.success_rate,
            "single_energy": single.energy(),
            "reexec_analytic_reliability": mc_reexec.analytic_reliability,
            "reexec_simulated_reliability": mc_reexec.success_rate,
            "reexec_worst_case_energy": reexec.energy(),
            "reexec_mean_simulated_energy": mc_reexec.mean_energy,
            "analytic_within_confidence": (mc_single.within_confidence()
                                           and mc_reexec.within_confidence()),
        })
    return rows


def run_mapping_ablation_experiment(*, shapes: Sequence[tuple[int, int]] = ((4, 4), (5, 4)),
                                    num_processors: int = 4, slack: float = 1.8,
                                    seed: int | np.random.Generator | None = 53,
                                    heuristics: Sequence[str] = ("critical_path",
                                                                 "largest_first",
                                                                 "topological",
                                                                 "min_loaded",
                                                                 "round_robin",
                                                                 "random"),
                                    trials: int = 1000,
                                    engine: str = "batch") -> list[dict]:
    """E12: impact of the list-scheduling mapping on the downstream energy optimum.

    Each feasible optimum is additionally exercised by ``trials`` simulated
    fault-injected runs (through the Monte-Carlo kernel selected by
    ``engine``), reporting the observed success rate and mean makespan next
    to the analytic energy; ``trials=0`` skips the simulation columns.
    ``seed`` accepts an int, a generator or ``None`` (default seed 53).
    """
    seed = resolve_seed(seed, 53)
    fmin, fmax = DEFAULT_SPEED_RANGE
    rows = []
    for i, (layers, width) in enumerate(shapes):
        graph = generators.random_layered_dag(layers, width, seed=seed + i)
        platform = make_platform(num_processors, speeds="continuous")
        # A common deadline for all mappings: slack times the best (critical
        # path) mapping's fmax makespan, so that a bad mapping really pays.
        reference = MAPPING_HEURISTICS["critical_path"](graph, num_processors, fmax=fmax)
        deadline = slack * reference.makespan
        for name in heuristics:
            mapper = MAPPING_HEURISTICS[name]
            result = mapper(graph, num_processors, fmax=fmax)
            problem = BiCritProblem(mapping=result.mapping, platform=platform,
                                    deadline=deadline)
            if not problem.is_feasible_instance():
                rows.append({
                    "instance": f"layered-{layers}x{width}",
                    "mapping": name,
                    "fmax_makespan": result.makespan,
                    "energy": float("inf"),
                    "energy_vs_cp": float("inf"),
                    "feasible": False,
                    "simulated_success_rate": float("nan"),
                    "simulated_mean_makespan": float("nan"),
                })
                continue
            optimum = solve(problem)    # auto-dispatch: convex on general DAGs
            row = {
                "instance": f"layered-{layers}x{width}",
                "mapping": name,
                "fmax_makespan": result.makespan,
                "energy": optimum.energy,
                "feasible": optimum.feasible,
                "simulated_success_rate": float("nan"),
                "simulated_mean_makespan": float("nan"),
            }
            if trials > 0 and optimum.schedule is not None:
                mc = run_monte_carlo(optimum.schedule, trials, seed=seed + 97 * i,
                                     engine=engine)
                row["simulated_success_rate"] = mc.success_rate
                row["simulated_mean_makespan"] = mc.mean_makespan
            rows.append(row)
        # Normalise against the critical-path mapping of the same instance.
        cp_energy = next(r["energy"] for r in rows
                         if r["instance"] == f"layered-{layers}x{width}"
                         and r["mapping"] == "critical_path")
        for r in rows:
            if r["instance"] == f"layered-{layers}x{width}":
                r["energy_vs_cp"] = (r["energy"] / cp_energy
                                     if np.isfinite(r["energy"]) else float("inf"))
    return rows
