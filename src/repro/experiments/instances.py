"""Standard problem-instance suites used by the experiments.

The paper evaluates its heuristics "on a wide class of problem instances";
the companion reports use linear chains, forks, and general random DAGs
mapped by a critical-path list scheduler.  The builders here produce exactly
those families with a deterministic seed so every benchmark run regenerates
the same instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterator, Sequence

import numpy as np

from ..core.problems import BiCritProblem, TriCritProblem
from ..core.reliability import ReliabilityModel
from ..core.speeds import (
    ContinuousSpeeds,
    DiscreteSpeeds,
    IncrementalSpeeds,
    SpeedModel,
    VddHoppingSpeeds,
)
from ..dag import generators
from ..dag.taskgraph import TaskGraph
from ..platform.list_scheduling import critical_path_mapping
from ..platform.mapping import Mapping
from ..platform.platform import Platform

__all__ = [
    "InstanceSpec",
    "DEFAULT_SPEED_RANGE",
    "make_platform",
    "bicrit_problem",
    "tricrit_problem",
    "chain_suite",
    "fork_suite",
    "layered_suite",
    "series_parallel_suite",
    "mixed_suite",
]

#: Normalised speed range used throughout the experiments.
DEFAULT_SPEED_RANGE = (0.1, 1.0)


@dataclass(frozen=True)
class InstanceSpec:
    """A named problem instance of one of the experiment suites."""

    name: str
    family: str
    graph: TaskGraph
    num_processors: int
    deadline_slack: float
    seed: int

    def describe(self) -> dict:
        return {
            "instance": self.name,
            "family": self.family,
            "tasks": self.graph.num_tasks,
            "processors": self.num_processors,
            "slack": self.deadline_slack,
        }


def make_platform(num_processors: int, *, speeds: str | SpeedModel = "continuous",
                  frel: float | None = None, lambda0: float = 1e-5,
                  sensitivity: float = 3.0,
                  speed_range: tuple[float, float] = DEFAULT_SPEED_RANGE,
                  modes: Sequence[float] | None = None,
                  delta: float = 0.1) -> Platform:
    """Build a platform with the requested speed model and reliability model."""
    fmin, fmax = speed_range
    if isinstance(speeds, SpeedModel):
        speed_model = speeds
    elif speeds == "continuous":
        speed_model = ContinuousSpeeds(fmin, fmax)
    elif speeds == "discrete":
        speed_model = DiscreteSpeeds(modes if modes is not None
                                     else np.linspace(fmin, fmax, 5))
    elif speeds == "vdd":
        speed_model = VddHoppingSpeeds(modes if modes is not None
                                       else np.linspace(fmin, fmax, 5))
    elif speeds == "incremental":
        speed_model = IncrementalSpeeds(fmin, fmax, delta)
    else:
        raise ValueError(f"unknown speed model spec {speeds!r}")
    reliability = ReliabilityModel(fmin=speed_model.fmin, fmax=speed_model.fmax,
                                   lambda0=lambda0, sensitivity=sensitivity,
                                   frel=frel)
    return Platform(num_processors, speed_model, reliability_model=reliability)


def _mapping_for(graph: TaskGraph, num_processors: int, fmax: float) -> Mapping:
    """Critical-path list-scheduling mapping (the paper's choice)."""
    return critical_path_mapping(graph, num_processors, fmax=fmax).mapping


def _deadline_for(mapping: Mapping, fmax: float, slack: float) -> float:
    """Deadline = slack factor times the fmax makespan of the mapping."""
    graph = mapping.graph
    augmented = mapping.augmented_graph()
    finish: dict = {}
    for t in augmented.topological_order():
        s = max((finish[p] for p in augmented.predecessors(t)), default=0.0)
        finish[t] = s + graph.weight(t) / fmax
    base = max(finish.values(), default=0.0)
    return slack * base


def bicrit_problem(spec: InstanceSpec, *, speeds: str | SpeedModel = "continuous",
                   **platform_kwargs) -> BiCritProblem:
    """Instantiate a BI-CRIT problem from a spec."""
    platform = make_platform(spec.num_processors, speeds=speeds, **platform_kwargs)
    mapping = _mapping_for(spec.graph, spec.num_processors, platform.fmax)
    deadline = _deadline_for(mapping, platform.fmax, spec.deadline_slack)
    return BiCritProblem(mapping=mapping, platform=platform, deadline=deadline)


def tricrit_problem(spec: InstanceSpec, *, speeds: str | SpeedModel = "continuous",
                    frel: float | None = None, **platform_kwargs) -> TriCritProblem:
    """Instantiate a TRI-CRIT problem from a spec."""
    platform = make_platform(spec.num_processors, speeds=speeds, frel=frel,
                             **platform_kwargs)
    mapping = _mapping_for(spec.graph, spec.num_processors, platform.fmax)
    deadline = _deadline_for(mapping, platform.fmax, spec.deadline_slack)
    return TriCritProblem(mapping=mapping, platform=platform, deadline=deadline)


# ----------------------------------------------------------------------
# suites
# ----------------------------------------------------------------------
def chain_suite(*, sizes: Sequence[int] = (5, 8, 12), slacks: Sequence[float] = (1.5, 2.5),
                seed: int = 0) -> list[InstanceSpec]:
    """Linear chains on a single processor (the first heuristic family's home turf)."""
    specs = []
    for i, n in enumerate(sizes):
        for j, slack in enumerate(slacks):
            s = seed + 97 * i + j
            specs.append(InstanceSpec(
                name=f"chain-n{n}-s{slack:g}", family="chain",
                graph=generators.random_chain(n, seed=s),
                num_processors=1, deadline_slack=slack, seed=s,
            ))
    return specs


def fork_suite(*, sizes: Sequence[int] = (4, 6, 8), slacks: Sequence[float] = (1.5, 2.5),
               seed: int = 100) -> list[InstanceSpec]:
    """Forks with one processor per task (the second family's home turf)."""
    specs = []
    for i, n in enumerate(sizes):
        for j, slack in enumerate(slacks):
            s = seed + 97 * i + j
            specs.append(InstanceSpec(
                name=f"fork-n{n}-s{slack:g}", family="fork",
                graph=generators.random_fork(n, seed=s),
                num_processors=n + 1, deadline_slack=slack, seed=s,
            ))
    return specs


def layered_suite(*, shapes: Sequence[tuple[int, int]] = ((4, 3), (5, 4)),
                  num_processors: int = 4, slacks: Sequence[float] = (1.8,),
                  seed: int = 200) -> list[InstanceSpec]:
    """Random layered DAGs mapped on a small multiprocessor."""
    specs = []
    for i, (layers, width) in enumerate(shapes):
        for j, slack in enumerate(slacks):
            s = seed + 97 * i + j
            specs.append(InstanceSpec(
                name=f"layered-{layers}x{width}-s{slack:g}", family="layered",
                graph=generators.random_layered_dag(layers, width, seed=s),
                num_processors=num_processors, deadline_slack=slack, seed=s,
            ))
    return specs


def series_parallel_suite(*, sizes: Sequence[int] = (6, 10, 14),
                          slacks: Sequence[float] = (1.6,),
                          seed: int = 300) -> list[InstanceSpec]:
    """Random series-parallel graphs with one processor per parallel branch."""
    specs = []
    for i, n in enumerate(sizes):
        for j, slack in enumerate(slacks):
            s = seed + 97 * i + j
            graph = generators.random_series_parallel(n, seed=s)
            specs.append(InstanceSpec(
                name=f"sp-n{n}-s{slack:g}", family="series_parallel",
                graph=graph, num_processors=max(2, graph.num_tasks),
                deadline_slack=slack, seed=s,
            ))
    return specs


def mixed_suite(*, seed: int = 400) -> list[InstanceSpec]:
    """The cross-class suite used by the heuristic comparison (E9)."""
    return (
        chain_suite(sizes=(6, 10), slacks=(2.0,), seed=seed)
        + fork_suite(sizes=(5, 7), slacks=(2.0,), seed=seed + 1000)
        + layered_suite(shapes=((4, 3),), slacks=(2.0,), seed=seed + 2000)
        + series_parallel_suite(sizes=(8,), slacks=(2.0,), seed=seed + 3000)
    )
