"""Experiments E1-E3: closed forms versus the numerical convex program.

* E1 (fork theorem): the algebraic fork formula and the convex solver must
  agree on the optimal energy, for many random forks and deadlines.
* E2 (series-parallel closed form): the equivalent-weight recursion agrees
  with the convex solver on random series-parallel graphs and on random
  trees (a tree is a series-parallel graph in the node-composition sense
  used here).
* E3 (general DAGs as a convex program): on arbitrary mapped DAGs the
  convex optimum is sandwiched between the theoretical lower bound and the
  baselines, and it beats the local slack-reclaiming baseline -- the paper's
  argument for treating the problem "as a whole".
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..baselines import local_slack_reclaiming, no_dvfs, uniform_slowdown
from ..core.problems import BiCritProblem
from ..core.rng import resolve_seed
from ..core.speeds import ContinuousSpeeds
from ..continuous.closed_form import fork_energy, series_parallel_bicrit
from ..continuous.convex import solve_bicrit_convex
from ..solvers import solve
from ..dag import generators
from ..dag.analysis import energy_lower_bound
from ..platform.mapping import Mapping
from ..platform.platform import Platform
from .instances import bicrit_problem, layered_suite

__all__ = [
    "run_fork_closed_form_experiment",
    "run_series_parallel_experiment",
    "run_convex_dag_experiment",
]


def run_fork_closed_form_experiment(*, sizes: Sequence[int] = (2, 4, 8, 16, 32),
                                    slacks: Sequence[float] = (1.2, 2.0, 4.0),
                                    seed: int | np.random.Generator | None = 7,
                                    speed_range: tuple[float, float] = (0.001, 50.0)
                                    ) -> list[dict]:
    """E1: fork formula vs convex solver across sizes and deadline slacks.

    ``seed`` accepts an int, a ``numpy.random.Generator`` or ``None``
    (the documented default, 7); see :func:`repro.core.rng.resolve_seed`.
    """
    seed = resolve_seed(seed, 7)
    fmin, fmax = speed_range
    rows = []
    for i, n in enumerate(sizes):
        graph = generators.random_fork(n, seed=seed + i)
        source = graph.is_fork()[1]
        children = [t for t in graph.tasks() if t != source]
        w0 = graph.weight(source)
        child_weights = [graph.weight(c) for c in children]
        platform = Platform(n + 1, ContinuousSpeeds(fmin, fmax))
        mapping = Mapping.one_task_per_processor(graph)
        for slack in slacks:
            # Deadline scaled from the unit-speed critical path; with the wide
            # speed range the closed form never hits the fmax bound, so the
            # unbounded formula applies exactly.
            deadline = slack * graph.critical_path_weight()
            problem = BiCritProblem(mapping=mapping, platform=platform,
                                    deadline=deadline)
            closed = solve(problem, solver="bicrit-closed-form")
            formula = fork_energy(w0, child_weights, deadline)
            numeric = solve_bicrit_convex(mapping, platform, deadline)
            rel_gap = abs(numeric.energy - closed.energy) / max(closed.energy, 1e-12)
            rows.append({
                "children": n,
                "slack": slack,
                "formula_energy": formula,
                "closed_form_energy": closed.energy,
                "convex_energy": numeric.energy,
                "relative_gap": rel_gap,
                "route": closed.metadata.get("route", closed.solver),
            })
    return rows


def run_series_parallel_experiment(*, sizes: Sequence[int] = (4, 8, 12, 16),
                                   slacks: Sequence[float] = (1.5, 3.0),
                                   seed: int | np.random.Generator | None = 11,
                                   speed_range: tuple[float, float] = (0.001, 60.0)
                                   ) -> list[dict]:
    """E2: equivalent-weight recursion vs convex solver on random SP graphs.

    ``seed`` accepts an int, a generator or ``None`` (default seed 11).
    """
    seed = resolve_seed(seed, 11)
    fmin, fmax = speed_range
    rows = []
    for i, n in enumerate(sizes):
        graph = generators.random_series_parallel(n, seed=seed + i)
        platform = Platform(graph.num_tasks, ContinuousSpeeds(fmin, fmax))
        mapping = Mapping.one_task_per_processor(graph)
        for slack in slacks:
            deadline = slack * graph.critical_path_weight()
            closed = series_parallel_bicrit(graph, deadline, fmax=fmax, fmin=fmin)
            numeric = solve_bicrit_convex(mapping, platform, deadline)
            rel_gap = abs(numeric.energy - closed.energy) / max(closed.energy, 1e-12)
            rows.append({
                "leaves": n,
                "tasks": graph.num_tasks,
                "slack": slack,
                "closed_form_energy": closed.energy,
                "convex_energy": numeric.energy,
                "relative_gap": rel_gap,
                "within_bounds": closed.within_bounds,
            })
    return rows


def run_convex_dag_experiment(*, num_processors: int = 4,
                              shapes: Sequence[tuple[int, int]] = ((3, 3), (4, 4), (5, 4)),
                              slack: float = 1.8,
                              seed: int | np.random.Generator | None = 13) -> list[dict]:
    """E3: global convex optimum vs baselines on mapped layered DAGs.

    ``seed`` accepts an int, a generator or ``None`` (default seed 13).
    """
    seed = resolve_seed(seed, 13)
    rows = []
    specs = layered_suite(shapes=shapes, num_processors=num_processors,
                          slacks=(slack,), seed=seed)
    for spec in specs:
        problem = bicrit_problem(spec, speeds="continuous")
        optimum = solve(problem)        # auto-dispatch: convex on general DAGs
        fmax_baseline = no_dvfs(problem)
        uniform = uniform_slowdown(problem)
        local = local_slack_reclaiming(problem)
        lower = energy_lower_bound(problem.graph, problem.deadline,
                                   exponent=problem.platform.energy_model.exponent)
        rows.append({
            "instance": spec.name,
            "tasks": spec.graph.num_tasks,
            "processors": num_processors,
            "lower_bound": lower,
            "convex_energy": optimum.energy,
            "local_reclaiming": local.energy,
            "uniform_slowdown": uniform.energy,
            "no_dvfs": fmax_baseline.energy,
            "saving_vs_no_dvfs": 1.0 - optimum.energy / fmax_baseline.energy,
            "saving_vs_local": 1.0 - optimum.energy / local.energy if local.feasible else float("nan"),
        })
    return rows
