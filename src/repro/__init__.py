"""repro: energy-aware DVFS scheduling under makespan and reliability constraints.

Reproduction of *"Energy-aware Scheduling: Models and Complexity Results"*
(Guillaume Aupy, IPDPSW / PhD Forum 2012).  The library implements the
paper's models -- CONTINUOUS, DISCRETE, VDD-HOPPING and INCREMENTAL speed
models, the cube-law energy model, the exponential transient-fault
reliability model with re-execution -- together with every algorithmic
result it states: closed forms for chains/forks/series-parallel graphs, the
convex (geometric-programming) formulation for general DAGs, the
VDD-HOPPING linear program, the INCREMENTAL approximation algorithm, the
NP-hardness reductions, and the two complementary TRI-CRIT heuristic
families, plus the substrates (task graphs, platforms, list scheduling,
LP/MILP solvers, fault-injection simulator) needed to evaluate them.

Quick start::

    from repro.dag import generators
    from repro.platform import Platform, Mapping
    from repro.core import BiCritProblem, ContinuousSpeeds
    from repro.continuous import solve_bicrit_continuous

    graph = generators.fork(3.0, [2.0, 5.0, 1.0, 4.0])
    platform = Platform(5, ContinuousSpeeds(0.1, 2.0))
    mapping = Mapping.one_task_per_processor(graph)
    problem = BiCritProblem(mapping, platform, deadline=6.0)
    result = solve_bicrit_continuous(problem)
    print(result.energy, result.schedule.makespan())

See ``README.md`` for an overview, the experiment index E1-E12 and the
``python -m repro`` campaign CLI, and ``PERFORMANCE.md`` for the performance
notes on the batch simulation kernel and the campaign runner.
"""

from __future__ import annotations

from . import (
    baselines,
    campaign,
    complexity,
    continuous,
    core,
    dag,
    discrete,
    experiments,
    lp,
    optimize,
    platform,
    simulation,
    solvers,
)
from .core import (
    BiCritProblem,
    ContinuousSpeeds,
    DiscreteSpeeds,
    EnergyModel,
    IncrementalSpeeds,
    ReliabilityModel,
    Schedule,
    SolveResult,
    TriCritProblem,
    VddHoppingSpeeds,
)
from .dag import TaskGraph
from .platform import Mapping, Platform

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "core",
    "dag",
    "platform",
    "lp",
    "optimize",
    "continuous",
    "discrete",
    "complexity",
    "simulation",
    "baselines",
    "experiments",
    "campaign",
    "solvers",
    # most-used classes re-exported at the top level
    "TaskGraph",
    "Platform",
    "Mapping",
    "EnergyModel",
    "ReliabilityModel",
    "Schedule",
    "SolveResult",
    "BiCritProblem",
    "TriCritProblem",
    "ContinuousSpeeds",
    "DiscreteSpeeds",
    "VddHoppingSpeeds",
    "IncrementalSpeeds",
]
