"""repro: energy-aware DVFS scheduling under makespan and reliability constraints.

Reproduction of ``conf_ipps_Aupy12`` -- *"Energy-aware Scheduling: Models
and Complexity Results"* (Guillaume Aupy, IPDPS 2012 Workshops & PhD Forum);
see ``PAPER.md`` for the source record.  The library implements the paper's
models -- CONTINUOUS, DISCRETE, VDD-HOPPING and INCREMENTAL speed models,
the cube-law energy model, the exponential transient-fault reliability model
with re-execution -- together with every algorithmic result it states:
closed forms for chains/forks/series-parallel graphs, the convex
(geometric-programming) formulation for general DAGs, the VDD-HOPPING
linear program, the INCREMENTAL approximation algorithm, the NP-hardness
reductions, and the two complementary TRI-CRIT heuristic families, plus the
substrates (task graphs, platforms, list scheduling, LP/MILP solvers,
fault-injection simulator) needed to evaluate them.

Quick start::

    from repro.dag import generators
    from repro.platform import Platform, Mapping
    from repro.core import BiCritProblem, ContinuousSpeeds
    from repro.continuous import solve_bicrit_continuous

    graph = generators.fork(3.0, [2.0, 5.0, 1.0, 4.0])
    platform = Platform(5, ContinuousSpeeds(0.1, 2.0))
    mapping = Mapping.one_task_per_processor(graph)
    problem = BiCritProblem(mapping, platform, deadline=6.0)
    result = solve_bicrit_continuous(problem)
    print(result.energy, result.schedule.makespan())

The stable service-grade front door is :mod:`repro.api` (the versioned v1
facade behind ``python -m repro serve``); see ``README.md`` for an overview,
the experiment index E1-E13, the ``python -m repro`` campaign CLI and the
"Serving" section, and ``PERFORMANCE.md`` for the performance notes.

Subpackages and the most-used classes are imported lazily (PEP 562): a bare
``import repro`` stays cheap and pulls in no experiment or campaign code
until an attribute is actually touched.
"""

from __future__ import annotations

from importlib import import_module
from typing import TYPE_CHECKING, Any

__version__ = "1.0.0"

#: Lazily imported subpackages (``repro.<name>`` loads on first attribute
#: access instead of at ``import repro`` time).
_SUBPACKAGES = frozenset({
    "api",
    "baselines",
    "campaign",
    "complexity",
    "continuous",
    "core",
    "dag",
    "discrete",
    "experiments",
    "lp",
    "optimize",
    "platform",
    "simulation",
    "solvers",
    "store",
})

#: Most-used classes re-exported at the top level, and the canonical error
#: types of the API error mapping -- each resolved from its home subpackage
#: on first access.
_LAZY_EXPORTS = {
    "TaskGraph": "dag",
    "Platform": "platform",
    "Mapping": "platform",
    "EnergyModel": "core",
    "ReliabilityModel": "core",
    "Schedule": "core",
    "SolveResult": "core",
    "BiCritProblem": "core",
    "TriCritProblem": "core",
    "InfeasibleProblemError": "core",
    "ContinuousSpeeds": "core",
    "DiscreteSpeeds": "core",
    "VddHoppingSpeeds": "core",
    "IncrementalSpeeds": "core",
    "InadmissibleSolverError": "solvers",
    "NoAdmissibleSolverError": "solvers",
}

__all__ = [
    "__version__",
    *sorted(_SUBPACKAGES),
    *_LAZY_EXPORTS,
]

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers only
    from . import (  # noqa: F401
        api,
        baselines,
        campaign,
        complexity,
        continuous,
        core,
        dag,
        discrete,
        experiments,
        lp,
        optimize,
        platform,
        simulation,
        solvers,
        store,
    )
    from .core import (  # noqa: F401
        BiCritProblem,
        ContinuousSpeeds,
        DiscreteSpeeds,
        EnergyModel,
        IncrementalSpeeds,
        InfeasibleProblemError,
        ReliabilityModel,
        Schedule,
        SolveResult,
        TriCritProblem,
        VddHoppingSpeeds,
    )
    from .dag import TaskGraph  # noqa: F401
    from .platform import Mapping, Platform  # noqa: F401
    from .solvers import (  # noqa: F401
        InadmissibleSolverError,
        NoAdmissibleSolverError,
    )


def __getattr__(name: str) -> Any:
    """PEP 562 lazy loader for subpackages and top-level re-exports."""
    if name in _SUBPACKAGES:
        # import_module binds the submodule as an attribute on this package.
        return import_module(f".{name}", __name__)
    source = _LAZY_EXPORTS.get(name)
    if source is not None:
        value = getattr(import_module(f".{source}", __name__), name)
        globals()[name] = value       # cache: next access skips __getattr__
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
