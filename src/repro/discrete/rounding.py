"""Continuous -> VDD-HOPPING rounding adapter (Section IV of the paper).

"Finally, we could easily adapt the heuristics for the CONTINUOUS model to
the VDD-HOPPING model: for a solution given by a heuristic for the
CONTINUOUS model, if a task should be executed at the continuous speed f,
then we would execute it at the two closest discrete speeds that bound f,
while matching the execution time and reliability for this task."

:func:`round_execution_to_vdd` performs that per-execution rounding:

* the two consecutive modes bracketing ``f`` are mixed so that the work and
  the execution time are preserved exactly;
* when a reliability budget is given and the convexity of the fault-rate
  function makes the mixed execution slightly *less* reliable than the
  continuous one, the mixture is shifted towards the faster mode (shortening
  the execution, which never hurts the deadline) until the failure
  probability is back within the budget.

:func:`round_schedule_to_vdd` applies it to every execution of a schedule,
and is what experiment E10 uses to quantify the performance loss of the
adaptation.
"""

from __future__ import annotations

import math

from ..core.problems import SolveResult
from ..core.reliability import ReliabilityModel
from ..core.schedule import Execution, Schedule, TaskDecision
from ..core.speeds import VddHoppingSpeeds
from ..optimize.bisection import bisect_root
from ..platform.platform import Platform

__all__ = ["round_execution_to_vdd", "round_schedule_to_vdd"]


def round_execution_to_vdd(weight: float, continuous_speed: float,
                           speed_model: VddHoppingSpeeds, *,
                           reliability_model: ReliabilityModel | None = None,
                           failure_budget: float | None = None) -> Execution:
    """Round one constant-speed execution to a two-mode VDD-HOPPING execution.

    Parameters
    ----------
    failure_budget:
        Maximum admissible failure probability of this single execution.
        Only used when ``reliability_model`` is given; when the plain
        work/time-preserving mixture exceeds the budget the mixture is
        shifted towards the upper mode (by bisection on the time spent at
        the lower mode).
    """
    if weight < 0:
        raise ValueError("weight must be non-negative")
    if weight == 0:
        return Execution.at_speed(0.0, speed_model.fmax)
    f = speed_model.clamp(continuous_speed)
    lo, hi = speed_model.bracketing_speeds(f)
    intervals = speed_model.hop_split(f, weight)
    execution = Execution.from_intervals(intervals)

    if reliability_model is None or failure_budget is None:
        return execution
    if execution.failure_probability(reliability_model) <= failure_budget + 1e-15:
        return execution
    if abs(hi - lo) <= 1e-12:
        # Single mode: nothing to shift; the caller must pick a faster mode.
        return execution

    lam_lo = float(reliability_model.fault_rate(lo))
    lam_hi = float(reliability_model.fault_rate(hi))

    def failure_for_tlo(t_lo: float) -> float:
        # Work conservation fixes t_hi once t_lo is chosen.
        t_hi = (weight - lo * t_lo) / hi
        return lam_lo * t_lo + lam_hi * t_hi

    t_lo_max = next((t for s, t in intervals if abs(s - lo) <= 1e-12), 0.0)
    # failure_for_tlo is increasing in t_lo (lam_lo > lam_hi and the work
    # shift is favourable), so the reliable region is an interval [0, t*].
    if failure_for_tlo(0.0) > failure_budget + 1e-15:
        # Even running entirely at the upper mode misses the budget; return
        # the all-upper execution (the caller's reliability check will flag it).
        return Execution.from_intervals([(hi, weight / hi)])
    t_star = bisect_root(
        lambda t: failure_for_tlo(t) - failure_budget, 0.0, max(t_lo_max, 1e-18)
    ) if failure_for_tlo(t_lo_max) > failure_budget else t_lo_max
    t_hi = (weight - lo * t_star) / hi
    parts = []
    if t_star > 1e-15:
        parts.append((lo, t_star))
    if t_hi > 1e-15:
        parts.append((hi, t_hi))
    return Execution.from_intervals(parts)


def round_schedule_to_vdd(schedule: Schedule, vdd_platform: Platform, *,
                          reliability_model: ReliabilityModel | None = None,
                          match_reliability: bool = False) -> Schedule:
    """Round every execution of a CONTINUOUS schedule to the VDD-HOPPING model.

    The returned schedule lives on ``vdd_platform`` (which must carry a
    :class:`~repro.core.speeds.VddHoppingSpeeds` model).  Execution times are
    preserved, so the makespan -- and therefore deadline feasibility -- is
    unchanged; when ``match_reliability`` is set each execution is also kept
    within the failure budget it had under the continuous schedule.
    """
    speed_model = vdd_platform.speed_model
    if not isinstance(speed_model, VddHoppingSpeeds):
        raise TypeError("round_schedule_to_vdd needs a VddHoppingSpeeds platform")
    model = reliability_model or (
        vdd_platform.reliability() if match_reliability else None
    )
    graph = schedule.graph
    decisions = {}
    for t, decision in schedule.decisions.items():
        w = graph.weight(t)
        if w <= 0:
            decisions[t] = TaskDecision.single(t, w, vdd_platform.fmax)
            continue
        new_executions = []
        for execution in decision.executions:
            budget = None
            if match_reliability and model is not None:
                budget = execution.failure_probability(model)
            new_executions.append(
                round_execution_to_vdd(w, execution.mean_speed(), speed_model,
                                       reliability_model=model,
                                       failure_budget=budget)
            )
        decisions[t] = TaskDecision(t, tuple(new_executions))
    return Schedule(schedule.mapping, vdd_platform, decisions)
