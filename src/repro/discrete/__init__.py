"""Discrete speed-model algorithms (Section IV of the paper)."""

from .exact import solve_bicrit_discrete_bruteforce, solve_bicrit_discrete_milp
from .incremental_approx import approximation_bound, solve_bicrit_incremental_approx
from .rounding import round_execution_to_vdd, round_schedule_to_vdd
from .tricrit_vdd import solve_tricrit_vdd_exact, solve_tricrit_vdd_heuristic
from .vdd_lp import (
    TwoSpeedReport,
    build_vdd_lp,
    solve_bicrit_vdd_lp,
    two_speed_structure,
)

__all__ = [
    "solve_bicrit_vdd_lp",
    "build_vdd_lp",
    "two_speed_structure",
    "TwoSpeedReport",
    "solve_bicrit_discrete_milp",
    "solve_bicrit_discrete_bruteforce",
    "solve_bicrit_incremental_approx",
    "approximation_bound",
    "round_execution_to_vdd",
    "round_schedule_to_vdd",
    "solve_tricrit_vdd_heuristic",
    "solve_tricrit_vdd_exact",
]
