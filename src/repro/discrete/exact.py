"""Exact solvers for BI-CRIT under the DISCRETE / INCREMENTAL models.

The paper proves this problem NP-complete (Section IV), so no polynomial
algorithm is expected; the exact solvers here serve three purposes:

* ground truth for the approximation algorithm and the rounding heuristics
  on small instances,
* the executable side of the 2-PARTITION reduction of
  :mod:`repro.complexity.reductions`,
* the exponential-scaling measurements of experiment E5 (the MILP node
  counts / brute-force subset counts grow exponentially while the
  VDD-HOPPING LP of the same instance stays polynomial).

Two formulations are provided:

* :func:`solve_bicrit_discrete_milp` -- a mixed-integer program with one
  binary per (task, mode), start-time variables and big-M-free precedence
  constraints (durations are exact linear expressions of the binaries), for
  any mapped DAG;
* :func:`solve_bicrit_discrete_bruteforce` -- plain enumeration of the
  ``m^n`` mode assignments (tiny instances / cross-validation only).
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ..core.problems import BiCritProblem, SolveResult
from ..core.schedule import Schedule, TaskDecision
from ..core.speeds import DiscreteSpeeds
from ..dag.taskgraph import TaskId
from ..lp import LinearProgram, LPStatus, solve_with_branch_and_bound, solve_with_scipy
from ..solvers.limits import DISCRETE_BRUTEFORCE_MAX_ASSIGNMENTS

__all__ = [
    "solve_bicrit_discrete_milp",
    "solve_bicrit_discrete_bruteforce",
]


def _discrete_speeds(problem: BiCritProblem) -> tuple[float, ...]:
    speed_model = problem.platform.speed_model
    if not isinstance(speed_model, DiscreteSpeeds):
        raise TypeError(
            "the DISCRETE exact solvers require a DiscreteSpeeds (or subclass) "
            f"platform, got {type(speed_model).__name__}"
        )
    return speed_model.speeds


def _assignment_to_result(problem: BiCritProblem, assignment: dict[TaskId, float],
                          solver: str, metadata: dict) -> SolveResult:
    graph = problem.graph
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        speed = assignment.get(t, problem.platform.fmax)
        decisions[t] = TaskDecision.single(t, w, speed if w > 0 else problem.platform.fmax)
    schedule = Schedule(problem.mapping, problem.platform, decisions)
    return SolveResult(schedule=schedule, energy=schedule.energy(), status="optimal",
                       solver=solver, metadata=metadata)


def solve_bicrit_discrete_milp(problem: BiCritProblem, *, backend: str = "scipy",
                               lp_backend: str = "scipy",
                               max_nodes: int = 200_000) -> SolveResult:
    """Exact BI-CRIT DISCRETE via mixed-integer programming.

    ``backend`` selects the MILP engine: ``"scipy"`` (HiGHS branch and cut)
    or ``"bnb"`` (the in-house branch and bound, whose explored-node count is
    reported in the metadata and used by the scaling experiment).
    """
    speeds = _discrete_speeds(problem)
    graph = problem.graph
    augmented = problem.mapping.augmented_graph()
    deadline = problem.deadline
    exponent = problem.platform.energy_model.exponent

    model = LinearProgram("discrete_bicrit_milp")
    x = {}
    start = {}
    for t in graph.tasks():
        start[t] = model.add_variable(f"b[{t}]", lower=0.0, upper=deadline)
        for s, f in enumerate(speeds):
            x[(t, s)] = model.add_variable(f"x[{t},{s}]", lower=0.0, upper=1.0,
                                           integer=True)

    # Exactly one mode per task.
    for t in graph.tasks():
        chosen = None
        for s in range(len(speeds)):
            chosen = x[(t, s)] if chosen is None else chosen + x[(t, s)]
        # repro: allow[REP006] -- symbolic MILP constraint (operator
        # overloading), not a float comparison
        model.add_constraint(chosen == 1.0, name=f"one_mode[{t}]")

    def duration_expr(t: TaskId):
        w = graph.weight(t)
        expr = None
        for s, f in enumerate(speeds):
            term = x[(t, s)] * (w / f)
            expr = term if expr is None else expr + term
        return expr

    for t in graph.tasks():
        model.add_constraint(start[t] + duration_expr(t) <= deadline,
                             name=f"deadline[{t}]")
    for (u, v) in augmented.edges():
        model.add_constraint(start[v] >= start[u] + duration_expr(u),
                             name=f"prec[{u}->{v}]")

    objective = None
    for t in graph.tasks():
        w = graph.weight(t)
        for s, f in enumerate(speeds):
            term = x[(t, s)] * (w * f ** (exponent - 1.0))
            objective = term if objective is None else objective + term
    model.set_objective(objective, "min")

    if backend == "scipy":
        solution = solve_with_scipy(model)
        nodes = None
    elif backend == "bnb":
        solution = solve_with_branch_and_bound(model, lp_backend=lp_backend,
                                               max_nodes=max_nodes)
        nodes = solution.iterations
    else:
        raise ValueError(f"unknown MILP backend {backend!r}")

    if solution.status != LPStatus.OPTIMAL:
        return SolveResult(schedule=None, energy=math.inf,
                           status="infeasible" if solution.status == LPStatus.INFEASIBLE else "error",
                           solver=f"discrete-milp[{backend}]",
                           metadata={"milp_status": solution.status})

    assignment = {}
    for t in graph.tasks():
        best_s = max(range(len(speeds)), key=lambda s: solution[x[(t, s)]])
        assignment[t] = speeds[best_s]
    metadata = {
        "milp_objective": solution.objective,
        "num_variables": model.num_variables,
        "num_constraints": model.num_constraints,
    }
    if nodes is not None:
        metadata["nodes_explored"] = nodes
    return _assignment_to_result(problem, assignment, f"discrete-milp[{backend}]",
                                 metadata)


def solve_bicrit_discrete_bruteforce(
        problem: BiCritProblem, *,
        max_assignments: int = DISCRETE_BRUTEFORCE_MAX_ASSIGNMENTS) -> SolveResult:
    """Enumerate every mode assignment (exponential; tiny instances only)."""
    speeds = _discrete_speeds(problem)
    graph = problem.graph
    tasks = list(graph.tasks())
    num_assignments = len(speeds) ** len(tasks)
    if num_assignments > max_assignments:
        raise ValueError(
            f"brute force would enumerate {num_assignments} assignments "
            f"(> {max_assignments}); use the MILP solver instead"
        )
    augmented = problem.mapping.augmented_graph()
    order = augmented.topological_order()
    preds = {t: augmented.predecessors(t) for t in order}
    weights = {t: graph.weight(t) for t in tasks}
    exponent = problem.platform.energy_model.exponent

    best_energy = math.inf
    best_assignment: dict[TaskId, float] | None = None
    evaluated = 0
    for combo in itertools.product(speeds, repeat=len(tasks)):
        evaluated += 1
        assignment = dict(zip(tasks, combo))
        energy = sum(weights[t] * assignment[t] ** (exponent - 1.0) for t in tasks)
        if energy >= best_energy:
            continue
        finish: dict[TaskId, float] = {}
        for t in order:
            s = max((finish[p] for p in preds[t]), default=0.0)
            finish[t] = s + (weights[t] / assignment[t] if weights[t] > 0 else 0.0)
        makespan = max(finish.values(), default=0.0)
        if makespan <= problem.deadline * (1.0 + 1e-12):
            best_energy = energy
            best_assignment = assignment
    if best_assignment is None:
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver="discrete-bruteforce",
                           metadata={"assignments_evaluated": evaluated})
    return _assignment_to_result(problem, best_assignment, "discrete-bruteforce",
                                 {"assignments_evaluated": evaluated})
