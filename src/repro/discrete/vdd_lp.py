"""BI-CRIT under the VDD-HOPPING model: the paper's polynomial LP solution.

Section IV: "With the VDD-HOPPING model, we show that this problem can be
solved in polynomial time using a linear program."

Formulation.  For every task ``T_i`` and every discrete mode ``f_s`` let
``alpha_{i,s} >= 0`` be the time ``T_i`` spends running at speed ``f_s``; let
``b_i >= 0`` be the start time of ``T_i``.  Then

    minimise    sum_{i,s} f_s^3 * alpha_{i,s}                 (energy)
    subject to  sum_s f_s * alpha_{i,s}  = w_i                (work)
                b_j >= b_i + sum_s alpha_{i,s}                (edges of the
                                                               augmented graph)
                b_i + sum_s alpha_{i,s} <= D                  (deadline)

Everything is linear, so the problem is polynomial -- in contrast with the
NP-complete DISCRETE model where each task must pick exactly one mode.

The optimal basic solutions of this LP use at most two non-zero
``alpha_{i,s}`` per task and those two modes can be taken *consecutive*
(mixing two consecutive speeds dominates any other mixture for the same
average speed because ``f^3`` is convex); :func:`two_speed_structure`
extracts and reports that structure, which experiment E4 verifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.problems import BiCritProblem, SolveResult
from ..core.schedule import Execution, Schedule, TaskDecision
from ..core.speeds import VddHoppingSpeeds
from ..dag.taskgraph import TaskId
from ..lp import LinearProgram, LPStatus, solve as lp_solve

__all__ = ["solve_bicrit_vdd_lp", "two_speed_structure", "build_vdd_lp"]

_ALPHA_TOL = 1e-7


def build_vdd_lp(problem: BiCritProblem) -> tuple[LinearProgram, dict[tuple[TaskId, int], "object"], dict[TaskId, "object"]]:
    """Build the VDD-HOPPING LP for a BI-CRIT instance.

    Returns ``(model, alpha_vars, start_vars)`` where ``alpha_vars`` maps
    ``(task, mode index)`` to the corresponding LP variable.
    """
    speed_model = problem.platform.speed_model
    if not isinstance(speed_model, VddHoppingSpeeds):
        raise TypeError(
            "the VDD-HOPPING LP requires a VddHoppingSpeeds platform, got "
            f"{type(speed_model).__name__}"
        )
    graph = problem.graph
    augmented = problem.mapping.augmented_graph()
    speeds = speed_model.speeds
    exponent = problem.platform.energy_model.exponent
    deadline = problem.deadline

    model = LinearProgram("vdd_hopping_bicrit")
    alpha = {}
    start = {}
    for t in graph.tasks():
        start[t] = model.add_variable(f"b[{t}]", lower=0.0, upper=deadline)
        for s, f in enumerate(speeds):
            alpha[(t, s)] = model.add_variable(f"alpha[{t},{s}]", lower=0.0,
                                               upper=deadline)

    objective = None
    for t in graph.tasks():
        for s, f in enumerate(speeds):
            term = alpha[(t, s)] * (f ** exponent)
            objective = term if objective is None else objective + term
    model.set_objective(objective, "min")

    for t in graph.tasks():
        work = None
        duration = None
        for s, f in enumerate(speeds):
            w_term = alpha[(t, s)] * f
            work = w_term if work is None else work + w_term
            duration = alpha[(t, s)] if duration is None else duration + alpha[(t, s)]
        model.add_constraint(work == graph.weight(t), name=f"work[{t}]")
        model.add_constraint(start[t] + duration <= deadline, name=f"deadline[{t}]")
    for (u, v) in augmented.edges():
        duration_u = None
        for s in range(len(speeds)):
            duration_u = alpha[(u, s)] if duration_u is None else duration_u + alpha[(u, s)]
        model.add_constraint(start[v] >= start[u] + duration_u, name=f"prec[{u}->{v}]")
    return model, alpha, start


def solve_bicrit_vdd_lp(problem: BiCritProblem, *, backend: str = "scipy",
                        canonicalize: bool = True) -> SolveResult:
    """Solve BI-CRIT VDD-HOPPING exactly through the LP formulation.

    With ``canonicalize=True`` (default) every task's optimal speed mixture
    is replaced by the mixture of the two *consecutive* modes bracketing its
    average speed, preserving the work and the duration.  By convexity of
    ``f^3`` this never increases the energy, so the result is still optimal
    -- it is the constructive form of the paper's claim that two consecutive
    speeds always suffice.
    """
    model, alpha, _ = build_vdd_lp(problem)
    solution = lp_solve(model, backend=backend)
    if solution.status != LPStatus.OPTIMAL:
        return SolveResult(schedule=None, energy=math.inf,
                           status="infeasible" if solution.status == LPStatus.INFEASIBLE else "error",
                           solver=f"vdd-hopping-lp[{backend}]",
                           metadata={"lp_status": solution.status})

    graph = problem.graph
    speed_model = problem.platform.speed_model
    speeds = speed_model.speeds
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        if w <= 0:
            decisions[t] = TaskDecision.single(t, w, problem.platform.fmax)
            continue
        intervals = []
        for s, f in enumerate(speeds):
            duration = solution[alpha[(t, s)]]
            if duration > _ALPHA_TOL:
                intervals.append((f, duration))
        if not intervals:  # pragma: no cover - defensive (w>0 forces work)
            intervals = [(problem.platform.fmax, w / problem.platform.fmax)]
        # Rescale minutely so the work matches the weight exactly despite LP
        # tolerance (keeps Schedule.violations clean).
        work = sum(f * d for f, d in intervals)
        if work > 0:
            scale = w / work
            intervals = [(f, d * scale) for f, d in intervals]
        if canonicalize:
            duration = sum(d for _, d in intervals)
            mean_speed = w / duration if duration > 0 else problem.platform.fmax
            intervals = speed_model.hop_split(mean_speed, w) or intervals
        decisions[t] = TaskDecision(t, (Execution.from_intervals(intervals),))
    schedule = Schedule(problem.mapping, problem.platform, decisions)
    return SolveResult(schedule=schedule, energy=schedule.energy(), status="optimal",
                       solver=f"vdd-hopping-lp[{backend}]",
                       metadata={
                           "lp_objective": solution.objective,
                           "lp_backend": solution.backend,
                           "num_variables": model.num_variables,
                           "num_constraints": model.num_constraints,
                       })


@dataclass(frozen=True)
class TwoSpeedReport:
    """Per-task speed-mixing structure of a VDD-HOPPING schedule."""

    speeds_used: dict[TaskId, tuple[float, ...]]
    max_speeds_per_task: int
    all_pairs_consecutive: bool


def two_speed_structure(schedule: Schedule, *, tol: float = 1e-6) -> TwoSpeedReport:
    """Check the paper's structural property on a VDD-HOPPING schedule.

    Reports the set of distinct speeds each task uses, the maximum number of
    distinct speeds over all tasks and whether every task that mixes two
    speeds mixes *consecutive* modes of the platform's speed set.
    """
    speed_model = schedule.platform.speed_model
    modes = getattr(speed_model, "speeds", ())
    speeds_used: dict[TaskId, tuple[float, ...]] = {}
    consecutive = True
    max_count = 0
    for t, decision in schedule.decisions.items():
        used: list[float] = []
        for execution in decision.executions:
            for f, d in execution.intervals:
                if d > tol and not any(abs(f - g) <= tol for g in used):
                    used.append(f)
        used.sort()
        speeds_used[t] = tuple(used)
        max_count = max(max_count, len(used))
        if len(used) == 2 and modes:
            idx = []
            for f in used:
                matches = [k for k, m in enumerate(modes) if abs(m - f) <= tol]
                idx.append(matches[0] if matches else -1)
            if -1 in idx or abs(idx[1] - idx[0]) != 1:
                consecutive = False
        elif len(used) > 2:
            consecutive = False
    return TwoSpeedReport(speeds_used=speeds_used, max_speeds_per_task=max_count,
                          all_pairs_consecutive=consecutive)
