"""Approximation algorithm for BI-CRIT under the INCREMENTAL model.

Section IV of the paper: "with the INCREMENTAL model, we can approximate the
solution within a factor ``(1 + delta/fmin)^2 (1 + 1/K)^2``, in a time
polynomial in the size of the instance and in ``K``."

The algorithm implemented here follows the structure behind that guarantee:

1. solve the CONTINUOUS relaxation of the instance.  In the original
   research report the relaxation on a general DAG is itself only solved
   approximately through a ``K``-step discretisation, which is where the
   ``(1 + 1/K)^2`` factor comes from; here the relaxation is solved
   numerically (closed forms or the convex program), and the optional
   ``K`` parameter reproduces the discretisation loss by shrinking the
   deadline to ``D * K / (K + 1)`` before solving, exactly as if every time
   allotment had been rounded down to a multiple of ``D/(K+1)``;
2. round the speed of every task *up* to the next admissible INCREMENTAL
   mode ``fmin + i*delta``.  Rounding up can only shorten tasks, so the
   deadline constraint still holds;
3. the energy of every task grows by at most ``((f + delta)/f)^2 <=
   (1 + delta/fmin)^2``, which combined with step 1 yields the paper's
   bound.

:func:`approximation_bound` returns the guaranteed factor so experiments can
plot measured ratio against the bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.problems import BiCritProblem, SolveResult
from ..core.schedule import Schedule, TaskDecision
from ..core.speeds import IncrementalSpeeds
from ..continuous.bicrit import solve_bicrit_continuous
from ..platform.platform import Platform

__all__ = ["approximation_bound", "solve_bicrit_incremental_approx"]


def approximation_bound(speed_model: IncrementalSpeeds, *, K: int | None = None,
                        exponent: float = 3.0) -> float:
    """The paper's guarantee ``(1 + delta/fmin)^(a-1) * (1 + 1/K)^(a-1)``.

    With the paper's cube law (``a = 3``) both factors are squared.  When
    ``K`` is ``None`` the continuous relaxation is solved exactly and the
    second factor disappears.
    """
    base = (1.0 + speed_model.delta / speed_model.fmin) ** (exponent - 1.0)
    if K is None:
        return base
    if K < 1:
        raise ValueError("K must be a positive integer")
    return base * (1.0 + 1.0 / K) ** (exponent - 1.0)


def solve_bicrit_incremental_approx(problem: BiCritProblem, *, K: int | None = None,
                                    method: str = "auto") -> SolveResult:
    """Polynomial-time approximation for BI-CRIT INCREMENTAL (and DISCRETE).

    Works for any :class:`~repro.core.speeds.DiscreteSpeeds` platform; the
    proven factor only applies to INCREMENTAL (regularly spaced) speed sets,
    for arbitrary DISCRETE sets the same rounding is a heuristic whose
    quality depends on the largest gap between consecutive modes.
    """
    platform = problem.platform
    speed_model = platform.speed_model
    if not speed_model.is_discrete:
        raise TypeError("the approximation requires a discrete speed model")

    deadline = problem.deadline
    if K is not None:
        if K < 1:
            raise ValueError("K must be a positive integer")
        deadline = problem.deadline * K / (K + 1.0)

    continuous_problem = BiCritProblem(
        mapping=problem.mapping,
        platform=platform.continuous_twin(),
        deadline=deadline,
    )
    relaxation = solve_bicrit_continuous(continuous_problem, method=method)
    if not relaxation.feasible:
        # The shrunk deadline may be infeasible even though the original is;
        # retry without the K-shrink before giving up.
        if K is not None:
            fallback = BiCritProblem(mapping=problem.mapping,
                                     platform=platform.continuous_twin(),
                                     deadline=problem.deadline)
            relaxation = solve_bicrit_continuous(fallback, method=method)
        if not relaxation.feasible:
            return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                               solver="incremental-approx",
                               metadata={"message": "continuous relaxation infeasible"})

    graph = problem.graph
    continuous_schedule = relaxation.require_schedule()
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        if w <= 0:
            decisions[t] = TaskDecision.single(t, w, platform.fmax)
            continue
        continuous_speed = continuous_schedule.decisions[t].executions[0].mean_speed()
        rounded = speed_model.round_up(min(continuous_speed, platform.fmax))
        decisions[t] = TaskDecision.single(t, w, rounded)
    schedule = Schedule(problem.mapping, problem.platform, decisions)
    metadata = {
        "continuous_energy": relaxation.energy,
        "continuous_solver": relaxation.solver,
        "K": K,
    }
    if isinstance(speed_model, IncrementalSpeeds):
        metadata["guaranteed_factor"] = approximation_bound(
            speed_model, K=K, exponent=platform.energy_model.exponent
        )
    return SolveResult(schedule=schedule, energy=schedule.energy(), status="feasible",
                       solver="incremental-approx", metadata=metadata)
