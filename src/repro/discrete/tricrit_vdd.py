"""TRI-CRIT under the VDD-HOPPING model.

Section IV of the paper establishes two facts about this variant:

* only two different speeds are ever needed for the execution of a task
  (the BI-CRIT structural result still holds with reliability);
* the problem is NP-complete -- adding the reliability constraint destroys
  the polynomial LP structure that BI-CRIT VDD-HOPPING enjoys, because the
  choice of *which* tasks to re-execute is combinatorial.

Consequently this module offers:

* :func:`solve_tricrit_vdd_exact` -- enumeration of the re-execution subsets
  where, for each subset, speeds are obtained from the restricted continuous
  program and rounded to bracketing modes while preserving reliability
  (exact up to the continuous-restriction rounding; exponential cost,
  matching the NP-completeness result);
* :func:`solve_tricrit_vdd_heuristic` -- the paper's adaptation: run the
  CONTINUOUS best-of heuristic, then round every execution to the two
  closest bracketing modes while matching execution time and reliability
  (:mod:`repro.discrete.rounding`).
"""

from __future__ import annotations

import itertools
import math

from ..core.problems import SolveResult, TriCritProblem
from ..core.speeds import VddHoppingSpeeds
from ..continuous.heuristics import best_of_heuristics, solve_with_reexec_set
from ..solvers.context import SolverContext
from ..solvers.limits import EXHAUSTIVE_SUBSET_MAX_TASKS
from .rounding import round_schedule_to_vdd

__all__ = ["solve_tricrit_vdd_heuristic", "solve_tricrit_vdd_exact"]


def _continuous_twin_problem(problem: TriCritProblem) -> TriCritProblem:
    return TriCritProblem(
        mapping=problem.mapping,
        platform=problem.platform.continuous_twin(),
        deadline=problem.deadline,
        reliability_model=problem.reliability_model,
    )


def _round_result(problem: TriCritProblem, continuous: SolveResult,
                  solver: str, extra: dict | None = None) -> SolveResult:
    if not continuous.feasible:
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver=solver, metadata=extra or {})
    rounded = round_schedule_to_vdd(
        continuous.require_schedule(), problem.platform,
        reliability_model=problem.reliability(), match_reliability=True,
    )
    metadata = {
        "continuous_energy": continuous.energy,
        "continuous_solver": continuous.solver,
        "reexecuted": continuous.metadata.get("reexecuted", []),
    }
    if extra:
        metadata.update(extra)
    return SolveResult(schedule=rounded, energy=rounded.energy(), status="feasible",
                       solver=solver, metadata=metadata)


def solve_tricrit_vdd_heuristic(problem: TriCritProblem, *,
                                candidates_per_round: int = 3,
                                method: str = "auto") -> SolveResult:
    """CONTINUOUS best-of heuristic followed by reliability-preserving rounding."""
    if not isinstance(problem.platform.speed_model, VddHoppingSpeeds):
        raise TypeError("solve_tricrit_vdd_heuristic needs a VddHoppingSpeeds platform")
    continuous = best_of_heuristics(_continuous_twin_problem(problem),
                                    candidates_per_round=candidates_per_round,
                                    method=method)
    return _round_result(problem, continuous, "tricrit-vdd-heuristic")


def solve_tricrit_vdd_exact(problem: TriCritProblem, *,
                            max_tasks: int = EXHAUSTIVE_SUBSET_MAX_TASKS,
                            method: str = "auto") -> SolveResult:
    """Subset enumeration for TRI-CRIT VDD-HOPPING (small instances).

    For every subset of re-executed tasks the continuous restricted problem
    is solved and rounded to bracketing modes (the rounding preserves the
    execution times, hence deadline feasibility, and the reliability budget
    of every execution).  The minimum over subsets is returned together with
    the number of subsets evaluated -- the exponential factor that the
    NP-completeness result predicts cannot be avoided in general.

    ``max_tasks`` defaults to the same central
    :data:`~repro.solvers.limits.EXHAUSTIVE_SUBSET_MAX_TASKS` as the
    CONTINUOUS subset enumeration (it used to be 12 here and 14 there for
    the identical ``2^n`` cost).
    """
    if not isinstance(problem.platform.speed_model, VddHoppingSpeeds):
        raise TypeError("solve_tricrit_vdd_exact needs a VddHoppingSpeeds platform")
    positive = [t for t in problem.graph.tasks() if problem.graph.weight(t) > 0]
    if len(positive) > max_tasks:
        raise ValueError(
            f"exact VDD TRI-CRIT limited to {max_tasks} tasks (got {len(positive)})"
        )
    twin = _continuous_twin_problem(problem)
    twin_ctx = SolverContext.for_problem(twin)
    best: SolveResult | None = None
    evaluated = 0
    for r in range(len(positive) + 1):
        for subset in itertools.combinations(positive, r):
            continuous = solve_with_reexec_set(twin, subset, method=method,
                                               context=twin_ctx)
            evaluated += 1
            if not continuous.feasible:
                continue
            candidate = _round_result(problem, continuous, "tricrit-vdd-exact")
            if candidate.feasible and (best is None or candidate.energy < best.energy):
                best = candidate
    if best is None:
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver="tricrit-vdd-exact",
                           metadata={"subsets_evaluated": evaluated})
    best.metadata["subsets_evaluated"] = evaluated
    return best
