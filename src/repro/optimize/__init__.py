"""Convex-optimisation substrate: bisection, duration allocation, projected gradient."""

from .allocation import AllocationResult, allocate_durations, equal_speed_durations
from .bisection import bisect_root, expand_bracket, solve_monotone_increasing
from .projected_gradient import (
    ProjectedGradientResult,
    minimize_projected_gradient,
    project_box_budget,
)

__all__ = [
    "bisect_root",
    "expand_bracket",
    "solve_monotone_increasing",
    "AllocationResult",
    "allocate_durations",
    "equal_speed_durations",
    "ProjectedGradientResult",
    "minimize_projected_gradient",
    "project_box_budget",
]
