"""Deadline allocation ("water-filling") solvers for serialised task sets.

The elementary continuous subproblem behind every closed form of the paper
is: given tasks with weights ``w_1..w_n`` that must execute one after the
other within a total time budget ``D``, choose durations ``d_i`` (hence
speeds ``f_i = w_i/d_i``) minimising ``sum_i w_i^a / d_i^{a-1}`` subject to
``sum_i d_i <= D`` and per-task duration bounds coming from ``fmin`` and
``fmax``.

Without bounds the KKT conditions give ``d_i`` proportional to ``w_i``, i.e.
*all tasks run at the same speed* ``sum(w)/D`` -- the "slow every task
equally" rule the paper's chain strategy starts from.  With bounds the
multiplier is found by bisection and clamped tasks sit at their bound
(:func:`allocate_durations`).

The same machinery allocates a deadline across *segments of equivalent
weight* (series compositions of a series-parallel decomposition), because a
segment of equivalent weight ``W`` getting duration ``d`` costs exactly
``W^a / d^{a-1}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .bisection import solve_monotone_increasing

__all__ = [
    "AllocationResult",
    "allocate_durations",
    "allocate_durations_with_bounds",
    "equal_speed_durations",
]


@dataclass(frozen=True)
class AllocationResult:
    """Durations chosen for a serialised set of (equivalent) weights."""

    durations: np.ndarray
    energy: float
    total_time: float
    saturated_lower: np.ndarray  # tasks forced to run at fmax (minimum duration)
    saturated_upper: np.ndarray  # tasks forced to run at fmin (maximum duration)

    @property
    def speeds(self) -> np.ndarray:
        """Implied constant speeds ``w_i / d_i`` (0 for zero-weight tasks)."""
        out = np.zeros_like(self.durations)
        np.divide(self._weights, self.durations, out=out, where=self.durations > 0)
        return out

    # carried for the speeds property; set in allocate_durations
    _weights: np.ndarray = None  # type: ignore[assignment]


def equal_speed_durations(weights, deadline: float) -> np.ndarray:
    """Unbounded optimum: every task at speed ``sum(w)/deadline``."""
    w = np.asarray(weights, dtype=float)
    total = float(np.sum(w))
    if total == 0:
        return np.zeros_like(w)
    return w * (deadline / total)


def allocate_durations(weights, deadline: float, *, fmin: float | None = None,
                       fmax: float | None = None, exponent: float = 3.0,
                       tol: float = 1e-12) -> AllocationResult:
    """Optimal durations for serialised weights within ``deadline``.

    Solves ``min sum w_i^a / d_i^{a-1}`` s.t. ``sum d_i <= D`` and
    ``w_i/fmax <= d_i <= w_i/fmin`` (bounds omitted when ``fmax``/``fmin``
    are ``None``).  Zero-weight tasks get zero duration and zero energy.

    Raises ``ValueError`` when the instance is infeasible, i.e. when even at
    ``fmax`` the weights do not fit in the deadline.
    """
    w = np.asarray(weights, dtype=float)
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    if exponent <= 1.0:
        raise ValueError("power exponent must exceed 1")

    n = w.size
    lower = np.zeros(n) if fmax is None else w / float(fmax)
    upper = np.full(n, np.inf) if fmin is None else np.where(w > 0, w / float(fmin), 0.0)
    if fmin is not None and fmax is not None and fmin > fmax:
        raise ValueError("fmin cannot exceed fmax")
    return allocate_durations_with_bounds(w, deadline, lower, upper,
                                          exponent=exponent, tol=tol)


def allocate_durations_with_bounds(weights, deadline: float, lower, upper, *,
                                   exponent: float = 3.0,
                                   tol: float = 1e-12) -> AllocationResult:
    """Like :func:`allocate_durations` but with explicit per-task duration bounds.

    ``lower``/``upper`` give, for every task, the minimum and maximum
    admissible duration (e.g. ``w_i/fmax_i`` and ``w_i/fmin_i`` with
    task-specific speed bounds, as needed by the TRI-CRIT chain solver where
    re-executed and single-execution tasks have different speed floors).
    """
    w = np.asarray(weights, dtype=float)
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    if exponent <= 1.0:
        raise ValueError("power exponent must exceed 1")
    if lower.shape != w.shape or upper.shape != w.shape:
        raise ValueError("bounds must have the same shape as the weights")
    if np.any(lower < 0) or np.any(upper < lower - 1e-15):
        raise ValueError("need 0 <= lower <= upper for every task")

    n = w.size
    min_time = float(np.sum(lower))
    if min_time > deadline * (1.0 + 1e-12):
        raise ValueError(
            f"infeasible: even at fmax the serialised tasks need {min_time:.6g} > D={deadline:.6g}"
        )

    positive = w > 0
    if not np.any(positive):
        durations = np.zeros(n)
        return AllocationResult(durations=durations, energy=0.0, total_time=0.0,
                                saturated_lower=np.zeros(n, dtype=bool),
                                saturated_upper=np.zeros(n, dtype=bool),
                                _weights=w)

    # Degenerate brackets: when the lower bounds already consume the whole
    # deadline (re-executions ate all the slack) or every bound is zero-width
    # (``fmin == fmax`` chains), the feasible region is the single point
    # ``d = lower`` -- return that fmax-saturated closed form directly
    # instead of bisecting a zero-width bracket down to the tolerance floor.
    zero_width = bool(np.all(upper[positive] <= lower[positive]
                             * (1.0 + 1e-12) + 1e-300))
    if zero_width or min_time >= deadline * (1.0 - 1e-12):
        durations = np.where(positive, lower, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            per_task = np.where(
                positive, w ** exponent / durations ** (exponent - 1.0), 0.0
            )
        return AllocationResult(
            durations=durations, energy=float(np.sum(per_task)),
            total_time=float(np.sum(durations)),
            saturated_lower=positive.copy(),
            saturated_upper=positive & (upper <= lower * (1.0 + 1e-12) + 1e-300),
            _weights=w)

    # The unconstrained stationary point has d_i = t * w_i for a common
    # scale t; with bounds, d_i(t) = clip(t * w_i, lower_i, upper_i) and the
    # total duration is non-decreasing in t.  Find t so the durations use the
    # whole deadline (or saturate at the upper bounds if the deadline is very
    # loose -- then total time < D and all tasks run at fmin).
    def total_time(t: float) -> float:
        d = np.clip(t * w, lower, upper)
        return float(np.sum(d[positive]))

    # Bracket: t_lo puts everybody at the lower bound, t_hi at the upper bound
    # (or, when some upper bound is infinite, far enough that the deadline is
    # exhausted).
    t_lo = 0.0
    finite_upper = np.isfinite(upper[positive])
    if np.all(finite_upper):
        t_hi = float(np.max(upper[positive] / w[positive])) + 1.0
    else:
        t_hi = max(deadline / float(np.sum(w[positive])), 1.0)
        while total_time(t_hi) < deadline and t_hi < 1e18:
            t_hi *= 2.0

    t_star = solve_monotone_increasing(total_time, deadline, t_lo, t_hi, tol=tol)
    durations = np.clip(t_star * w, lower, upper)
    durations[~positive] = 0.0

    with np.errstate(divide="ignore", invalid="ignore"):
        per_task = np.where(
            positive, w ** exponent / durations ** (exponent - 1.0), 0.0
        )
    energy = float(np.sum(per_task))
    sat_lo = positive & np.isclose(durations, lower, rtol=1e-9, atol=1e-12)
    sat_hi = positive & np.isclose(durations, upper, rtol=1e-9, atol=1e-12)
    return AllocationResult(durations=durations, energy=energy,
                            total_time=float(np.sum(durations)),
                            saturated_lower=sat_lo, saturated_upper=sat_hi,
                            _weights=w)
