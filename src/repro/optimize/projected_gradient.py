"""Projected-gradient descent for smooth convex problems over simple sets.

The general-DAG BI-CRIT CONTINUOUS solver primarily uses scipy's SLSQP /
trust-constr on the linearly-constrained convex program; this module provides
a dependency-light alternative for the *box-constrained* formulations (e.g.
optimising segment durations after the precedence structure has been folded
into a path decomposition) and is also used by a couple of heuristics that
need a quick inner solve.

The implementation is standard: gradient step, Euclidean projection onto the
box (and optionally onto a total-budget simplex-like set), Armijo
backtracking line search on the projected step, convergence measured by the
projected-gradient norm.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

__all__ = ["ProjectedGradientResult", "minimize_projected_gradient", "project_box_budget"]


@dataclass(frozen=True)
class ProjectedGradientResult:
    x: np.ndarray
    objective: float
    iterations: int
    converged: bool
    projected_gradient_norm: float


def project_box_budget(x: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                       budget: float | None = None, *, tol: float = 1e-12,
                       max_iter: int = 200) -> np.ndarray:
    """Project onto ``{x : lower <= x <= upper, sum(x) <= budget}``.

    Without a budget this is a plain box clip.  With a budget the projection
    is computed by bisection on the Lagrange multiplier of the budget
    constraint (the classic continuous-knapsack projection).
    """
    clipped = np.clip(x, lower, upper)
    if budget is None or float(np.sum(clipped)) <= budget + tol:
        return clipped
    if float(np.sum(lower)) > budget + tol:
        raise ValueError("budget is below the sum of lower bounds; projection is empty")

    def total(lam: float) -> float:
        return float(np.sum(np.clip(x - lam, lower, upper)))

    lo, hi = 0.0, float(np.max(x - lower)) + 1.0
    while total(hi) > budget:
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - defensive
            break
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if total(mid) > budget:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol:
            break
    return np.clip(x - hi, lower, upper)


def minimize_projected_gradient(
    objective: Callable[[np.ndarray], float],
    gradient: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    budget: float | None = None,
    max_iter: int = 2000,
    step_init: float = 1.0,
    tol: float = 1e-9,
    armijo: float = 1e-4,
    backtrack: float = 0.5,
) -> ProjectedGradientResult:
    """Minimise a smooth convex ``objective`` over a box (plus optional budget).

    Returns the best iterate found; ``converged`` is set when the projected
    gradient norm falls below ``tol`` times a problem-scale factor.
    """
    x = project_box_budget(np.asarray(x0, dtype=float), lower, upper, budget)
    fx = objective(x)
    step = step_init
    iterations = 0
    pg_norm = np.inf
    for iterations in range(1, max_iter + 1):
        g = gradient(x)
        candidate = project_box_budget(x - step * g, lower, upper, budget)
        direction = candidate - x
        pg_norm = float(np.linalg.norm(direction) / max(step, 1e-300))
        if pg_norm <= tol * max(1.0, float(np.linalg.norm(x))):
            break
        # Armijo backtracking on the projected step.
        decrease = float(np.dot(g, direction))
        t = 1.0
        accepted = False
        for _ in range(60):
            new_x = x + t * direction
            new_f = objective(new_x)
            if new_f <= fx + armijo * t * decrease:
                x, fx = new_x, new_f
                accepted = True
                break
            t *= backtrack
        if not accepted:
            # The step is too aggressive overall; shrink it and retry.
            step *= backtrack
            if step < 1e-16:
                break
        else:
            # Mild step growth keeps progress fast on well-conditioned regions.
            step = min(step / backtrack, 1e6)
    converged = pg_norm <= tol * max(1.0, float(np.linalg.norm(x)))
    return ProjectedGradientResult(x=x, objective=fx, iterations=iterations,
                                   converged=converged,
                                   projected_gradient_norm=pg_norm)
