"""Scalar bisection utilities shared by the continuous solvers.

The closed-form and Lagrangian solvers repeatedly need to solve monotone
scalar equations (find the multiplier such that the durations fill the
deadline, find the slowest reliable re-execution speed, ...).  These helpers
implement robust bracketing bisection with explicit tolerance control.
"""

from __future__ import annotations

import math
from collections.abc import Callable

__all__ = ["bisect_root", "solve_monotone_increasing", "expand_bracket"]


def bisect_root(func: Callable[[float], float], lo: float, hi: float, *,
                tol: float = 1e-12, max_iter: int = 200) -> float:
    """Root of ``func`` on ``[lo, hi]`` by bisection.

    ``func(lo)`` and ``func(hi)`` must have opposite signs (or one of them
    must be zero).  The returned point ``x`` satisfies ``|hi - lo| <= tol *
    max(1, |x|)`` after at most ``max_iter`` halvings.
    """
    if lo > hi:
        raise ValueError(f"invalid bracket: lo={lo} > hi={hi}")
    f_lo = func(lo)
    f_hi = func(hi)
    # repro: allow[REP006] -- exact-root early exit: any nonzero residual,
    # however tiny, correctly falls through to the bisection loop
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:  # repro: allow[REP006] -- exact-root early exit
        return hi
    if f_lo * f_hi > 0:
        raise ValueError(
            f"bisection bracket does not straddle a root: f({lo})={f_lo}, f({hi})={f_hi}"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        f_mid = func(mid)
        if f_mid == 0.0:  # repro: allow[REP006] -- exact-root early exit
            return mid
        if f_lo * f_mid < 0:
            hi, f_hi = mid, f_mid
        else:
            lo, f_lo = mid, f_mid
        if hi - lo <= tol * max(1.0, abs(mid)):
            break
    return 0.5 * (lo + hi)


def expand_bracket(func: Callable[[float], float], start: float, *,
                   factor: float = 2.0, max_expansions: int = 200) -> tuple[float, float]:
    """Find ``hi >= start`` such that ``func`` changes sign on ``[start, hi]``.

    ``func(start)`` must be non-positive and ``func`` non-decreasing in the
    region of interest; the bracket grows geometrically.
    """
    lo = start
    hi = start if start > 0 else 1.0
    value = func(hi)
    expansions = 0
    while value < 0 and expansions < max_expansions:
        hi *= factor
        value = func(hi)
        expansions += 1
    if value < 0:
        raise ValueError("could not bracket a sign change")
    return lo, hi


def solve_monotone_increasing(func: Callable[[float], float], target: float,
                              lo: float, hi: float, *, tol: float = 1e-12,
                              max_iter: int = 200) -> float:
    """Solve ``func(x) == target`` for a non-decreasing ``func`` on ``[lo, hi]``.

    When the target lies outside ``[func(lo), func(hi)]`` the corresponding
    endpoint is returned (saturation), which is the behaviour the duration
    "water-filling" solvers rely on when speed bounds clamp the solution.
    """
    f_lo = func(lo)
    f_hi = func(hi)
    if target <= f_lo:
        return lo
    if target >= f_hi:
        return hi
    return bisect_root(lambda x: func(x) - target, lo, hi, tol=tol, max_iter=max_iter)
