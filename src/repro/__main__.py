"""``python -m repro`` -- the campaign orchestration command line."""

from __future__ import annotations

import sys

from .campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
