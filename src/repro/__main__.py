"""``python -m repro`` -- campaign orchestration and the v1 API server.

``python -m repro serve`` exposes the library over HTTP (see
:mod:`repro.api`); the remaining subcommands drive the experiment
campaigns (see :mod:`repro.campaign.cli`).
"""

from __future__ import annotations

import sys

from .campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
