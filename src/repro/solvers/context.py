"""Shared, memoized per-problem precomputation for every solver.

Each solver used to recompute the same instance facts on entry: the
structure probes (``is_chain`` / ``is_fork`` / series-parallel
decomposition) scanned the graph again in every front-end call, the
feasibility check re-walked the augmented DAG at ``fmax``, and the TRI-CRIT
subset solvers re-bisected the per-task re-execution speed floor for every
one of their ``2^n`` restricted solves.  :class:`SolverContext` computes each
of those quantities lazily, exactly once per problem instance, and is shared
by the dispatcher and by every solver that accepts a ``context`` keyword.

The context is memoized on the problem object itself
(:meth:`SolverContext.for_problem`), so independent call sites -- the
dispatcher, an experiment driver, a heuristic invoked directly -- all see
the same cache for the same instance.
"""

from __future__ import annotations

import math
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from ..core.problems import BiCritProblem, TriCritProblem
from ..core.speeds import (
    ContinuousSpeeds,
    DiscreteSpeeds,
    IncrementalSpeeds,
    VddHoppingSpeeds,
)
from ..dag.analysis import makespan_lower_bound
from ..dag.series_parallel import NotSeriesParallelError, decompose
from ..dag.taskgraph import TaskGraph, TaskId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.schedule import Schedule
    from ..dag.series_parallel import SPNode
    from ..simulation.compile import CompiledSchedule

__all__ = ["SolverContext", "speed_model_kind", "problem_kind"]

#: Attribute under which the context is memoized on the (frozen) problem.
_CACHE_ATTR = "_solver_context"

#: Structure labels, from most to least specific.
STRUCTURES = ("chain", "fork", "series-parallel", "dag")


def speed_model_kind(speed_model) -> str:
    """Classify a speed model as continuous / discrete / vdd / incremental.

    Subclass order matters: VDD-HOPPING and INCREMENTAL speed sets are
    implemented as :class:`~repro.core.speeds.DiscreteSpeeds` subclasses.
    """
    if isinstance(speed_model, IncrementalSpeeds):
        return "incremental"
    if isinstance(speed_model, VddHoppingSpeeds):
        return "vdd"
    if isinstance(speed_model, DiscreteSpeeds):
        return "discrete"
    if isinstance(speed_model, ContinuousSpeeds):
        return "continuous"
    # Unknown SpeedModel subclasses fall back on their discreteness flag.
    return "discrete" if getattr(speed_model, "is_discrete", False) else "continuous"


def problem_kind(problem: BiCritProblem) -> str:
    """``"tricrit"`` for :class:`TriCritProblem`, ``"bicrit"`` otherwise."""
    return "tricrit" if isinstance(problem, TriCritProblem) else "bicrit"


class SolverContext:
    """Lazy, memoized instance analysis shared across solvers.

    Build one with :meth:`for_problem` (cached on the problem) rather than
    calling the constructor directly, so that repeated solves of the same
    instance -- the exhaustive enumerations, the ablation campaigns, the
    dispatcher's admissibility scan -- share every precomputed quantity.
    """

    def __init__(self, problem: BiCritProblem) -> None:
        self.problem = problem
        self._reexec_floor_cache: dict[TaskId, float] = {}

    # ------------------------------------------------------------------
    # construction / memoization
    # ------------------------------------------------------------------
    @classmethod
    def for_problem(cls, problem: BiCritProblem) -> "SolverContext":
        """The problem's memoized context (created on first request)."""
        ctx = getattr(problem, _CACHE_ATTR, None)
        if ctx is None:
            ctx = cls(problem)
            # The problem dataclasses are frozen; bypass the frozen guard the
            # same way their own __post_init__ normalisation does.
            object.__setattr__(problem, _CACHE_ATTR, ctx)
        return ctx

    # ------------------------------------------------------------------
    # instance classification
    # ------------------------------------------------------------------
    @cached_property
    def kind(self) -> str:
        """Problem kind: ``"bicrit"`` or ``"tricrit"``."""
        return problem_kind(self.problem)

    @cached_property
    def speed_kind(self) -> str:
        """Speed-model kind: continuous / discrete / vdd / incremental."""
        return speed_model_kind(self.problem.platform.speed_model)

    @cached_property
    def graph(self) -> TaskGraph:
        return self.problem.graph

    @cached_property
    def augmented(self) -> TaskGraph:
        """Precedence DAG plus same-processor ordering edges (memoized)."""
        return self.problem.mapping.augmented_graph()

    @cached_property
    def topological_order(self) -> tuple[TaskId, ...]:
        return tuple(self.graph.topological_order())

    @cached_property
    def augmented_topological_order(self) -> tuple[TaskId, ...]:
        return tuple(self.augmented.topological_order())

    @cached_property
    def positive_tasks(self) -> tuple[TaskId, ...]:
        """Tasks with positive weight, in topological order."""
        return tuple(t for t in self.topological_order if self.graph.weight(t) > 0)

    @property
    def num_positive_tasks(self) -> int:
        return len(self.positive_tasks)

    @cached_property
    def is_fork(self) -> bool:
        return self.fork_source is not None

    @cached_property
    def fork_source(self) -> TaskId | None:
        ok, source = self.graph.is_fork()
        return source if ok else None

    @cached_property
    def sp_decomposition(self) -> "SPNode | None":
        """Series-parallel decomposition tree, or ``None`` when not SP."""
        try:
            return decompose(self.graph)
        except NotSeriesParallelError:
            return None

    @cached_property
    def structure(self) -> str:
        """Most specific structure label: chain, fork, series-parallel or dag.

        A single-task graph counts as a chain; every chain and fork is also
        series-parallel, so solvers declare the *set* of structures they
        support and the dispatcher matches this most-specific label against
        it.
        """
        if self.graph.is_chain():
            return "chain"
        if self.is_fork and self.graph.num_tasks > 1:
            return "fork"
        if self.sp_decomposition is not None:
            return "series-parallel"
        return "dag"

    # ------------------------------------------------------------------
    # mapping traits
    # ------------------------------------------------------------------
    @cached_property
    def is_single_processor(self) -> bool:
        return self.problem.mapping.is_single_processor()

    @cached_property
    def one_task_per_processor(self) -> bool:
        """Does every processor hold at most one task (fork closed-form setting)?"""
        return all(len(tasks) <= 1 for tasks in self.problem.mapping.as_lists())

    @cached_property
    def mapping_adds_no_edges(self) -> bool:
        """True when same-processor ordering adds no edge beyond precedence."""
        return set(self.augmented.edges()) == set(self.graph.edges())

    # ------------------------------------------------------------------
    # bounds and feasibility
    # ------------------------------------------------------------------
    @cached_property
    def critical_path_weight(self) -> float:
        return self.graph.critical_path_weight()

    @cached_property
    def min_makespan(self) -> float:
        """Makespan with every task run once at ``fmax`` under the mapping."""
        return self.problem.min_makespan()

    @cached_property
    def makespan_lower_bound(self) -> float:
        """Mapping-independent lower bound (critical path vs total area)."""
        return makespan_lower_bound(self.graph, self.problem.mapping.num_processors,
                                    self.problem.platform.fmax)

    @cached_property
    def energy_lower_bound(self) -> float:
        return self.problem.energy_lower_bound()

    @cached_property
    def energy_upper_bound(self) -> float:
        return self.problem.energy_upper_bound()

    @cached_property
    def is_feasible(self) -> bool:
        """Can the deadline be met at all (everything at ``fmax``)?"""
        return self.min_makespan <= self.problem.deadline * (1.0 + 1e-9)

    # ------------------------------------------------------------------
    # reliability precomputation (TRI-CRIT)
    # ------------------------------------------------------------------
    @cached_property
    def reliability(self):
        """The problem's reliability model (platform default for BI-CRIT)."""
        if isinstance(self.problem, TriCritProblem):
            return self.problem.reliability()
        return self.problem.platform.reliability()

    def reexecution_floor(self, task: TaskId) -> float:
        """Slowest admissible equal speed for two executions of ``task``.

        The underlying computation bisects the reliability constraint; the
        subset-enumeration solvers query the same floors for every one of
        their ``2^n`` restricted solves, so the memoization here converts an
        ``O(2^n * n)`` bisection count into ``O(n)``.
        """
        floor = self._reexec_floor_cache.get(task)
        if floor is None:
            model = self.reliability
            fmin = self.problem.platform.fmin
            weight = self.graph.weight(task)
            floor = max(fmin, model.min_equal_reexecution_speed(weight))
            self._reexec_floor_cache[task] = floor
        return floor

    @cached_property
    def reexecution_floors(self) -> dict[TaskId, float]:
        """Re-execution speed floors for every positive-weight task."""
        return {t: self.reexecution_floor(t) for t in self.positive_tasks}

    # ------------------------------------------------------------------
    # compiled arrays
    # ------------------------------------------------------------------
    @cached_property
    def weight_array(self) -> np.ndarray:
        """Task weights in augmented topological order (shared by kernels)."""
        return self.graph.weight_array(self.augmented_topological_order)

    @cached_property
    def exposure_rate_array(self) -> np.ndarray:
        """Fault-rate-at-``frel`` exposure ``lambda(frel) * w_i / frel`` per task.

        This is each task's failure-probability budget (the paper's
        ``1 - R_i(frel)``), in augmented topological order -- the constant
        the reliability-constraint checks compare against.
        """
        model = self.reliability
        w = self.weight_array
        with np.errstate(divide="ignore", invalid="ignore"):
            budget = np.where(w > 0, model.fault_rate(model.frel) * w / model.frel, 0.0)
        return budget

    def compiled(self, schedule: "Schedule") -> "CompiledSchedule":
        """Flat-array form of a schedule (per-schedule memoized exposures)."""
        from ..simulation.compile import compile_schedule

        return compile_schedule(schedule)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Summary dict used by dispatch metadata and reports."""
        return {
            "kind": self.kind,
            "speed_model": self.speed_kind,
            "structure": self.structure,
            "tasks": self.graph.num_tasks,
            "positive_tasks": self.num_positive_tasks,
            "processors": self.problem.mapping.num_processors,
            "single_processor": self.is_single_processor,
            "one_task_per_processor": self.one_task_per_processor,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverContext({self.kind}/{self.speed_kind}, "
            f"structure={self.structure}, n={self.graph.num_tasks})"
        )
