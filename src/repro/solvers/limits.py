"""Central size limits shared by every exponential / enumerative solver.

Before the solver registry existed each exhaustive entry point carried its
own hard-coded guard (``max_tasks`` defaulted to 12 in
:func:`repro.discrete.tricrit_vdd.solve_tricrit_vdd_exact` but 14 in
:func:`repro.continuous.exhaustive.solve_tricrit_exhaustive`, for the same
``2^n`` subset enumeration).  The limits now live here, the solver
descriptors in :mod:`repro.solvers.registry` advertise them as capability
metadata, and the solver keyword defaults reference the same constants, so
one number governs one enumeration cost everywhere.

This module must stay import-free of the rest of the package (it is pulled
in by the algorithm modules while :mod:`repro.solvers` may still be mid
initialisation).
"""

from __future__ import annotations

__all__ = [
    "EXHAUSTIVE_SUBSET_MAX_TASKS",
    "CHAIN_EXACT_MAX_TASKS",
    "FORK_BRUTEFORCE_MAX_TASKS",
    "DISCRETE_BRUTEFORCE_MAX_ASSIGNMENTS",
    "DISCRETE_BRUTEFORCE_MAX_TASKS",
    "BEST_KNOWN_EXHAUSTIVE_LIMIT",
]

#: Positive-weight task bound for the ``2^n`` re-execution subset
#: enumerations, shared by TRI-CRIT CONTINUOUS (``solve_tricrit_exhaustive``)
#: and TRI-CRIT VDD-HOPPING (``solve_tricrit_vdd_exact``).  Each subset costs
#: one restricted convex solve, so 14 tasks means at most 16384 solves.
EXHAUSTIVE_SUBSET_MAX_TASKS = 14

#: The chain subset enumeration is cheaper per subset (a closed-form
#: bounded allocation instead of a convex program), so it affords more tasks.
CHAIN_EXACT_MAX_TASKS = 22

#: Fork brute force enumerates ``2^(n+1)`` re-execution configurations with a
#: scalar minimisation each.
FORK_BRUTEFORCE_MAX_TASKS = 16

#: Cap on the ``m^n`` mode-assignment enumeration of the DISCRETE brute
#: force (``m`` speed modes, ``n`` tasks).
DISCRETE_BRUTEFORCE_MAX_ASSIGNMENTS = 2_000_000

#: Conservative task bound advertised for the DISCRETE brute force: with the
#: common 5-mode speed sets, ``5^9 < DISCRETE_BRUTEFORCE_MAX_ASSIGNMENTS``.
DISCRETE_BRUTEFORCE_MAX_TASKS = 9

#: Below this many positive-weight tasks, ``best_known_tricrit`` prefers the
#: exhaustive optimum over the heuristics as the reference value.
BEST_KNOWN_EXHAUSTIVE_LIMIT = 10
