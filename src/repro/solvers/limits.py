"""Central size limits shared by every exponential / enumerative solver.

Before the solver registry existed each exhaustive entry point carried its
own hard-coded guard (``max_tasks`` defaulted to 12 in
:func:`repro.discrete.tricrit_vdd.solve_tricrit_vdd_exact` but 14 in
:func:`repro.continuous.exhaustive.solve_tricrit_exhaustive`, for the same
``2^n`` subset enumeration).  The limits now live here, the solver
descriptors in :mod:`repro.solvers.registry` advertise them as capability
metadata, and the solver keyword defaults reference the same constants, so
one number governs one enumeration cost everywhere.

This module must stay import-free of the rest of the package (it is pulled
in by the algorithm modules while :mod:`repro.solvers` may still be mid
initialisation).
"""

from __future__ import annotations

__all__ = [
    "EXHAUSTIVE_SUBSET_MAX_TASKS",
    "CHAIN_EXACT_MAX_TASKS",
    "PRUNED_EXACT_MAX_TASKS",
    "PRUNED_CLASS_ENUM_BUDGET",
    "PRUNED_GAP_NODE_BUDGET",
    "FORK_BRUTEFORCE_MAX_TASKS",
    "DISCRETE_BRUTEFORCE_MAX_ASSIGNMENTS",
    "DISCRETE_BRUTEFORCE_MAX_TASKS",
    "BEST_KNOWN_EXHAUSTIVE_LIMIT",
    "BEST_KNOWN_PRUNED_LIMIT",
]

#: Positive-weight task bound for the ``2^n`` re-execution subset
#: enumerations, shared by TRI-CRIT CONTINUOUS (``solve_tricrit_exhaustive``)
#: and TRI-CRIT VDD-HOPPING (``solve_tricrit_vdd_exact``).  Each subset costs
#: one restricted convex solve, so 14 tasks means at most 16384 solves.
#:
#: Since the branch-and-bound solver (``tricrit-pruned``) landed, this limit
#: no longer sets the library's exact-solve ceiling -- it only guards the
#: blind reference enumerators, which the parity tests keep as ground truth.
#: The ceiling for dispatch is :data:`PRUNED_EXACT_MAX_TASKS`.
EXHAUSTIVE_SUBSET_MAX_TASKS = 14

#: The chain subset enumeration is cheaper per subset (a closed-form
#: bounded allocation instead of a convex program), so it affords more tasks.
#: This guards *direct calls* to ``solve_tricrit_chain_exact``; the registry
#: descriptor caps dispatch admissibility at
#: :data:`EXHAUSTIVE_SUBSET_MAX_TASKS` so auto-dispatch hands 15+-task
#: chains to the pruned branch-and-bound instead of a ``2^n`` enumeration.
CHAIN_EXACT_MAX_TASKS = 22

#: Positive-weight task bound under which the branch-and-bound solver
#: (``repro.solvers.pruned``) is advertised as *exact*: dominance and dual
#: lower bounds prune the ``2^n`` subset tree far below enumeration cost, so
#: the ceiling sits well above the blind enumerators'.  Beyond it the
#: gap-certified anytime mode (``tricrit-pruned-gap``) takes over.
PRUNED_EXACT_MAX_TASKS = 30

#: Cap on the number of re-execution *count vectors* the pruned solver's
#: chain weight-class DP enumerates directly (tasks of equal weight are
#: interchangeable on a chain, so ``prod(count_w + 1)`` representative
#: subsets cover all ``2^n``).
PRUNED_CLASS_ENUM_BUDGET = 4096

#: Default branch-and-bound node budget of the gap-certified anytime mode;
#: each node costs one vectorized dual-bound evaluation plus at most one
#: exact subset solve.
PRUNED_GAP_NODE_BUDGET = 4000

#: Fork brute force enumerates ``2^(n+1)`` re-execution configurations with a
#: scalar minimisation each.
FORK_BRUTEFORCE_MAX_TASKS = 16

#: Cap on the ``m^n`` mode-assignment enumeration of the DISCRETE brute
#: force (``m`` speed modes, ``n`` tasks).
DISCRETE_BRUTEFORCE_MAX_ASSIGNMENTS = 2_000_000

#: Conservative task bound advertised for the DISCRETE brute force: with the
#: common 5-mode speed sets, ``5^9 < DISCRETE_BRUTEFORCE_MAX_ASSIGNMENTS``.
DISCRETE_BRUTEFORCE_MAX_TASKS = 9

#: Below this many positive-weight tasks, ``best_known_tricrit`` prefers the
#: exhaustive optimum over the heuristics as the reference value.
BEST_KNOWN_EXHAUSTIVE_LIMIT = 10

#: Between :data:`BEST_KNOWN_EXHAUSTIVE_LIMIT` and this many positive-weight
#: tasks, ``best_known_tricrit`` uses the pruned branch-and-bound optimum as
#: the reference value; beyond it the heuristics take over.
BEST_KNOWN_PRUNED_LIMIT = PRUNED_EXACT_MAX_TASKS
