"""The :class:`Solver` descriptor: one registry entry per algorithm.

A descriptor bundles the callable entry point of a solver with the typed
capability metadata the dispatcher needs to decide admissibility without
running anything: which problem it solves (BI-CRIT / TRI-CRIT), which speed
models it understands, which graph structures it supports, whether it is
exact, an approximation or a heuristic, and how large an instance it can
afford.  The entry point is referenced as a ``"module:callable"`` string and
resolved lazily so the registry can be imported before (or without) the
algorithm modules, which keeps the package free of import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from collections.abc import Callable, Mapping
from typing import Any

from ..core.problems import BiCritProblem, SolveResult
from .context import STRUCTURES, SolverContext

__all__ = ["Solver", "InadmissibleSolverError", "EXACTNESS_ORDER"]

#: Exactness classes in preference order for exact-first dispatch.
EXACTNESS_ORDER = ("exact", "approx", "heuristic")

#: All known speed-model kinds (used to validate descriptor declarations).
_SPEED_KINDS = frozenset({"continuous", "discrete", "vdd", "incremental"})


class InadmissibleSolverError(ValueError):
    """Raised when a solver is asked to run on an instance it does not admit."""


@dataclass(frozen=True)
class Solver:
    """Typed descriptor of one solver entry point.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"tricrit-exhaustive"``.
    impl:
        Entry point as ``"package.module:callable"``; resolved lazily by
        :meth:`resolve`.  The callable takes the problem as its only
        positional argument and returns a
        :class:`~repro.core.problems.SolveResult`.
    problem:
        ``"bicrit"`` or ``"tricrit"``.  TRI-CRIT problems are only ever
        dispatched to TRI-CRIT solvers (a BI-CRIT solver would silently drop
        the reliability constraint) and vice versa.
    speed_models:
        Subset of ``{"continuous", "discrete", "vdd", "incremental"}``.
    structures:
        Graph structures the solver supports, as a subset of
        ``{"chain", "fork", "series-parallel", "dag"}``.  ``"dag"`` marks a
        general solver; the dispatcher matches the instance's most-specific
        structure label against this set, with ``"dag"`` admitting anything.
    exactness:
        ``"exact"`` (provably optimal for its model, possibly at exponential
        cost), ``"approx"`` (guaranteed factor) or ``"heuristic"``.
    max_tasks:
        Bound on the number of positive-weight tasks (``None`` = unbounded).
        Mirrors (and centralises) the guard of the underlying function, so
        admissibility can be decided before calling it.
    requires_single_processor / requires_one_task_per_processor /
    requires_no_extra_mapping_edges:
        Mapping-shape prerequisites of the structure-specialised solvers.
    priority:
        Tie-break among solvers of the same exactness class: lower wins.
        Specialised (closed-form / polynomial) solvers get lower numbers
        than general or enumerative ones.
    default_options:
        Keyword defaults merged under any caller-supplied options -- this is
        where the central limits of :mod:`repro.solvers.limits` are wired to
        the underlying keyword arguments.
    extra_check:
        Optional predicate ``context -> (ok, reason)`` for admissibility
        conditions the declarative fields cannot express (e.g. the
        closed-form front-end admits *either* a fully serialised mapping
        *or* a fully parallel fork -- an OR over mapping shapes).
    """

    name: str
    impl: str
    summary: str
    problem: str
    speed_models: frozenset
    structures: frozenset
    exactness: str
    max_tasks: int | None = None
    requires_single_processor: bool = False
    requires_one_task_per_processor: bool = False
    requires_no_extra_mapping_edges: bool = False
    priority: int = 50
    default_options: Mapping[str, Any] = field(default_factory=dict)
    extra_check: Callable[[SolverContext], tuple[bool, str | None]] | None = None
    #: Short human-readable summary of the ``extra_check`` condition, shown
    #: in the capability table next to the declarative mapping requirements.
    constraints: str = ""

    def __post_init__(self) -> None:
        if self.problem not in ("bicrit", "tricrit"):
            raise ValueError(f"solver {self.name!r}: unknown problem kind {self.problem!r}")
        if self.exactness not in EXACTNESS_ORDER:
            raise ValueError(f"solver {self.name!r}: unknown exactness {self.exactness!r}")
        unknown = set(self.speed_models) - _SPEED_KINDS
        if unknown:
            raise ValueError(f"solver {self.name!r}: unknown speed models {sorted(unknown)}")
        unknown = set(self.structures) - set(STRUCTURES)
        if unknown:
            raise ValueError(f"solver {self.name!r}: unknown structures {sorted(unknown)}")
        if ":" not in self.impl:
            raise ValueError(f"solver {self.name!r}: impl must be 'module:callable'")

    # ------------------------------------------------------------------
    # entry-point resolution
    # ------------------------------------------------------------------
    def resolve(self) -> Callable[..., SolveResult]:
        """Import and return the underlying solver callable."""
        module_name, _, attr = self.impl.partition(":")
        func = getattr(import_module(module_name), attr)
        return func

    # ------------------------------------------------------------------
    # admissibility
    # ------------------------------------------------------------------
    def admissible(self, problem: BiCritProblem,
                   context: SolverContext | None = None) -> tuple[bool, str | None]:
        """Can this solver run on ``problem``?  Returns ``(ok, reason)``.

        ``reason`` explains the *first* failed requirement (``None`` when
        admissible); the dispatcher surfaces it in error messages and the
        ablation experiment records it for skipped solver x instance cells.
        """
        ctx = context if context is not None else SolverContext.for_problem(problem)
        if ctx.kind != self.problem:
            return False, f"solves {self.problem.upper()}, instance is {ctx.kind.upper()}"
        if ctx.speed_kind not in self.speed_models:
            return False, (f"speed model {ctx.speed_kind!r} not in "
                           f"{sorted(self.speed_models)}")
        if "dag" not in self.structures and ctx.structure not in self.structures:
            return False, (f"structure {ctx.structure!r} not in "
                           f"{sorted(self.structures)}")
        if self.requires_single_processor and not ctx.is_single_processor:
            return False, "requires a single-processor mapping"
        if self.requires_one_task_per_processor and not ctx.one_task_per_processor:
            return False, "requires at most one task per processor"
        if self.requires_no_extra_mapping_edges and not ctx.mapping_adds_no_edges:
            return False, "requires a mapping that adds no serialisation edges"
        if self.max_tasks is not None and ctx.num_positive_tasks > self.max_tasks:
            return False, (f"instance has {ctx.num_positive_tasks} positive-weight "
                           f"tasks, limit is {self.max_tasks}")
        if self.extra_check is not None:
            ok, reason = self.extra_check(ctx)
            if not ok:
                return False, reason
        return True, None

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------
    def __call__(self, problem: BiCritProblem, *,
                 context: SolverContext | None = None,
                 validate: bool = True, **options: Any) -> SolveResult:
        """Run the solver with its descriptor defaults under ``options``.

        With ``validate`` (the default) an :class:`InadmissibleSolverError`
        is raised instead of handing the instance to a solver whose
        prerequisites it violates.
        """
        ctx = context if context is not None else SolverContext.for_problem(problem)
        if validate:
            ok, reason = self.admissible(problem, ctx)
            if not ok:
                raise InadmissibleSolverError(
                    f"solver {self.name!r} is not admissible for this instance: {reason}")
        merged = dict(self.default_options)
        merged.update(options)
        return self.resolve()(problem, **merged)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def capabilities(self) -> dict[str, Any]:
        """Flat capability row used by the CLI table and the README generator."""
        mapping_reqs = []
        if self.requires_single_processor:
            mapping_reqs.append("single processor")
        if self.requires_one_task_per_processor:
            mapping_reqs.append("<=1 task/proc")
        if self.requires_no_extra_mapping_edges:
            mapping_reqs.append("no extra mapping edges")
        if self.constraints:
            mapping_reqs.append(self.constraints)
        return {
            "solver": self.name,
            "problem": self.problem,
            "speeds": "+".join(sorted(self.speed_models)),
            "structures": ("any" if "dag" in self.structures
                           else "+".join(s for s in STRUCTURES if s in self.structures)),
            "mapping": "; ".join(mapping_reqs) or "-",
            "exactness": self.exactness,
            "max_tasks": self.max_tasks if self.max_tasks is not None else "-",
            "summary": self.summary,
        }
