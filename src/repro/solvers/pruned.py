"""Pruned exact TRI-CRIT search: branch-and-bound over re-execution subsets.

The blind enumerators (:func:`repro.continuous.exhaustive.solve_tricrit_exhaustive`
and :func:`repro.continuous.tricrit_chain.solve_tricrit_chain_exact`) hit the
``2^n`` wall around 14-22 positive-weight tasks.  This module searches the
same subset space with three pruning devices, which together push the exact
ceiling to :data:`~repro.solvers.limits.PRUNED_EXACT_MAX_TASKS` and yield a
gap-certified anytime mode beyond it:

1. **Dominance.**  A task whose cheapest re-execution (both copies at the
   equal-speed reliability floor ``f_r``) already costs at least its
   cheapest single execution (at ``s = max(f_rel, fmin)``) never re-executes
   in some optimum: swapping it to a single execution of duration
   ``d' = min(d, w/s) <= d`` only shrinks the schedule (feasible on any
   structure) and does not increase the energy, because
   ``2 w f_r^{a-1} >= w s^{a-1}`` bounds the energy at every shared
   duration.  Such tasks are forced *Out* before the search starts.
2. **Lagrangian dual lower bound.**  Relaxing the per-processor deadline
   with a multiplier ``lam >= 0`` decouples the tasks: each task
   contributes ``phi_i(lam) = min_opt min_d [c_opt / d^{a-1} + lam d]``
   over its still-allowed options (single / re-executed), a one-dimensional
   problem solved in closed form.  By weak duality *every* evaluated
   ``lam`` yields a valid lower bound ``L(lam) = sum_i phi_i(lam) - lam D``
   on every completion of the partial assignment; ``L`` is concave with
   supergradient ``sum_i d_i(lam) - D``, so a doubling-then-bisection scan
   maximises it.  Tasks mapped to the same processor serialise within the
   makespan, so the bound decomposes as a sum of per-processor duals.  When
   ``lam = 0`` already satisfies the deadline (loose-deadline instances)
   the dual choice is primal-feasible and the bound is *exact* -- an
   ``O(n)`` fast path that closes the node immediately.
3. **Weight-class DP.**  On a single processor the restricted allocation
   depends only on the *multiset* of (effective weight, floor) pairs, so
   equal-weight tasks are interchangeable: enumerating re-execution *count
   vectors* (one count per weight class) covers all ``2^n`` subsets with
   ``prod_w (count_w + 1)`` representative solves.  When that product fits
   :data:`~repro.solvers.limits.PRUNED_CLASS_ENUM_BUDGET` the search is a
   direct DP scan instead of a tree.

Incumbents come from the dual solution itself: each bound evaluation
suggests a completion (the per-task option choices at the best multiplier),
and at the root the *threshold ordering* -- tasks sorted by the multiplier
at which their re-execution stops paying -- is scanned for the best prefix
subset, which lands a near-optimal feasible schedule in ``O(log n)``-ish
restricted solves even at ``n = 500``.

:func:`solve_tricrit_pruned` runs the search to completion (status
``"optimal"``); :func:`solve_tricrit_pruned_gap` is the anytime variant with
a node budget and a target gap, reporting the certified
``metadata["optimality_gap"] = (incumbent - best outstanding bound) /
incumbent`` -- the incumbent is feasible, the bound is valid, so the true
optimum provably lies in between.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

import numpy as np

from ..core.problems import SolveResult, TriCritProblem
from ..optimize.allocation import allocate_durations_with_bounds
from .context import SolverContext
from .limits import (
    PRUNED_CLASS_ENUM_BUDGET,
    PRUNED_EXACT_MAX_TASKS,
    PRUNED_GAP_NODE_BUDGET,
)

__all__ = ["solve_tricrit_pruned", "solve_tricrit_pruned_gap"]

#: Relative tolerance for incumbent-vs-bound comparisons.
_REL_TOL = 1e-9


@dataclass(frozen=True)
class _Eval:
    """Memoized outcome of one restricted (fixed-subset) solve."""

    feasible: bool
    energy: float
    result: SolveResult | None = None  # kept only on the multi-processor path


@dataclass
class _Instance:
    """Flat per-positive-task arrays plus the memoized subset evaluator."""

    problem: TriCritProblem
    ctx: SolverContext
    tasks: list  # positive-weight TaskIds, topological order
    w: np.ndarray  # weights
    proc: np.ndarray  # processor index per task
    lo_s: np.ndarray  # single-execution duration interval [lo_s, hi_s]
    hi_s: np.ndarray
    lo_r: np.ndarray  # re-execution duration interval [lo_r, hi_r]
    hi_r: np.ndarray
    single_ok: np.ndarray
    reexec_ok: np.ndarray
    exponent: float
    method: str

    def __post_init__(self) -> None:
        self._cache: dict[frozenset, _Eval] = {}
        self._proc_index = [np.flatnonzero(self.proc == p)
                            for p in range(int(self.proc.max()) + 1
                                           if self.proc.size else 0)]

    @property
    def evaluations(self) -> int:
        return len(self._cache)

    def _chain_allocation(self, subset: frozenset):
        """Restricted allocation on a single processor, from the flat arrays.

        All positive tasks serialise within the deadline, so the restricted
        problem is exactly the bounded water-filling -- with the duration
        intervals (hence the memoized reliability floors) read straight off
        the precomputed arrays instead of re-bisecting them per solve.
        """
        mask_r = np.fromiter((t in subset for t in self.tasks), dtype=bool,
                             count=len(self.tasks))
        if np.any(mask_r & ~self.reexec_ok) or np.any(~mask_r & ~self.single_ok):
            return None, None
        eff = np.where(mask_r, 2.0 * self.w, self.w)
        lower = np.where(mask_r, self.lo_r, self.lo_s)
        upper = np.where(mask_r, self.hi_r, self.hi_s)
        try:
            alloc = allocate_durations_with_bounds(
                eff, self.problem.deadline, lower, upper, exponent=self.exponent)
        except ValueError:
            return None, None
        return alloc, eff

    def evaluate(self, subset: frozenset) -> _Eval:
        """Exact restricted solve for one re-execution subset (memoized)."""
        cached = self._cache.get(subset)
        if cached is not None:
            return cached
        if self.ctx.is_single_processor:
            alloc, _ = self._chain_allocation(subset)
            ev = (_Eval(False, math.inf) if alloc is None
                  else _Eval(True, float(alloc.energy)))
        else:
            from ..continuous.heuristics import solve_with_reexec_set

            result = solve_with_reexec_set(self.problem, subset,
                                           method=self.method,
                                           solver_name="tricrit-pruned",
                                           context=self.ctx)
            ev = _Eval(result.feasible, result.energy, result)
        self._cache[subset] = ev
        return ev

    def result_for(self, subset: frozenset, solver_name: str) -> SolveResult:
        """Full :class:`SolveResult` for a subset (built once, at the end)."""
        if not self.ctx.is_single_processor:
            ev = self.evaluate(subset)
            assert ev.result is not None
            return ev.result
        from ..continuous.tricrit_chain import (
            ChainTriCritSolution,
            _to_solve_result,
        )

        alloc, eff = self._chain_allocation(subset)
        if alloc is None:
            sol = ChainTriCritSolution(math.inf, {}, {}, subset, False)
        else:
            speeds = {t: float(eff[i] / alloc.durations[i])
                      for i, t in enumerate(self.tasks)}
            durations = {t: float(alloc.durations[i])
                         for i, t in enumerate(self.tasks)}
            sol = ChainTriCritSolution(float(alloc.energy), speeds, durations,
                                       frozenset(subset), True)
        return _to_solve_result(self.problem, sol, solver_name)


def _exec_energy(eff, d, a):
    """Energy ``eff^a / d^(a-1)`` computed as ``eff * (eff/d)^(a-1)``.

    The naive numerator/denominator form produces ``0/0 = NaN`` for denormal
    weights (``w^a`` and ``d^(a-1)`` both underflow); ``eff/d`` is a *speed*
    inside ``[fmin, fmax]``, so this form cannot underflow into a NaN.
    """
    return eff * (eff / d) ** (a - 1.0)


def _build_instance(problem: TriCritProblem, ctx: SolverContext,
                    method: str) -> _Instance:
    platform = problem.platform
    model = ctx.reliability
    fmax = platform.fmax
    a = platform.energy_model.exponent
    tasks = list(ctx.positive_tasks)
    n = len(tasks)
    w = np.array([problem.graph.weight(t) for t in tasks], dtype=float)
    proc_of = {}
    for p, assigned in enumerate(problem.mapping.as_lists()):
        for t in assigned:
            proc_of[t] = p
    proc = np.array([proc_of[t] for t in tasks], dtype=int) if n else np.zeros(0, int)
    s = np.full(n, max(model.frel, platform.fmin))
    fr = np.array([ctx.reexecution_floor(t) for t in tasks]) if n else np.zeros(0)
    single_ok = s <= fmax * (1.0 + 1e-12)
    reexec_ok = fr <= fmax * (1.0 + 1e-12)
    with np.errstate(divide="ignore"):
        hi_s = np.where(single_ok, w / s, 0.0)
        hi_r = np.where(reexec_ok, 2.0 * w / fr, 0.0)
    return _Instance(
        problem=problem, ctx=ctx, tasks=tasks, w=w, proc=proc,
        lo_s=w / fmax, hi_s=hi_s,
        lo_r=2.0 * w / fmax, hi_r=hi_r,
        single_ok=single_ok, reexec_ok=reexec_ok, exponent=a, method=method,
    )


def _forced_sets(inst: _Instance) -> tuple[set, set] | None:
    """(forced_in, forced_out) index sets, or ``None`` when plainly infeasible.

    *Out*: the dominance rule (cheapest re-execution no cheaper than the
    cheapest single execution), or a re-execution floor above ``fmax``.
    *In*: a single-execution floor above ``fmax`` (only the double run is
    reliable enough).  A task admitting neither option makes the whole
    instance infeasible.
    """
    a = inst.exponent
    forced_in, forced_out = set(), set()
    for i in range(len(inst.tasks)):
        if not inst.single_ok[i] and not inst.reexec_ok[i]:
            return None
        if not inst.single_ok[i]:
            forced_in.add(i)
        elif not inst.reexec_ok[i]:
            forced_out.add(i)
        else:
            s_i = _exec_energy(inst.w[i], inst.hi_s[i], a)
            r_i = _exec_energy(2.0 * inst.w[i], inst.hi_r[i], a)
            # Dominance: 2 w f_r^{a-1} >= w s^{a-1}, in floor-energy form.
            if r_i >= s_i * (1.0 - 1e-12):
                forced_out.add(i)
    return forced_in, forced_out


# ----------------------------------------------------------------------
# Lagrangian dual bound
# ----------------------------------------------------------------------
def _dual_bound(inst: _Instance, allow_s: np.ndarray, allow_r: np.ndarray,
                ) -> tuple[float, np.ndarray, bool]:
    """Best dual lower bound for a partial assignment.

    ``allow_s`` / ``allow_r`` mark the options still open per task (an *In*
    task allows re-execution only, an *Out* task single only, an undecided
    task both).  Returns ``(bound, pick_reexec, exact)`` where
    ``pick_reexec`` is the dual completion suggestion and ``exact`` means the
    bound is attained by a primal-feasible schedule (the ``lam = 0`` loose
    path held on every processor).
    """
    D = inst.problem.deadline
    a = inst.exponent
    total = 0.0
    pick = np.zeros(len(inst.tasks), dtype=bool)
    exact = True
    for idx in inst._proc_index:
        if idx.size == 0:
            continue
        a_s, a_r = allow_s[idx], allow_r[idx]
        if np.any(~a_s & ~a_r):
            return math.inf, pick, False
        lo_s, hi_s = inst.lo_s[idx], inst.hi_s[idx]
        lo_r, hi_r = inst.lo_r[idx], inst.hi_r[idx]
        w = inst.w[idx]
        min_lo = np.where(a_s, lo_s, lo_r)
        if float(np.sum(min_lo)) > D * (1.0 + 1e-12):
            return math.inf, pick, False
        cap_s = np.where(a_s, hi_s, lo_s)
        cap_r = np.where(a_r, hi_r, lo_r)

        def L(lam):
            if lam <= 0.0:
                d_s, d_r = hi_s, hi_r
            else:
                scale = ((a - 1.0) / lam) ** (1.0 / a)
                d_s = np.clip(w * scale, lo_s, cap_s)
                d_r = np.clip(2.0 * w * scale, lo_r, cap_r)
            with np.errstate(divide="ignore", invalid="ignore"):
                v_s = np.where(a_s, _exec_energy(w, d_s, a) + lam * d_s,
                               math.inf)
                v_r = np.where(a_r, _exec_energy(2.0 * w, d_r, a) + lam * d_r,
                               math.inf)
            choose_r = v_r < v_s
            phi = np.where(choose_r, v_r, v_s)
            d = np.where(choose_r, d_r, d_s)
            return float(np.sum(phi)) - lam * D, float(np.sum(d)) - D, choose_r

        val, g, choose = L(0.0)
        if g <= 1e-12 * max(1.0, D):
            # Loose deadline: the dual choice at maximal durations fits, so
            # the relaxation optimum is primal-achievable -- exact bound.
            total += val
            pick[idx] = choose
            continue
        exact = False
        best, best_choose = val, choose
        lam_lo = 0.0
        lam_hi = max(1.0, (a - 1.0) * float(np.max(w)) ** a
                     / max(float(np.min(min_lo[min_lo > 0], initial=1.0)),
                           1e-12) ** a)
        val, g, choose = L(lam_hi)
        if val > best:
            best, best_choose = val, choose
        while g > 0.0 and lam_hi < 1e30:
            lam_lo, lam_hi = lam_hi, lam_hi * 8.0
            val, g, choose = L(lam_hi)
            if val > best:
                best, best_choose = val, choose
        for _ in range(40):
            lam_mid = 0.5 * (lam_lo + lam_hi)
            val, g, choose = L(lam_mid)
            if val > best:
                best, best_choose = val, choose
            if g > 0.0:
                lam_lo = lam_mid
            else:
                lam_hi = lam_mid
        total += best
        pick[idx] = best_choose
    return total, pick, exact


def _threshold_taus(inst: _Instance, idx: np.ndarray) -> np.ndarray:
    """Per-task multiplier at which re-execution stops paying.

    For each task, the dual option values ``v_r(lam)`` and ``v_s(lam)`` cross
    as the deadline price ``lam`` grows (re-execution doubles the minimum
    duration, so a high price always favours the single run); the crossing
    point orders the tasks by how much slack they need before their
    re-execution becomes worthwhile.  Vectorized bisection, heuristic use
    only (incumbent generation), so an approximate crossing is fine.
    """
    a = inst.exponent
    w = inst.w[idx]
    lo_s, hi_s = inst.lo_s[idx], inst.hi_s[idx]
    lo_r, hi_r = inst.lo_r[idx], inst.hi_r[idx]

    def h(lam):
        lam = np.maximum(lam, 1e-300)
        scale = ((a - 1.0) / lam) ** (1.0 / a)
        d_s = np.clip(w * scale, lo_s, hi_s)
        d_r = np.clip(2.0 * w * scale, lo_r, hi_r)
        v_s = _exec_energy(w, d_s, a) + lam * d_s
        v_r = _exec_energy(2.0 * w, d_r, a) + lam * d_r
        return v_r - v_s

    hi = np.ones(idx.size)
    for _ in range(120):
        pending = h(hi) < 0.0
        if not pending.any():
            break
        hi[pending] *= 4.0
    lo = np.zeros(idx.size)
    for _ in range(50):
        mid = 0.5 * (lo + hi)
        below = h(mid) < 0.0
        lo[below] = mid[below]
        hi[~below] = mid[~below]
    return 0.5 * (lo + hi)


def _threshold_incumbent(inst: _Instance, forced_in: set,
                         free: list) -> tuple[float, frozenset] | None:
    """Best feasible subset over the dual-threshold prefix family.

    Orders the free tasks by decreasing crossing threshold and evaluates the
    prefix subsets on a coarse-then-refined grid of prefix lengths: the
    optimum is usually close to a threshold set in this ordering, so this
    lands a near-optimal incumbent with ``O(log n)``-ish restricted solves.
    """
    base = frozenset(inst.tasks[i] for i in forced_in)
    if not free:
        ev = inst.evaluate(base)
        return (ev.energy, base) if ev.feasible else None
    taus = _threshold_taus(inst, np.asarray(free, dtype=int))
    order = [i for _, i in sorted(zip(-taus, free))]
    m = len(order)

    def prefix(k: int) -> frozenset:
        return base | frozenset(inst.tasks[i] for i in order[:k])

    step = max(1, m // 24)
    evals = {k: inst.evaluate(prefix(k)) for k in {*range(0, m + 1, step), m}}
    feasible_ks = [k for k, ev in evals.items() if ev.feasible]
    if feasible_ks:
        best_k = min(feasible_ks, key=lambda k: evals[k].energy)
        for k in range(max(0, best_k - step), min(m, best_k + step) + 1):
            if k not in evals:
                evals[k] = inst.evaluate(prefix(k))
    best: tuple[float, frozenset] | None = None
    for k, ev in evals.items():
        if ev.feasible and (best is None or ev.energy < best[0]):
            best = (ev.energy, prefix(k))
    return best


# ----------------------------------------------------------------------
# chain weight-class DP
# ----------------------------------------------------------------------
def _class_dp(inst: _Instance, forced_in: set, free: list,
              budget: int) -> tuple[tuple[float, frozenset] | None, int] | None:
    """Exact scan over weight-class count vectors, or ``None`` if over budget.

    Sound on a single processor only: there the restricted allocation energy
    depends on the multiset of (effective weight, floor) pairs, never on
    *which* equal-weight task re-executes.
    """
    classes: dict[float, list] = {}
    for i in free:
        classes.setdefault(float(inst.w[i]), []).append(i)
    members = list(classes.values())
    combos = 1
    for group in members:
        combos *= len(group) + 1
        if combos > budget:
            return None
    base = frozenset(inst.tasks[i] for i in forced_in)
    vectors = sorted(itertools.product(*[range(len(g) + 1) for g in members]),
                     key=sum)
    best: tuple[float, frozenset] | None = None
    for counts in vectors:
        chosen = set(base)
        for group, k in zip(members, counts):
            chosen.update(inst.tasks[i] for i in group[:k])
        subset = frozenset(chosen)
        ev = inst.evaluate(subset)
        if ev.feasible and (best is None or ev.energy < best[0]):
            best = (ev.energy, subset)
    return best, len(vectors)


# ----------------------------------------------------------------------
# branch-and-bound core
# ----------------------------------------------------------------------
def _search(problem: TriCritProblem, *, exact_mode: bool, max_tasks: int | None,
            gap_target: float, node_budget: int | None, method: str,
            class_budget: int) -> SolveResult:
    ctx = SolverContext.for_problem(problem)
    solver_name = "tricrit-pruned" if exact_mode else "tricrit-pruned-gap"
    n = ctx.num_positive_tasks
    if max_tasks is not None and n > max_tasks:
        raise ValueError(
            f"pruned exact solver limited to {max_tasks} tasks (got {n}); "
            "use tricrit-pruned-gap for a certified bound beyond the limit")

    def infeasible(extra: dict | None = None) -> SolveResult:
        meta = {"nodes": 0, "lower_bound": math.inf, "optimality_gap": 0.0,
                "strategy": "infeasibility-check",
                "mode": "exact" if exact_mode else "gap"}
        meta.update(extra or {})
        return SolveResult(schedule=None, energy=math.inf, status="infeasible",
                           solver=solver_name, metadata=meta)

    if not ctx.is_feasible:
        return infeasible()

    inst = _build_instance(problem, ctx, method)
    forced = _forced_sets(inst)
    if forced is None:
        return infeasible()
    forced_in, forced_out = forced
    free = [i for i in range(n) if i not in forced_in and i not in forced_out]
    # Branch on the floor-energy gain of re-executing first: large gains are
    # the decisions that move the bound the most, so they split early.
    a = inst.exponent
    gain = {i: (_exec_energy(inst.w[i], inst.hi_s[i], a)
                - _exec_energy(2.0 * inst.w[i], inst.hi_r[i], a)) for i in free}
    free.sort(key=lambda i: gain[i], reverse=True)

    def finish(subset: frozenset, energy: float, *, bound: float, nodes: int,
               strategy: str, extra: dict | None = None) -> SolveResult:
        result = inst.result_for(subset, solver_name)
        inc = energy
        gap = 0.0 if inc <= 0 else max(0.0, (inc - bound) / inc)
        if not math.isfinite(bound):
            gap = 0.0
        result.solver = solver_name
        result.status = "optimal" if (exact_mode or gap <= _REL_TOL) else "feasible"
        result.metadata.update({
            "nodes": nodes,
            "lower_bound": min(bound, inc),
            "optimality_gap": gap if not exact_mode else 0.0,
            "subsets_evaluated": inst.evaluations,
            "strategy": strategy,
            "mode": "exact" if exact_mode else "gap",
            "forced_out": len(forced_out),
            "forced_in": len(forced_in),
        })
        result.metadata.update(extra or {})
        return result

    states_in = frozenset(forced_in)
    states_out = frozenset(forced_out)

    def masks(in_set: frozenset, out_set: frozenset) -> tuple[np.ndarray, np.ndarray]:
        allow_s = inst.single_ok.copy()
        allow_r = inst.reexec_ok.copy()
        for i in in_set:
            allow_s[i] = False
        for i in out_set:
            allow_r[i] = False
        return allow_s, allow_r

    def completion_subset(in_set: frozenset, pick: np.ndarray) -> frozenset:
        chosen = {inst.tasks[i] for i in in_set}
        for i in free:
            if i not in in_set and pick[i]:
                chosen.add(inst.tasks[i])
        return frozenset(chosen)

    # Root bound -- also the loose-deadline O(n) fast path.
    allow_s, allow_r = masks(states_in, states_out)
    root_bound, root_pick, root_exact = _dual_bound(inst, allow_s, allow_r)
    if not math.isfinite(root_bound):
        return infeasible({"strategy": "dual-bound"})
    root_subset = completion_subset(states_in, root_pick)
    incumbent = inst.evaluate(root_subset)
    # The lam = 0 dual choice fills each processor within the deadline, but
    # only on a single processor is that sufficient for schedule feasibility
    # (cross-processor precedence paths can still overrun); so "exact" is
    # only declared when the evaluated completion actually attains the bound.
    if root_exact and incumbent.feasible and \
            incumbent.energy <= root_bound * (1.0 + 1e-9) + 1e-12:
        return finish(root_subset, incumbent.energy, bound=root_bound, nodes=1,
                      strategy="dual-exact")

    # Chain weight-class DP: exact, and often far below the tree's cost.
    if exact_mode and ctx.is_single_processor:
        dp = _class_dp(inst, forced_in, free, class_budget)
        if dp is not None:
            best, vectors = dp
            if best is None:
                return infeasible({"strategy": "class-dp",
                                   "count_vectors": vectors})
            return finish(best[1], best[0], bound=best[0], nodes=0,
                          strategy="class-dp", extra={"count_vectors": vectors})

    # Strong starting incumbent: the dual-threshold prefix family.
    inc_energy, inc_subset = (incumbent.energy, root_subset) \
        if incumbent.feasible else (math.inf, None)
    swept = _threshold_incumbent(inst, forced_in, free)
    if swept is not None and swept[0] < inc_energy:
        inc_energy, inc_subset = swept

    # Best-first branch-and-bound on the free tasks.
    counter = itertools.count()
    heap = [(root_bound, 0, next(counter), states_in, states_out)]
    nodes = 1

    def gap_of(bound: float) -> float:
        if inc_subset is None or inc_energy <= 0:
            return math.inf
        return max(0.0, (inc_energy - min(bound, inc_energy)) / inc_energy)

    while heap:
        bound = heap[0][0]
        if bound >= inc_energy - _REL_TOL * max(1.0, inc_energy):
            heap = []
            break
        if not exact_mode:
            if gap_of(bound) <= gap_target:
                break
            if node_budget is not None and nodes >= node_budget:
                break
        lb, depth, _, in_set, out_set = heapq.heappop(heap)
        if lb >= inc_energy - _REL_TOL * max(1.0, inc_energy):
            continue
        if depth >= len(free):
            # Fully decided: the bound is the restricted (convex) optimum,
            # and the completion evaluated at node creation was the subset
            # itself, so the incumbent already accounts for it.
            continue
        branch_task = free[depth]
        for add_to_in in (True, False):
            child_in = in_set | {branch_task} if add_to_in else in_set
            child_out = out_set if add_to_in else out_set | {branch_task}
            allow_s, allow_r = masks(child_in, child_out)
            child_bound, pick, child_exact = _dual_bound(inst, allow_s, allow_r)
            nodes += 1
            if not math.isfinite(child_bound):
                continue
            if child_bound >= inc_energy - _REL_TOL * max(1.0, inc_energy):
                continue
            child_subset = completion_subset(child_in, pick)
            candidate = inst.evaluate(child_subset)
            if candidate.feasible and candidate.energy < inc_energy:
                inc_energy, inc_subset = candidate.energy, child_subset
            if child_exact and candidate.feasible and \
                    candidate.energy <= child_bound * (1.0 + 1e-9) + 1e-12:
                continue  # bound attained by its own completion; subtree closed
            heapq.heappush(heap, (child_bound, depth + 1, next(counter),
                                  child_in, child_out))

    if inc_subset is None:
        return infeasible({"strategy": "branch-and-bound", "nodes": nodes})
    outstanding = min((entry[0] for entry in heap), default=inc_energy)
    return finish(inc_subset, inc_energy, bound=outstanding, nodes=nodes,
                  strategy="branch-and-bound")


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def solve_tricrit_pruned(problem: TriCritProblem, *,
                         max_tasks: int = PRUNED_EXACT_MAX_TASKS,
                         method: str = "auto",
                         class_budget: int = PRUNED_CLASS_ENUM_BUDGET) -> SolveResult:
    """Exact TRI-CRIT CONTINUOUS optimum by pruned branch-and-bound.

    Explores the re-execution subset space best-first under the Lagrangian
    dual bound, with dominance-forced decisions and the single-processor
    weight-class DP shortcut; runs to proven optimality (``status
    "optimal"``, ``optimality_gap`` 0).  ``max_tasks`` bounds the number of
    positive-weight tasks and defaults to the registry's advertised
    :data:`~repro.solvers.limits.PRUNED_EXACT_MAX_TASKS`.
    """
    return _search(problem, exact_mode=True, max_tasks=max_tasks,
                   gap_target=0.0, node_budget=None, method=method,
                   class_budget=class_budget)


def solve_tricrit_pruned_gap(problem: TriCritProblem, *,
                             gap_target: float = 0.05,
                             node_budget: int = PRUNED_GAP_NODE_BUDGET,
                             method: str = "auto") -> SolveResult:
    """Anytime gap-certified TRI-CRIT search (no size limit).

    Same search as :func:`solve_tricrit_pruned` but stops once the certified
    relative gap falls to ``gap_target`` or ``node_budget`` nodes have been
    bounded.  ``metadata["optimality_gap"]`` is the proven gap between the
    returned (feasible) incumbent and the best outstanding lower bound; the
    status is ``"optimal"`` when the gap closed to numerical zero and
    ``"feasible"`` otherwise.
    """
    return _search(problem, exact_mode=False, max_tasks=None,
                   gap_target=gap_target, node_budget=node_budget,
                   method=method, class_budget=0)
