"""Unified solver registry, auto-dispatch and shared precomputation.

The public surface is small:

* :func:`solve` -- ``solve(problem)`` auto-dispatches to the best
  exact-first admissible solver; ``solve(problem, solver="name")`` runs a
  named one with admissibility validation;
* :class:`SolverContext` -- memoized per-problem precomputation (structure
  probes, feasibility bounds, re-execution speed floors, compiled arrays)
  shared by the dispatcher and the solvers;
* :class:`Solver` plus the registry accessors -- typed capability metadata
  for every algorithm, consumed by ``python -m repro solvers``, the E13
  ablation experiment and the README capability table;
* :mod:`repro.solvers.limits` -- the central size limits every exponential
  solver's keyword defaults reference.
"""

from __future__ import annotations

from . import limits
from .batch import (
    BatchGroup,
    BatchPlan,
    LazyScheduleResult,
    batch_is_feasible,
    batch_reexecution_floors,
    plan_batch,
    solve_batch,
)
from .context import SolverContext, problem_kind, speed_model_kind
from .descriptors import EXACTNESS_ORDER, InadmissibleSolverError, Solver
from .dispatch import NoAdmissibleSolverError, select_solver, solve
from .registry import (
    admissible_solvers,
    capability_rows,
    get_solver,
    iter_solvers,
    register_solver,
    solver_names,
    solvers_for,
)

__all__ = [
    "limits",
    "Solver",
    "SolverContext",
    "EXACTNESS_ORDER",
    "InadmissibleSolverError",
    "NoAdmissibleSolverError",
    "solve",
    "solve_batch",
    "plan_batch",
    "BatchPlan",
    "BatchGroup",
    "LazyScheduleResult",
    "batch_is_feasible",
    "batch_reexecution_floors",
    "select_solver",
    "register_solver",
    "get_solver",
    "iter_solvers",
    "solver_names",
    "solvers_for",
    "admissible_solvers",
    "capability_rows",
    "problem_kind",
    "speed_model_kind",
]
