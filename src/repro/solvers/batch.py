"""Batched solver evaluation: whole instance lists as single NumPy programs.

The scalar front door (:func:`repro.solvers.dispatch.solve`) evaluates one
problem instance per call; campaign grids (the fork sweeps, the E13
solver-ablation cells, Pareto curves) therefore pay per-instance Python
overhead that dominates the cheap closed-form solvers of the paper's
chain/fork analysis.  :func:`solve_batch` takes a *list* of BI-CRIT /
TRI-CRIT instances, groups them by (structure, speed model, dispatched
solver), stacks their weight arrays, and evaluates every group as one array
program:

* **chain closed form** -- every single-processor CONTINUOUS instance is one
  row of a ``total_weight / deadline`` array; speeds, feasibility and
  energies for the whole batch come out of a handful of NumPy ops;
* **fork theorem** -- child weights are stacked into one padded matrix; the
  unsaturated formula, the paper's ``fmax`` saturation case and the
  per-child feasibility checks are evaluated for all forks at once (rows
  whose speeds would clamp at ``fmin`` fall back to the scalar front-end,
  exactly where the scalar route falls back to the convex program);
* **TRI-CRIT chain subset enumeration** -- instances with the same number of
  positive tasks share one ``(2^n, n)`` re-execution mask table; the
  restricted "slow everything equally" allocations of *every subset of every
  instance* are solved by a single vectorized water-filling bisection over a
  ``(batch, subsets, tasks)`` tensor, and the per-task re-execution speed
  floors are found by one vectorized reliability bisection
  (:func:`batch_reexecution_floors`) instead of ``n`` scalar ones per
  instance;
* everything else falls back to per-instance dispatch, so ``solve_batch`` is
  a drop-in replacement for a ``[solve(p) for p in problems]`` loop for
  *every* admissible solver and for ``solver="auto"``.

Results are :class:`LazyScheduleResult` objects: energies, statuses and
metadata are computed by the vectorized kernels, while the per-task
``Schedule`` object (pure Python construction cost) is only materialised
when ``result.schedule`` is first touched.  Equivalence with the scalar path
is property-tested in ``tests/test_batch_solvers.py`` and the speedup is
recorded by ``benchmarks/bench_batch_solvers.py``.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache
from collections.abc import Callable
from typing import Any

import numpy as np

from ..core.columnar import KIND_BICRIT, KIND_TRICRIT, ProblemBatch
from ..core.problems import BiCritProblem, SolveResult, TriCritProblem
from ..core.schedule import Schedule, TaskDecision
from ..dag.taskgraph import TaskId
from .context import SolverContext, speed_model_kind
from .descriptors import InadmissibleSolverError, Solver
from .dispatch import select_solver
from .registry import get_solver

__all__ = [
    "solve_batch",
    "plan_batch",
    "BatchPlan",
    "BatchGroup",
    "ColumnarBatchPlan",
    "LazyScheduleResult",
    "batch_reexecution_floors",
    "batch_is_feasible",
]

#: Kernel labels used by :class:`BatchGroup` (and asserted on by the tests).
KERNEL_CHAIN = "chain-closed-form"
KERNEL_FORK = "fork-closed-form"
KERNEL_TRICRIT_CHAIN = "tricrit-chain-subsets"
KERNEL_SCALAR = "scalar-fallback"

#: Positive-task cap for the vectorized subset table: ``2^n`` rows per
#: instance must stay addressable as one tensor (the scalar enumeration
#: handles larger instances, so those rows fall back per instance).
VECTOR_SUBSET_MAX_TASKS = 16

#: Soft cap on ``batch * subsets * tasks`` elements held at once by the
#: TRI-CRIT chain kernel; larger groups are processed in chunks.
_SUBSET_TENSOR_BUDGET = 4_000_000


# ----------------------------------------------------------------------
# lazy results
# ----------------------------------------------------------------------
class _LazyDispatchMetadata(dict):
    """Result metadata whose ``"dispatch"`` record is built on first access.

    The scalar front door attaches ``ctx.describe()`` to every result; the
    describe probes (structure classification, positive-task counts) cost
    more than an entire vectorized closed-form solve, so the batch kernels
    defer them until somebody actually reads the metadata.  Every read path
    materialises first, which keeps the observable content identical to the
    scalar dispatcher's.
    """

    def __init__(self, base: dict, dispatch_factory: Callable[[], dict]) -> None:
        super().__init__(base)
        self._factory: Callable[[], dict] | None = dispatch_factory

    def _materialise(self) -> None:
        if self._factory is not None:
            factory, self._factory = self._factory, None
            super().setdefault("dispatch", factory())

    def __getitem__(self, key):
        self._materialise()
        return super().__getitem__(key)

    def __contains__(self, key):
        self._materialise()
        return super().__contains__(key)

    def __iter__(self):
        self._materialise()
        return super().__iter__()

    def __len__(self):
        self._materialise()
        return super().__len__()

    def __eq__(self, other):
        self._materialise()
        return dict(self) == other

    def __ne__(self, other):
        return not self.__eq__(other)

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self):
        self._materialise()
        return super().__repr__()

    def get(self, key, default=None):
        self._materialise()
        return super().get(key, default)

    def keys(self):
        self._materialise()
        return super().keys()

    def values(self):
        self._materialise()
        return super().values()

    def items(self):
        self._materialise()
        return super().items()

    def copy(self):
        self._materialise()
        return dict(self)

    def setdefault(self, key, default=None):
        self._materialise()
        return super().setdefault(key, default)

    def pop(self, key, *args):
        self._materialise()
        return super().pop(key, *args)

    def update(self, *args, **kwargs):
        self._materialise()
        return super().update(*args, **kwargs)

    def __reduce__(self):
        # Preserve laziness across pickling: the base entries are read with
        # C-level dict access (bypassing the materialising overrides) and the
        # factory -- a picklable dataclass, not a closure -- rides along, so
        # shipping results through the campaign process pool does not force
        # the dispatch probes.
        base = {k: dict.__getitem__(self, k) for k in dict.keys(self)}
        if self._factory is None:
            return (dict, (base,))
        return (_rebuild_lazy_metadata, (base, self._factory))


def _rebuild_lazy_metadata(base: dict, factory: Callable[[], dict]
                           ) -> _LazyDispatchMetadata:
    """Unpickling hook of :class:`_LazyDispatchMetadata` (kept lazy)."""
    return _LazyDispatchMetadata(base, factory)


class LazyScheduleResult(SolveResult):
    """A :class:`SolveResult` whose ``Schedule`` is built on first access.

    The vectorized kernels compute energies and feasibility for a whole
    batch without touching Python-level schedule objects; constructing the
    per-task :class:`~repro.core.schedule.TaskDecision` dictionaries is
    deferred until a caller actually reads ``result.schedule`` (experiment
    drivers that only consume ``result.energy`` never pay for it).
    """

    def __init__(self, *, builder: Callable[[], Schedule], energy: float,
                 status: str, solver: str,
                 metadata: dict[str, Any] | None = None) -> None:
        self._schedule_builder: Callable[[], Schedule] | None = builder
        super().__init__(schedule=None, energy=energy, status=status,
                         solver=solver,
                         metadata=metadata if metadata is not None else {})

    @property
    def schedule(self) -> Schedule | None:
        if self._schedule is None and self._schedule_builder is not None:
            self._schedule = self._schedule_builder()
            self._schedule_builder = None
        return self._schedule

    @schedule.setter
    def schedule(self, value: Schedule | None) -> None:
        self._schedule = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        built = "built" if self._schedule is not None else "lazy"
        return (f"LazyScheduleResult(solver={self.solver!r}, "
                f"energy={self.energy:.6g}, status={self.status!r}, "
                f"schedule={built})")


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchGroup:
    """One homogeneous slice of a batch: a kernel plus the instance indices."""

    kernel: str
    solver: str
    indices: tuple[int, ...]


@dataclass
class BatchPlan:
    """How :func:`solve_batch` will evaluate one instance list."""

    solver: str                  # the requested solver argument
    auto: bool
    descriptors: list[Solver]    # dispatched descriptor per instance
    groups: list[BatchGroup]

    def kernel_counts(self) -> dict[str, int]:
        """Instance count per kernel (the tests assert vectorized coverage)."""
        counts: dict[str, int] = {}
        for group in self.groups:
            counts[group.kernel] = counts.get(group.kernel, 0) + len(group.indices)
        return counts


#: Route codes of :class:`ColumnarBatchPlan` -- one small int per row, so
#: grouping a columnar batch is a masked scatter over the route column
#: instead of per-instance Python probes.
ROUTE_LEGACY = 0
ROUTE_CHAIN = 1
ROUTE_FORK = 2
ROUTE_TRICRIT = 3

_ROUTE_KERNELS = {
    ROUTE_CHAIN: KERNEL_CHAIN,
    ROUTE_FORK: KERNEL_FORK,
    ROUTE_TRICRIT: KERNEL_TRICRIT_CHAIN,
}

#: Solvers with a fully columnar route; any other name sends every row
#: through the legacy object path (which produces the exact scalar errors
#: and results for solvers the array kernels do not implement).
_COLUMNAR_SOLVERS = frozenset({"auto", "bicrit-closed-form",
                               "tricrit-chain-exact", "tricrit-pruned"})


@dataclass
class ColumnarBatchPlan:
    """How :func:`solve_batch` will evaluate one :class:`ProblemBatch`.

    Fast rows (``routes != ROUTE_LEGACY``) are solved straight off the
    columns without materialising ``Problem`` objects; legacy rows are
    materialised and planned through the object-path :func:`plan_batch`,
    preserving its validation errors and scalar fallbacks byte for byte.
    """

    solver: str
    auto: bool
    batch: ProblemBatch
    routes: np.ndarray                       # int8 route code per row
    legacy_indices: list[int]
    legacy_problems: list[BiCritProblem]
    legacy_contexts: list[SolverContext]
    legacy_plan: BatchPlan | None

    def kernel_counts(self) -> dict[str, int]:
        """Instance count per kernel, columnar and legacy rows combined."""
        counts: dict[str, int] = {}
        for route, kernel in _ROUTE_KERNELS.items():
            hits = int(np.count_nonzero(self.routes == route))
            if hits:
                counts[kernel] = hits
        if self.legacy_plan is not None:
            for kernel, n in self.legacy_plan.kernel_counts().items():
                counts[kernel] = counts.get(kernel, 0) + n
        return counts


def _fast_closed_form_kernel(problem: BiCritProblem,
                             ctx: SolverContext) -> str | None:
    """Kernel label when ``bicrit-closed-form`` *definitely* admits ``problem``.

    A fused version of the descriptor's admissibility check plus
    :func:`_kernel_for` for the two vectorized routes, probing every
    instance fact exactly once and seeding the context's caches with the
    answers.  Returns ``None`` whenever the instance is not certainly on a
    vectorized route -- the caller then falls back to the full
    (reason-producing) admissibility machinery, so this fast path can never
    admit something the scalar dispatcher would reject.

    Soundness for ``solver="auto"``: ``bicrit-closed-form`` sorts first in
    dispatch-preference order (exact, priority 10, alphabetically first), so
    whenever it admits an instance it *is* the auto-dispatch choice.
    """
    if isinstance(problem, TriCritProblem):
        return None
    cache = ctx.__dict__
    if "kind" not in cache:
        cache["kind"] = "bicrit"
    if "speed_kind" not in cache:
        cache["speed_kind"] = speed_model_kind(problem.platform.speed_model)
    if cache["speed_kind"] != "continuous":
        return None
    if "is_single_processor" not in cache:
        cache["is_single_processor"] = problem.mapping.is_single_processor()
    if cache["is_single_processor"]:
        return KERNEL_CHAIN
    if "fork_source" not in cache:
        ok, source = ctx.graph.is_fork()
        cache["fork_source"] = source if ok else None
        cache["is_fork"] = cache["fork_source"] is not None
    if cache["fork_source"] is None or ctx.graph.num_tasks <= 1:
        return None
    if "one_task_per_processor" not in cache:
        cache["one_task_per_processor"] = all(
            len(tasks) <= 1 for tasks in problem.mapping.as_lists())
    if cache["one_task_per_processor"]:
        return KERNEL_FORK
    return None


def _kernel_for(descriptor: Solver, ctx: SolverContext) -> str:
    """Which vectorized kernel (if any) evaluates this dispatched instance."""
    if descriptor.name == "bicrit-closed-form":
        if ctx.is_single_processor:
            return KERNEL_CHAIN
        if ctx.is_fork and ctx.graph.num_tasks > 1 and ctx.one_task_per_processor:
            return KERNEL_FORK
        return KERNEL_SCALAR    # series-parallel recursion stays per instance
    if descriptor.name in ("tricrit-chain-exact", "tricrit-pruned"):
        # Positive-weight tasks only, matching the scalar guards and the
        # descriptor admissibility check; beyond the vector-subset cap the
        # instance runs the scalar solver (enumeration or pruned search).
        if (ctx.is_single_processor
                and 1 <= ctx.num_positive_tasks <= VECTOR_SUBSET_MAX_TASKS):
            return KERNEL_TRICRIT_CHAIN
        return KERNEL_SCALAR
    return KERNEL_SCALAR


def plan_batch(problems: Sequence[BiCritProblem], solver: str = "auto", *,
               contexts: Sequence[SolverContext] | None = None,
               validate: bool = True, vectorize: bool = True) -> BatchPlan:
    """Group ``problems`` by dispatched solver and vectorized kernel.

    Mirrors the scalar dispatch semantics exactly: ``solver="auto"`` selects
    per instance through :func:`repro.solvers.dispatch.select_solver` (and
    raises :class:`~repro.solvers.dispatch.NoAdmissibleSolverError` for an
    instance nothing admits), a named solver is validated per instance when
    ``validate`` is set (raising
    :class:`~repro.solvers.descriptors.InadmissibleSolverError` like the
    descriptor itself would).  ``vectorize=False`` forces every instance
    onto the scalar fallback (used when solver-specific options are passed,
    which the array kernels do not understand).

    A :class:`~repro.core.columnar.ProblemBatch` may be passed instead of an
    instance list; planning then happens directly on the columns (returning
    a :class:`ColumnarBatchPlan`) and only fallback rows are materialised.
    """
    if isinstance(problems, ProblemBatch):
        if contexts is not None:
            raise ValueError("contexts cannot be combined with a ProblemBatch")
        return _plan_batch_columnar(problems, solver, validate=validate,
                                    vectorize=vectorize)
    ctxs = list(contexts) if contexts is not None else \
        [SolverContext.for_problem(p) for p in problems]
    if len(ctxs) != len(problems):
        raise ValueError("contexts must match problems one-to-one")
    auto = solver == "auto"
    descriptors: list[Solver] = []
    kernels: list[str | None] = []
    if auto:
        closed_form = get_solver("bicrit-closed-form")
        for problem, ctx in zip(problems, ctxs):
            kernel = _fast_closed_form_kernel(problem, ctx) if vectorize else None
            if kernel is not None:
                descriptors.append(closed_form)
                kernels.append(kernel)
            else:
                descriptors.append(select_solver(problem, context=ctx))
                kernels.append(None)
    else:
        descriptor = get_solver(solver)
        fast = vectorize and descriptor.name == "bicrit-closed-form"
        for problem, ctx in zip(problems, ctxs):
            kernel = _fast_closed_form_kernel(problem, ctx) if fast else None
            if kernel is None and validate:
                ok, reason = descriptor.admissible(problem, ctx)
                if not ok:
                    raise InadmissibleSolverError(
                        f"solver {descriptor.name!r} is not admissible for "
                        f"this instance: {reason}")
            descriptors.append(descriptor)
            kernels.append(kernel)

    grouped: dict[tuple[str, str], list[int]] = {}
    for index, (descriptor, ctx) in enumerate(zip(descriptors, ctxs)):
        kernel = kernels[index]
        if kernel is None:
            kernel = _kernel_for(descriptor, ctx) if vectorize else KERNEL_SCALAR
        grouped.setdefault((kernel, descriptor.name), []).append(index)
    groups = [BatchGroup(kernel=kernel, solver=name, indices=tuple(indices))
              for (kernel, name), indices in grouped.items()]
    return BatchPlan(solver=solver, auto=auto, descriptors=descriptors,
                     groups=groups)


def _plan_batch_columnar(batch: ProblemBatch, solver: str, *,
                         validate: bool = True,
                         vectorize: bool = True) -> ColumnarBatchPlan:
    """Route every batch row by masked column predicates, no object probes.

    A fast route is only assigned when the columnar parser *verified* the
    facts the scalar admissibility checks would probe (structure, mapping
    shape, speed-model kind, size caps), so a fast row is admissible for its
    kernel solver by construction; everything else -- unknown solvers,
    non-canonical payloads, oversized instances, pre-built problems -- is
    materialised and re-planned through the object path, inheriting its
    exact errors and fallbacks.
    """
    cols = batch.columns
    size = len(batch)
    routes = np.full(size, ROUTE_LEGACY, dtype=np.int8)
    auto = solver == "auto"
    if vectorize and size and solver in _COLUMNAR_SOLVERS:
        fast = ~cols["fallback"]
        bicrit = fast & (cols["kind"] == KIND_BICRIT)
        tricrit = fast & (cols["kind"] == KIND_TRICRIT)
        if solver in ("auto", "bicrit-closed-form"):
            # Serialized mappings take the chain closed form whatever the
            # structure; the mapping-order guard keeps the makespan fold of
            # the wire view identical to the scalar schedule walk.
            chain = (bicrit & cols["single_processor"]
                     & cols["mapping_in_order"])
            fork = (bicrit & ~cols["single_processor"] & cols["is_fork"]
                    & (cols["num_tasks"] > 1)
                    & cols["one_task_per_processor"])
            routes[chain] = ROUTE_CHAIN
            routes[fork] = ROUTE_FORK
        if solver in ("auto", "tricrit-chain-exact", "tricrit-pruned"):
            # Positive-weight tasks only (the scalar guards and the
            # descriptor admissibility agree on that count); the vectorized
            # subset kernel computes the same optimum whichever of the two
            # exact chain solvers was named.
            tri = (tricrit & cols["single_processor"]
                   & cols["mapping_in_order"]
                   & (cols["num_positive"] >= 1)
                   & (cols["num_positive"] <= VECTOR_SUBSET_MAX_TASKS))
            routes[tri] = ROUTE_TRICRIT
    legacy_indices = [int(i) for i in np.flatnonzero(routes == ROUTE_LEGACY)]
    legacy_problems = [batch.problem(i) for i in legacy_indices]
    legacy_contexts = [SolverContext.for_problem(p) for p in legacy_problems]
    legacy_plan = None
    if legacy_indices:
        legacy_plan = plan_batch(legacy_problems, solver,
                                 contexts=legacy_contexts, validate=validate,
                                 vectorize=vectorize)
    return ColumnarBatchPlan(solver=solver, auto=auto, batch=batch,
                             routes=routes, legacy_indices=legacy_indices,
                             legacy_problems=legacy_problems,
                             legacy_contexts=legacy_contexts,
                             legacy_plan=legacy_plan)


# ----------------------------------------------------------------------
# the batch front door
# ----------------------------------------------------------------------
def solve_batch(problems: Sequence[BiCritProblem], solver: str = "auto", *,
                contexts: Sequence[SolverContext] | None = None,
                validate: bool = True,
                plan: BatchPlan | None = None,
                **options: Any) -> list[SolveResult]:
    """Solve many instances at once; a drop-in batched ``solve()`` loop.

    Parameters mirror :func:`repro.solvers.dispatch.solve`; the return value
    is one :class:`~repro.core.problems.SolveResult` per input problem, in
    input order, agreeing with the per-instance scalar path within floating
    point tolerance (and bit-for-bit on statuses, routes and re-execution
    subsets, modulo degenerate energy ties).

    Instances the vectorized kernels understand -- single-processor
    CONTINUOUS chains, fully parallel CONTINUOUS forks, and TRI-CRIT chain
    subset enumerations -- are evaluated as grouped array programs; every
    other instance runs through the scalar dispatcher.  Solver-specific
    ``options`` force the scalar path for the whole batch (the kernels only
    implement the descriptor-default configurations).

    A :class:`~repro.core.columnar.ProblemBatch` may be passed instead of an
    instance list: fast rows are then solved straight off the ragged weight
    arrays (zero per-instance ``Problem`` construction) and carry an eager
    ``wire_view`` for the API layer, while fallback rows run through the
    object path above.
    """
    if isinstance(problems, ProblemBatch):
        if contexts is not None:
            raise ValueError("contexts cannot be combined with a ProblemBatch")
        return _solve_batch_columnar(problems, solver, validate=validate,
                                     plan=plan, **options)
    problems = list(problems)
    ctxs = list(contexts) if contexts is not None else \
        [SolverContext.for_problem(p) for p in problems]
    if plan is None:
        plan = plan_batch(problems, solver, contexts=ctxs, validate=validate,
                          vectorize=not options)
    results: list[SolveResult | None] = [None] * len(problems)
    for group in plan.groups:
        indices = list(group.indices)
        if group.kernel == KERNEL_CHAIN:
            _solve_chain_group(problems, ctxs, indices, plan, results)
        elif group.kernel == KERNEL_FORK:
            _solve_fork_group(problems, ctxs, indices, plan, results)
        elif group.kernel == KERNEL_TRICRIT_CHAIN:
            _solve_tricrit_chain_group(problems, ctxs, indices, plan, results)
        else:
            for i in indices:
                results[i] = _scalar_solve(problems[i], plan.descriptors[i],
                                           ctxs[i], auto=plan.auto,
                                           validate=validate, **options)
    return results  # type: ignore[return-value]


def _dispatch_record(descriptor: Solver, ctx: SolverContext, auto: bool) -> dict:
    """The ``metadata["dispatch"]`` record the scalar front door attaches."""
    return {
        "solver": descriptor.name,
        "auto": auto,
        "exactness": descriptor.exactness,
        **ctx.describe(),
    }


@dataclass
class _DispatchRecordFactory:
    """Picklable deferred ``metadata["dispatch"]`` record.

    Captures the descriptor *name* and the problem instead of the live
    descriptor/context pair, so lazy metadata survives pickling through the
    campaign process pool; the context is re-memoized on the problem on
    first access (in-process that returns the already-seeded context).
    """

    solver_name: str
    auto: bool
    problem: BiCritProblem

    def __call__(self) -> dict:
        ctx = SolverContext.for_problem(self.problem)
        return _dispatch_record(get_solver(self.solver_name), ctx, self.auto)


def _lazy_metadata(base: dict, descriptor: Solver, ctx: SolverContext,
                   auto: bool) -> _LazyDispatchMetadata:
    """Metadata carrying ``base`` plus a deferred scalar dispatch record."""
    return _LazyDispatchMetadata(
        base, _DispatchRecordFactory(descriptor.name, auto, ctx.problem))


def _scalar_solve(problem: BiCritProblem, descriptor: Solver,
                  ctx: SolverContext, *, auto: bool, validate: bool,
                  **options: Any) -> SolveResult:
    """Per-instance fallback, byte-compatible with ``dispatch.solve``."""
    result = descriptor(problem, context=ctx, validate=validate and not auto,
                        **options)
    result.metadata.setdefault("dispatch", _dispatch_record(descriptor, ctx, auto))
    return result


# ----------------------------------------------------------------------
# batched feasibility / speed-floor primitives
# ----------------------------------------------------------------------
def batch_is_feasible(problems: Sequence[BiCritProblem], *,
                      contexts: Sequence[SolverContext] | None = None) -> np.ndarray:
    """Vectorized ``ctx.is_feasible`` over a batch of instances.

    Single-processor instances reduce to one ``total_weight / fmax <= D``
    array comparison (their fmax makespan is the serialised sum); other
    mappings fall back to the context's memoized makespan walk.  The
    computed verdicts are seeded into each context so later scalar accesses
    of ``ctx.is_feasible`` are free.
    """
    ctxs = list(contexts) if contexts is not None else \
        [SolverContext.for_problem(p) for p in problems]
    out = np.empty(len(ctxs), dtype=bool)
    serial_rows = [i for i, ctx in enumerate(ctxs)
                   if ctx.is_single_processor and "is_feasible" not in ctx.__dict__]
    if serial_rows:
        totals = np.array([ctxs[i].graph.total_weight() for i in serial_rows])
        fmax = np.array([ctxs[i].problem.platform.fmax for i in serial_rows])
        deadlines = np.array([ctxs[i].problem.deadline for i in serial_rows])
        feasible = totals / fmax <= deadlines * (1.0 + 1e-9)
        for row, i in enumerate(serial_rows):
            ctxs[i].__dict__["is_feasible"] = bool(feasible[row])
            ctxs[i].__dict__["min_makespan"] = float(totals[row] / fmax[row])
    for i, ctx in enumerate(ctxs):
        out[i] = ctx.is_feasible
    return out


def _floor_array(w: np.ndarray, model_fmin: np.ndarray, model_fmax: np.ndarray,
                 lambda0: np.ndarray, sensitivity: np.ndarray,
                 frel: np.ndarray, *, tol: float = 1e-12) -> np.ndarray:
    """Vectorized ``ReliabilityModel.min_equal_reexecution_speed``.

    All arguments are broadcast-compatible arrays with one entry per
    (instance, task) pair; the return value is the model floor *before* the
    platform ``fmin`` clamp of ``reexecution_speed_floor``.
    """
    w = np.asarray(w, dtype=float)
    shape = np.broadcast_shapes(w.shape, model_fmin.shape, model_fmax.shape,
                                lambda0.shape, sensitivity.shape, frel.shape)
    w, model_fmin, model_fmax, lambda0, sensitivity, frel = (
        np.broadcast_to(a, shape).astype(float)
        for a in (w, model_fmin, model_fmax, lambda0, sensitivity, frel))

    span = model_fmax - model_fmin
    safe_span = np.where(span > 0, span, 1.0)

    def failure(f: np.ndarray) -> np.ndarray:
        scale = np.where(span > 0, (model_fmax - f) / safe_span, 0.0)
        rate = lambda0 * np.exp(sensitivity * scale)
        return np.clip(rate * w / f, 0.0, 1.0)

    budget = failure(frel)
    out = np.empty(shape, dtype=float)

    # budget <= 0: perfect-reliability threshold -- fmin when lambda0 == 0
    # (failure identically zero), frel otherwise (matches the scalar model).
    degenerate = budget <= 0.0
    # repro: allow[REP006] -- lambda0 is an assigned model parameter,
    # never computed; exact zero is the perfect-reliability sentinel
    out[degenerate] = np.where(lambda0[degenerate] == 0.0,
                               model_fmin[degenerate], frel[degenerate])

    active = ~degenerate
    lo = model_fmin.copy()
    hi = frel.copy()
    excess_lo = failure(model_fmin) ** 2 - budget
    excess_hi = failure(frel) ** 2 - budget
    at_lo = active & (excess_lo <= tol)
    out[at_lo] = lo[at_lo]
    at_hi = active & (excess_hi > tol)        # degenerate guard of the scalar
    out[at_hi] = hi[at_hi]

    bisect = active & ~at_lo & ~at_hi
    if np.any(bisect):
        lo_b = lo.copy()
        hi_b = hi.copy()
        for _ in range(200):
            mid = 0.5 * (lo_b + hi_b)
            shrink = failure(mid) ** 2 - budget <= 0.0
            hi_b = np.where(bisect & shrink, mid, hi_b)
            lo_b = np.where(bisect & ~shrink, mid, lo_b)
            if np.all(~bisect | (hi_b - lo_b <= 1e-14 * np.maximum(1.0, hi_b))):
                break
        out[bisect] = hi_b[bisect]
    return out


def batch_reexecution_floors(problems: Sequence[BiCritProblem], *,
                             contexts: Sequence[SolverContext] | None = None
                             ) -> list[dict[TaskId, float]]:
    """Per-task re-execution speed floors for many instances at once.

    One vectorized reliability bisection replaces the per-task scalar
    bisections of ``ctx.reexecution_floor``; results are written back into
    every context's floor cache, so the subset enumerations and greedy
    heuristics that follow pay nothing.
    """
    ctxs = list(contexts) if contexts is not None else \
        [SolverContext.for_problem(p) for p in problems]
    flat_w: list[float] = []
    flat_params: list[tuple[float, float, float, float, float, float]] = []
    spans: list[tuple[SolverContext, list[TaskId]]] = []
    for ctx in ctxs:
        tasks = [t for t in ctx.positive_tasks
                 if t not in ctx._reexec_floor_cache]
        spans.append((ctx, tasks))
        model = ctx.reliability
        pfmin = ctx.problem.platform.fmin
        for t in tasks:
            flat_w.append(ctx.graph.weight(t))
            flat_params.append((model.fmin, model.fmax, model.lambda0,
                                model.sensitivity, model.frel, pfmin))
    if flat_w:
        params = np.array(flat_params, dtype=float)
        floors = _floor_array(np.array(flat_w), params[:, 0], params[:, 1],
                              params[:, 2], params[:, 3], params[:, 4])
        floors = np.maximum(params[:, 5], floors)
        cursor = 0
        for ctx, tasks in spans:
            for t in tasks:
                ctx._reexec_floor_cache[t] = float(floors[cursor])
                cursor += 1
    return [{t: ctx.reexecution_floor(t) for t in ctx.positive_tasks}
            for ctx in ctxs]


# ----------------------------------------------------------------------
# kernel: single-processor CONTINUOUS chains (BI-CRIT closed form)
# ----------------------------------------------------------------------
@dataclass
class _ChainScheduleBuilder:
    """Picklable deferred schedule for a chain closed-form row."""

    problem: BiCritProblem
    speed: float

    def __call__(self) -> Schedule:
        graph = self.problem.graph
        fmax = self.problem.platform.fmax
        decisions = {
            t: TaskDecision.single(t, graph.weight(t),
                                   self.speed if graph.weight(t) > 0 else fmax)
            for t in graph.tasks()
        }
        return Schedule(self.problem.mapping, self.problem.platform, decisions)


def _chain_core(totals: np.ndarray, deadlines: np.ndarray, fmin: np.ndarray,
                fmax: np.ndarray, alpha: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The chain closed form as one array program over per-row columns.

    Shared between the object-path group solver and the columnar kernel so
    both produce bit-identical speeds/energies for the same rows.
    """
    raw_speed = totals / deadlines
    infeasible = (totals > 0) & (raw_speed > fmax * (1.0 + 1e-12))
    speed = np.maximum(raw_speed, fmin)
    energy = totals * speed ** (alpha - 1.0)
    return raw_speed, infeasible, speed, energy


def _solve_chain_group(problems: list[BiCritProblem],
                       ctxs: list[SolverContext], indices: list[int],
                       plan: BatchPlan, results: list[SolveResult | None]) -> None:
    """All single-processor chain closed forms of the batch in one program."""
    totals = np.array([ctxs[i].graph.total_weight() for i in indices])
    deadlines = np.array([problems[i].deadline for i in indices])
    fmin = np.array([problems[i].platform.fmin for i in indices])
    fmax = np.array([problems[i].platform.fmax for i in indices])
    alpha = np.array([problems[i].platform.energy_model.exponent
                      for i in indices])

    raw_speed, infeasible, speed, energy = _chain_core(totals, deadlines,
                                                       fmin, fmax, alpha)

    for row, i in enumerate(indices):
        if infeasible[row]:
            results[i] = SolveResult(
                schedule=None, energy=math.inf, status="infeasible",
                solver="continuous-closed-form[chain]",
                metadata=_lazy_metadata(
                    {"message": (f"chain needs speed {raw_speed[row]:.6g} > "
                                 f"fmax={fmax[row]:.6g} to meet the deadline")},
                    plan.descriptors[i], ctxs[i], plan.auto))
            continue
        if totals[row] == 0:
            row_energy, row_speed = 0.0, 0.0
        else:
            row_energy, row_speed = float(energy[row]), float(speed[row])
        results[i] = LazyScheduleResult(
            builder=_ChainScheduleBuilder(problems[i], row_speed),
            energy=row_energy, status="optimal",
            solver="continuous-closed-form[chain]",
            metadata=_lazy_metadata(
                {"route": "chain", "closed_form_energy": row_energy},
                plan.descriptors[i], ctxs[i], plan.auto))


# ----------------------------------------------------------------------
# kernel: fully parallel CONTINUOUS forks (the paper's fork theorem)
# ----------------------------------------------------------------------
@dataclass
class _ForkScheduleBuilder:
    """Picklable deferred schedule for a fork closed-form row."""

    problem: BiCritProblem
    source: TaskId
    children: tuple[TaskId, ...]
    source_speed: float
    child_speeds: tuple[float, ...]

    def __call__(self) -> Schedule:
        graph = self.problem.graph
        fmax = self.problem.platform.fmax
        speeds = {self.source: self.source_speed}
        speeds.update(zip(self.children, self.child_speeds))
        decisions = {}
        for t in graph.tasks():
            w = graph.weight(t)
            f = speeds[t] if w > 0 else fmax
            decisions[t] = TaskDecision.single(t, w, f if f > 0 else fmax)
        return Schedule(self.problem.mapping, self.problem.platform, decisions)


def _fork_core(w0: np.ndarray, W: np.ndarray, deadlines: np.ndarray,
               fmin: np.ndarray, fmax: np.ndarray, alpha: np.ndarray) -> tuple:
    """The fork theorem (saturation cases included) over per-row columns.

    ``W`` is the zero-padded ``(rows, max_children)`` child-weight matrix.
    Shared between the object-path group solver and the columnar kernel so
    both produce bit-identical speeds/energies for the same rows.
    """
    norm = np.sum(W ** alpha[:, None], axis=1) ** (1.0 / alpha)
    f0 = (norm + w0) / deadlines
    saturated = f0 > fmax * (1.0 + 1e-12)

    source_blocks = saturated & (w0 / fmax >= deadlines)
    with np.errstate(divide="ignore", invalid="ignore"):
        d_prime = deadlines - w0 / fmax
        sat_child = np.where(d_prime[:, None] > 0, W / d_prime[:, None], np.inf)
        unsat_child = np.where(norm[:, None] > 0, f0[:, None] * W / norm[:, None], 0.0)
    child_speed = np.where(saturated[:, None], sat_child, unsat_child)
    child_speed[W == 0] = 0.0
    source_speed = np.where(saturated, fmax, f0)

    child_violation = saturated[:, None] & (child_speed > fmax[:, None] * (1.0 + 1e-12))
    child_blocks = ~source_blocks & np.any(child_violation, axis=1)

    # fmin clamping invalidates the algebraic formula; the scalar front-end
    # falls through to the SP recursion / convex program there, so those
    # rows take the per-instance path.
    speeds_all = np.concatenate([source_speed[:, None], child_speed], axis=1)
    clamped = np.any((speeds_all > 0) & (speeds_all < fmin[:, None] * (1.0 - 1e-12)),
                     axis=1)

    energy = (w0 * source_speed ** (alpha - 1.0)
              + np.sum(W * child_speed ** (alpha[:, None] - 1.0), axis=1))
    return (source_blocks, child_blocks, child_violation, clamped,
            source_speed, child_speed, energy)


def _solve_fork_group(problems: list[BiCritProblem],
                      ctxs: list[SolverContext], indices: list[int],
                      plan: BatchPlan, results: list[SolveResult | None]) -> None:
    """The fork theorem (including the fmax saturation case) for a batch."""
    B = len(indices)
    sources: list[TaskId] = []
    children: list[list[TaskId]] = []
    child_weights: list[list[float]] = []
    w0 = np.empty(B)
    for row, i in enumerate(indices):
        source = ctxs[i].fork_source
        weights = ctxs[i].graph.weights()
        sources.append(source)
        children.append([t for t in weights if t != source])
        child_weights.append([weights[t] for t in children[row]])
        w0[row] = weights[source]
    width = max(len(c) for c in children)

    W = np.zeros((B, width))
    for row in range(B):
        W[row, :len(child_weights[row])] = child_weights[row]
    deadlines = np.array([problems[i].deadline for i in indices])
    fmin = np.array([problems[i].platform.fmin for i in indices])
    fmax = np.array([problems[i].platform.fmax for i in indices])
    alpha = np.array([problems[i].platform.energy_model.exponent
                      for i in indices])

    (source_blocks, child_blocks, child_violation, clamped,
     source_speed, child_speed, energy) = _fork_core(w0, W, deadlines,
                                                     fmin, fmax, alpha)

    for row, i in enumerate(indices):
        if source_blocks[row]:
            results[i] = SolveResult(
                schedule=None, energy=math.inf, status="infeasible",
                solver="continuous-closed-form[fork]",
                metadata=_lazy_metadata(
                    {"message": ("the source alone exceeds the deadline "
                                 "at fmax; no solution")},
                    plan.descriptors[i], ctxs[i], plan.auto))
            continue
        if child_blocks[row]:
            col = int(np.argmax(child_violation[row]))
            child = children[row][col]
            results[i] = SolveResult(
                schedule=None, energy=math.inf, status="infeasible",
                solver="continuous-closed-form[fork]",
                metadata=_lazy_metadata(
                    {"message": (
                        f"child {child!r} needs speed "
                        f"{child_speed[row, col]:.6g} "
                        f"> fmax={fmax[row]:.6g}; no solution")},
                    plan.descriptors[i], ctxs[i], plan.auto))
            continue
        if clamped[row]:
            results[i] = _scalar_solve(problems[i], plan.descriptors[i],
                                       ctxs[i], auto=plan.auto, validate=True)
            continue
        row_energy = float(energy[row])
        results[i] = LazyScheduleResult(
            builder=_ForkScheduleBuilder(
                problems[i], sources[row], tuple(children[row]),
                float(source_speed[row]),
                tuple(float(f) for f in
                      child_speed[row, :len(children[row])])),
            energy=row_energy, status="optimal",
            solver="continuous-closed-form[fork]",
            metadata=_lazy_metadata(
                {"route": "fork", "closed_form_energy": row_energy},
                plan.descriptors[i], ctxs[i], plan.auto))


# ----------------------------------------------------------------------
# kernel: TRI-CRIT chains -- one masked subset table for the whole batch
# ----------------------------------------------------------------------
@lru_cache(maxsize=32)
def _subset_masks(n: int) -> np.ndarray:
    """The ``(2^n, n)`` re-execution mask table in enumeration order.

    Row order matches ``itertools.combinations`` by subset size then
    position, which is the order of the scalar enumeration -- ``argmin``
    therefore picks the same optimal subset as the scalar first-strict-min
    scan.
    """
    rows = np.zeros((2 ** n, n), dtype=bool)
    for row, subset in enumerate(
            itertools.chain.from_iterable(
                itertools.combinations(range(n), r) for r in range(n + 1))):
        rows[row, list(subset)] = True
    return rows


@dataclass
class _TricritChainScheduleBuilder:
    """Picklable deferred schedule for a TRI-CRIT chain subset row."""

    problem: BiCritProblem
    speeds: dict[TaskId, float]
    reexecuted: frozenset[TaskId]

    def __call__(self) -> Schedule:
        graph = self.problem.graph
        fmax = self.problem.platform.fmax
        decisions = {}
        for t in graph.tasks():
            w = graph.weight(t)
            if w <= 0:
                decisions[t] = TaskDecision.single(t, w, fmax)
            elif t in self.reexecuted:
                f = self.speeds[t]
                decisions[t] = TaskDecision.reexecuted(t, w, f, f)
            else:
                decisions[t] = TaskDecision.single(t, w, self.speeds[t])
        return Schedule(self.problem.mapping, self.problem.platform, decisions)


def _tricrit_chain_core(W: np.ndarray, deadlines: np.ndarray,
                        pfmin: np.ndarray, pfmax: np.ndarray,
                        alpha: np.ndarray, reexec_floor: np.ndarray,
                        frel: np.ndarray, masks: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The masked subset water-filling over a ``(B, S, n)`` tensor.

    Shared between the object-path chunk solver and the columnar kernel so
    both produce bit-identical durations/energies for the same rows.
    Returns ``(eff, durations, energy)`` with ``energy`` already ``inf`` on
    infeasible (instance, subset) rows.
    """
    B = W.shape[0]
    S = masks.shape[0]
    single_floor = np.maximum(frel, pfmin)

    eff = W[:, None, :] * (1.0 + masks[None, :, :])              # (B, S, n)
    floor = np.where(masks[None, :, :], reexec_floor[:, None, :],
                     single_floor[:, None, None])
    bad_floor = np.any(floor > pfmax[:, None, None] * (1.0 + 1e-12), axis=2)

    lower = eff / pfmax[:, None, None]
    upper = eff / floor
    min_time = lower.sum(axis=2)
    infeasible = bad_floor | (min_time > deadlines[:, None] * (1.0 + 1e-12))

    # Vectorized water-filling: find t with sum(clip(t*eff, lower, upper))
    # equal to the deadline (or saturate at the loose end), for every
    # (instance, subset) row at once.
    max_time = upper.sum(axis=2)
    t_hi = (1.0 / floor).max(axis=2) + 1.0
    t = np.where(max_time <= deadlines[:, None], t_hi, 0.0)
    active = (~infeasible & (min_time < deadlines[:, None])
              & (deadlines[:, None] < max_time))
    if np.any(active):
        lo_b = np.zeros((B, S))
        hi_b = t_hi.copy()
        for _ in range(200):
            mid = 0.5 * (lo_b + hi_b)
            total = np.clip(mid[:, :, None] * eff, lower, upper).sum(axis=2)
            shrink = total >= deadlines[:, None]
            hi_b = np.where(active & shrink, mid, hi_b)
            lo_b = np.where(active & ~shrink, mid, lo_b)
            if np.all(~active | (hi_b - lo_b
                                 <= 1e-12 * np.maximum(1.0, np.abs(hi_b)))):
                break
        t = np.where(active, 0.5 * (lo_b + hi_b), t)

    durations = np.clip(t[:, :, None] * eff, lower, upper)
    with np.errstate(divide="ignore", invalid="ignore"):
        energy = np.sum(eff ** alpha[:, None, None]
                        / durations ** (alpha[:, None, None] - 1.0), axis=2)
    energy[infeasible] = np.inf
    return eff, durations, energy


def _solve_tricrit_chain_group(problems: list[BiCritProblem],
                               ctxs: list[SolverContext], indices: list[int],
                               plan: BatchPlan,
                               results: list[SolveResult | None]) -> None:
    """Vectorized subset enumeration for TRI-CRIT chains, grouped by size."""
    by_size: dict[int, list[int]] = {}
    for i in indices:
        by_size.setdefault(ctxs[i].num_positive_tasks, []).append(i)
    for n, rows in by_size.items():
        if n == 0:
            # No positive task: the only subset is empty and the schedule is
            # trivial; the scalar path handles this degenerate case exactly.
            for i in rows:
                results[i] = _scalar_solve(problems[i], plan.descriptors[i],
                                           ctxs[i], auto=plan.auto, validate=True)
            continue
        chunk = max(1, _SUBSET_TENSOR_BUDGET // max(1, (2 ** n) * n))
        for start in range(0, len(rows), chunk):
            _tricrit_chain_chunk(problems, ctxs, rows[start:start + chunk],
                                 n, plan, results)


def _tricrit_chain_chunk(problems: list[BiCritProblem],
                         ctxs: list[SolverContext], rows: list[int], n: int,
                         plan: BatchPlan,
                         results: list[SolveResult | None]) -> None:
    B = len(rows)
    masks = _subset_masks(n)                      # (S, n)
    S = masks.shape[0]

    # The chain order of the mapping is the enumeration order of the scalar
    # solver (mapping.tasks_on(0) restricted to positive weights).
    task_ids: list[list[TaskId]] = []
    W = np.empty((B, n))
    for row, i in enumerate(rows):
        order = [t for t in problems[i].mapping.tasks_on(0)
                 if problems[i].graph.weight(t) > 0]
        task_ids.append(order)
        W[row] = [problems[i].graph.weight(t) for t in order]

    deadlines = np.array([problems[i].deadline for i in rows])
    pfmin = np.array([problems[i].platform.fmin for i in rows])
    pfmax = np.array([problems[i].platform.fmax for i in rows])
    alpha = np.array([problems[i].platform.energy_model.exponent for i in rows])

    # Batched speed floors: one vectorized reliability bisection for every
    # (instance, task) pair, seeded back into the contexts' caches.
    floors = batch_reexecution_floors([problems[i] for i in rows],
                                      contexts=[ctxs[i] for i in rows])
    reexec_floor = np.array([[floors[row][t] for t in task_ids[row]]
                             for row in range(B)])
    frel = np.array([ctxs[i].reliability.frel for i in rows])

    eff, durations, energy = _tricrit_chain_core(W, deadlines, pfmin, pfmax,
                                                 alpha, reexec_floor, frel,
                                                 masks)

    best = np.argmin(energy, axis=1)
    for row, i in enumerate(rows):
        s = int(best[row])
        # The kernel serves both exact chain solvers (blind enumeration and
        # pruned search reach the same optimum); the label follows the
        # dispatched descriptor so batch results match the scalar path.
        label = plan.descriptors[i].name
        if not np.isfinite(energy[row, s]):
            results[i] = SolveResult(
                schedule=None, energy=math.inf, status="infeasible",
                solver=label,
                metadata=_lazy_metadata({"subsets_evaluated": S},
                                        plan.descriptors[i], ctxs[i], plan.auto))
            continue
        speeds = {t: float(eff[row, s, col] / durations[row, s, col])
                  for col, t in enumerate(task_ids[row])}
        reexecuted = frozenset(t for col, t in enumerate(task_ids[row])
                               if masks[s, col])
        results[i] = LazyScheduleResult(
            builder=_TricritChainScheduleBuilder(problems[i], speeds,
                                                 reexecuted),
            energy=float(energy[row, s]), status="optimal",
            solver=label,
            metadata=_lazy_metadata(
                {"reexecuted": sorted(map(str, reexecuted)),
                 "subsets_evaluated": S},
                plan.descriptors[i], ctxs[i], plan.auto))


# ----------------------------------------------------------------------
# columnar kernels: ProblemBatch rows straight to the array programs
# ----------------------------------------------------------------------
@dataclass
class _WireScheduleBuilder:
    """Deferred schedule for a columnar fast row, built from its payload.

    The wire response path reads ``result.wire_view`` and never touches
    ``result.schedule``; only out-of-band consumers (the persistent result
    store, direct library callers) pay for materialising the ``Problem``
    here.  Picklable, so columnar results survive the campaign pool.
    """

    payload: Any
    speeds: dict[str, list[float]]

    def __call__(self) -> Schedule:
        from ..core.problem_io import problem_from_dict
        problem = problem_from_dict(self.payload)
        graph = problem.graph
        decisions = {}
        for t in graph.tasks():
            fs = self.speeds[t]
            w = graph.weight(t)
            if len(fs) == 2:
                decisions[t] = TaskDecision.reexecuted(t, w, fs[0], fs[1])
            else:
                decisions[t] = TaskDecision.single(t, w, fs[0])
        return Schedule(problem.mapping, problem.platform, decisions)


def _columnar_dispatch(batch: ProblemBatch, i: int, solver_name: str,
                       auto: bool) -> dict:
    """The scalar ``metadata["dispatch"]`` record, built from columns only.

    Key order and value types match ``_dispatch_record`` +
    ``SolverContext.describe()`` exactly (both kernel solvers are exact and
    CONTINUOUS; parser-verified rows are chains or forks, and the context's
    structure label probes ``is_chain`` first).
    """
    cols = batch.columns
    return {
        "solver": solver_name,
        "auto": auto,
        "exactness": "exact",
        "kind": "tricrit" if cols["kind"][i] == KIND_TRICRIT else "bicrit",
        "speed_model": "continuous",
        "structure": "chain" if cols["is_chain"][i] else "fork",
        "tasks": int(cols["num_tasks"][i]),
        "positive_tasks": int(cols["num_positive"][i]),
        "processors": int(cols["mapping_processors"][i]),
        "single_processor": bool(cols["single_processor"][i]),
        "one_task_per_processor": bool(cols["one_task_per_processor"][i]),
    }


def _padded_weights(batch: ProblemBatch, rows: np.ndarray, *,
                    skip_first: bool = False
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather ragged row weights into a zero-padded ``(rows, width)`` matrix.

    One fancy-index over the flat weight array -- no per-row Python loop.
    ``skip_first`` drops each row's first task (the fork source).
    """
    offsets = batch.offsets
    counts = offsets[rows + 1] - offsets[rows]
    if skip_first:
        counts = counts - 1
    width = int(counts.max()) if len(counts) else 0
    col = np.arange(width, dtype=np.int64)
    mask = col[None, :] < counts[:, None]
    start = offsets[rows] + (1 if skip_first else 0)
    flat = (start[:, None] + col[None, :])[mask]
    out = np.zeros((len(rows), width))
    out[mask] = batch.weights[flat]
    return out, mask, counts


def _solve_batch_columnar(batch: ProblemBatch, solver: str, *,
                          validate: bool = True,
                          plan: ColumnarBatchPlan | None = None,
                          **options: Any) -> list[SolveResult]:
    """Solve a :class:`ProblemBatch`: fast rows columnar, the rest legacy."""
    if plan is None:
        plan = _plan_batch_columnar(batch, solver, validate=validate,
                                    vectorize=not options)
    results: list[SolveResult | None] = [None] * len(batch)
    if plan.legacy_indices:
        legacy = solve_batch(plan.legacy_problems, solver,
                             contexts=plan.legacy_contexts, validate=validate,
                             plan=plan.legacy_plan, **options)
        for i, result in zip(plan.legacy_indices, legacy):
            results[i] = result
    chain_rows = np.flatnonzero(plan.routes == ROUTE_CHAIN)
    if len(chain_rows):
        _solve_chain_columnar(batch, chain_rows, plan, results)
    fork_rows = np.flatnonzero(plan.routes == ROUTE_FORK)
    if len(fork_rows):
        _solve_fork_columnar(batch, fork_rows, plan, results)
    tri_rows = np.flatnonzero(plan.routes == ROUTE_TRICRIT)
    if len(tri_rows):
        _solve_tricrit_columnar(batch, tri_rows, plan, results)
    return results  # type: ignore[return-value]


def _solve_chain_columnar(batch: ProblemBatch, rows: np.ndarray,
                          plan: ColumnarBatchPlan,
                          results: list[SolveResult | None]) -> None:
    """Chain closed form off the columns; same array program as the object path."""
    cols = batch.columns
    totals = cols["total_weight"][rows]
    deadlines = cols["deadline"][rows]
    fmin = cols["fmin"][rows]
    fmax = cols["fmax"][rows]
    alpha = cols["alpha"][rows]
    raw_speed, infeasible, speed, energy = _chain_core(totals, deadlines,
                                                       fmin, fmax, alpha)

    # Wire-view makespans: the serialized schedule walk is a left-fold sum
    # of task durations in mapping (== payload) order; cumsum reproduces
    # that fold exactly (trailing zero-pad adds are exact).
    W, _, _ = _padded_weights(batch, rows)
    safe_speed = np.where(speed > 0, speed, 1.0)
    durations = np.where(W > 0, W / safe_speed[:, None], 0.0)
    makespans = np.cumsum(durations, axis=1)[:, -1]

    # Bulk scalar extraction: `.tolist()` converts a whole column to native
    # Python floats/bools in one C pass, where per-row `float(arr[row])`
    # would pay the NumPy scalar-boxing tax 10k times over.
    rows_l = rows.tolist()
    infeasible_l = infeasible.tolist()
    totals_l = totals.tolist()
    energy_l = energy.tolist()
    speed_l = speed.tolist()
    fmax_l = fmax.tolist()
    makespans_l = makespans.tolist()
    weights_l = batch.weights.tolist()
    offsets_l = batch.offsets.tolist()
    task_ids = batch.task_ids
    payloads = batch.payloads
    # Identical rows get the *same* dispatch dict (read-only once emitted):
    # a 10k-row sweep over one structure builds one record, not 10k.
    dispatch_memo: dict[tuple[int, int], dict] = {}
    num_positive_l = cols["num_positive"].tolist()
    for row, i in enumerate(rows_l):
        if infeasible_l[row]:
            results[i] = SolveResult(
                schedule=None, energy=math.inf, status="infeasible",
                solver="continuous-closed-form[chain]",
                metadata={
                    "message": (f"chain needs speed {raw_speed[row]:.6g} > "
                                f"fmax={fmax_l[row]:.6g} to meet the deadline"),
                    "dispatch": _columnar_dispatch(batch, i,
                                                   "bicrit-closed-form",
                                                   plan.auto),
                })
            continue
        if totals_l[row] == 0:
            row_energy, row_speed = 0.0, 0.0
        else:
            row_energy, row_speed = energy_l[row], speed_l[row]
        fmax_row = fmax_l[row]
        o0 = offsets_l[i]
        o1 = offsets_l[i + 1]
        speeds = {t: [row_speed] if w > 0 else [fmax_row]
                  for t, w in zip(task_ids[i], weights_l[o0:o1])}
        # Chain-routed rows are bicrit, single-processor, in-order chains:
        # (tasks, positive_tasks) pins down the whole dispatch record.
        memo_key = (o1 - o0, num_positive_l[i])
        dispatch = dispatch_memo.get(memo_key)
        if dispatch is None:
            dispatch = _columnar_dispatch(batch, i, "bicrit-closed-form",
                                          plan.auto)
            dispatch_memo[memo_key] = dispatch
        result = LazyScheduleResult(
            builder=_WireScheduleBuilder(payloads[i], speeds),
            energy=row_energy, status="optimal",
            solver="continuous-closed-form[chain]",
            metadata={"route": "chain", "closed_form_energy": row_energy,
                      "dispatch": dispatch})
        result.wire_view = {"makespan": makespans_l[row],
                            "speeds": speeds, "num_reexecuted": 0,
                            "dispatch": dispatch}
        results[i] = result


def _solve_fork_columnar(batch: ProblemBatch, rows: np.ndarray,
                         plan: ColumnarBatchPlan,
                         results: list[SolveResult | None]) -> None:
    """Fork theorem off the columns; same array program as the object path."""
    cols = batch.columns
    w0 = batch.weights[batch.offsets[rows]]
    W, _, counts = _padded_weights(batch, rows, skip_first=True)
    deadlines = cols["deadline"][rows]
    fmin = cols["fmin"][rows]
    fmax = cols["fmax"][rows]
    alpha = cols["alpha"][rows]
    (source_blocks, child_blocks, child_violation, clamped,
     source_speed, child_speed, energy) = _fork_core(w0, W, deadlines,
                                                     fmin, fmax, alpha)

    # Wire-view makespans: every child finishes at fl(d_source + d_child);
    # padded columns contribute d_source + 0.0, which mirrors the source's
    # own finish time in the scalar max over all finishes.
    safe_src = np.where(source_speed > 0, source_speed, 1.0)
    src_dur = np.where(w0 > 0, w0 / safe_src, 0.0)
    safe_child = np.where(child_speed > 0, child_speed, 1.0)
    child_dur = np.where(W > 0, W / safe_child, 0.0)
    makespans = (src_dur[:, None] + child_dur).max(axis=1)

    for row, i in enumerate(rows):
        i = int(i)
        ids = batch.task_ids[i]
        dispatch = _columnar_dispatch(batch, i, "bicrit-closed-form",
                                      plan.auto)
        if source_blocks[row]:
            results[i] = SolveResult(
                schedule=None, energy=math.inf, status="infeasible",
                solver="continuous-closed-form[fork]",
                metadata={"message": ("the source alone exceeds the deadline "
                                      "at fmax; no solution"),
                          "dispatch": dispatch})
            continue
        if child_blocks[row]:
            col = int(np.argmax(child_violation[row]))
            child = ids[1 + col]
            results[i] = SolveResult(
                schedule=None, energy=math.inf, status="infeasible",
                solver="continuous-closed-form[fork]",
                metadata={"message": (
                    f"child {child!r} needs speed "
                    f"{child_speed[row, col]:.6g} "
                    f"> fmax={fmax[row]:.6g}; no solution"),
                    "dispatch": dispatch})
            continue
        if clamped[row]:
            # fmin-clamped rows leave the algebraic formula exactly like the
            # object path: materialise and run the scalar front-end.
            problem = batch.problem(i)
            ctx = SolverContext.for_problem(problem)
            results[i] = _scalar_solve(problem,
                                       get_solver("bicrit-closed-form"),
                                       ctx, auto=plan.auto, validate=True)
            continue
        row_energy = float(energy[row])
        fmax_row = float(fmax[row])
        n_children = int(counts[row])
        speeds = {ids[0]: ([float(source_speed[row])] if w0[row] > 0
                           else [fmax_row])}
        for col in range(n_children):
            w = W[row, col]
            speeds[ids[1 + col]] = ([float(child_speed[row, col])] if w > 0
                                    else [fmax_row])
        result = LazyScheduleResult(
            builder=_WireScheduleBuilder(batch.payloads[i], speeds),
            energy=row_energy, status="optimal",
            solver="continuous-closed-form[fork]",
            metadata={"route": "fork", "closed_form_energy": row_energy,
                      "dispatch": dispatch})
        result.wire_view = {"makespan": float(makespans[row]),
                            "speeds": speeds, "num_reexecuted": 0,
                            "dispatch": dispatch}
        results[i] = result


def _solve_tricrit_columnar(batch: ProblemBatch, rows: np.ndarray,
                            plan: ColumnarBatchPlan,
                            results: list[SolveResult | None]) -> None:
    """TRI-CRIT chain subsets off the columns, grouped and chunked by size."""
    npos = batch.columns["num_positive"]
    by_size: dict[int, list[int]] = {}
    for i in rows:
        by_size.setdefault(int(npos[i]), []).append(int(i))
    for n, group in by_size.items():
        chunk = max(1, _SUBSET_TENSOR_BUDGET // max(1, (2 ** n) * n))
        for start in range(0, len(group), chunk):
            _tricrit_columnar_chunk(batch, group[start:start + chunk], n,
                                    plan, results)


def _tricrit_columnar_chunk(batch: ProblemBatch, rows: list[int], n: int,
                            plan: ColumnarBatchPlan,
                            results: list[SolveResult | None]) -> None:
    B = len(rows)
    masks = _subset_masks(n)
    S = masks.shape[0]
    rows_a = np.asarray(rows, dtype=np.int64)
    cols = batch.columns

    # Positive weights in payload (== mapping) order.
    W = np.empty((B, n))
    for row, i in enumerate(rows):
        weights = batch.row_weights(i)
        W[row] = weights[weights > 0]

    deadlines = cols["deadline"][rows_a]
    pfmin = cols["fmin"][rows_a]
    pfmax = cols["fmax"][rows_a]
    alpha = cols["alpha"][rows_a]
    frel = cols["rel_frel"][rows_a]

    # Same vectorized reliability bisection as batch_reexecution_floors,
    # fed from the reliability columns instead of context caches.
    floors = _floor_array(W.reshape(-1),
                          np.repeat(cols["rel_fmin"][rows_a], n),
                          np.repeat(cols["rel_fmax"][rows_a], n),
                          np.repeat(cols["rel_lambda0"][rows_a], n),
                          np.repeat(cols["rel_sensitivity"][rows_a], n),
                          np.repeat(frel, n))
    floors = np.maximum(np.repeat(pfmin, n), floors)
    reexec_floor = floors.reshape(B, n)

    eff, durations, energy = _tricrit_chain_core(W, deadlines, pfmin, pfmax,
                                                 alpha, reexec_floor, frel,
                                                 masks)

    # Auto rows dispatch to the chain enumeration (priority order); a named
    # ``tricrit-pruned`` keeps its own label, like the scalar path would.
    label = plan.solver if plan.solver == "tricrit-pruned" \
        else "tricrit-chain-exact"
    best = np.argmin(energy, axis=1)
    for row, i in enumerate(rows):
        s = int(best[row])
        dispatch = _columnar_dispatch(batch, i, label, plan.auto)
        if not np.isfinite(energy[row, s]):
            results[i] = SolveResult(
                schedule=None, energy=math.inf, status="infeasible",
                solver=label,
                metadata={"subsets_evaluated": S, "dispatch": dispatch})
            continue
        f = eff[row, s] / durations[row, s]           # (n,) exec speeds
        per_exec = W[row] / f
        task_time = per_exec * (1.0 + masks[s])       # exact x2 on re-exec
        makespan = float(np.cumsum(task_time)[-1])    # left fold, in order
        fmax_row = float(pfmax[row])
        speeds: dict[str, list[float]] = {}
        reexec_names: list[str] = []
        cursor = 0
        for t, w in zip(batch.task_ids[i], batch.row_weights(i)):
            if w > 0:
                fv = float(f[cursor])
                if masks[s, cursor]:
                    speeds[t] = [fv, fv]
                    reexec_names.append(t)
                else:
                    speeds[t] = [fv]
                cursor += 1
            else:
                speeds[t] = [fmax_row]
        result = LazyScheduleResult(
            builder=_WireScheduleBuilder(batch.payloads[i], speeds),
            energy=float(energy[row, s]), status="optimal",
            solver=label,
            metadata={"reexecuted": sorted(reexec_names),
                      "subsets_evaluated": S, "dispatch": dispatch})
        result.wire_view = {"makespan": makespan, "speeds": speeds,
                            "num_reexecuted": int(masks[s].sum()),
                            "dispatch": dispatch}
        results[i] = result
