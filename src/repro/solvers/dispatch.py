"""``solve(problem)``: admissibility-checked, exact-first solver dispatch.

The dispatcher is the single front door to the whole algorithm family:

* ``solve(problem)`` (or ``solver="auto"``) inspects the instance through
  its memoized :class:`~repro.solvers.context.SolverContext` and picks the
  *best exact-first* admissible solver -- exact before approximation before
  heuristic, and within a class the most specialised entry (closed forms and
  polynomial structure solvers before general numerical programs before
  exponential enumerations, which are themselves capped by the central size
  limits and simply drop out of the admissible set on large instances);
* ``solve(problem, solver="tricrit-exhaustive")`` runs one named solver,
  validating admissibility first so a structure or size violation fails
  with an explanation instead of a deep solver error.

Either way the returned :class:`~repro.core.problems.SolveResult` is exactly
what the underlying entry point produced, plus a ``metadata["dispatch"]``
record of what ran and why.
"""

from __future__ import annotations

from typing import Any

from ..core.problems import BiCritProblem, SolveResult
from .context import SolverContext
from .descriptors import Solver
from .registry import get_solver, solvers_for

__all__ = ["solve", "select_solver", "NoAdmissibleSolverError"]


class NoAdmissibleSolverError(ValueError):
    """No registered solver admits the instance (reasons in the message)."""


def select_solver(problem: BiCritProblem, *,
                  context: SolverContext | None = None) -> Solver:
    """The solver ``solve(problem, "auto")`` would run, without running it.

    Raises :class:`NoAdmissibleSolverError` listing every solver's rejection
    reason when nothing admits the instance.
    """
    ctx = context if context is not None else SolverContext.for_problem(problem)
    rejections = []
    for solver, ok, reason in solvers_for(problem, context=ctx):
        if ok:
            return solver
        rejections.append(f"  {solver.name}: {reason}")
    raise NoAdmissibleSolverError(
        "no registered solver admits this "
        f"{ctx.kind.upper()}/{ctx.speed_kind} instance "
        f"(structure {ctx.structure!r}, {ctx.num_positive_tasks} tasks):\n"
        + "\n".join(rejections))


def solve(problem: BiCritProblem, solver: str = "auto", *,
          context: SolverContext | None = None,
          validate: bool = True, **options: Any) -> SolveResult:
    """Solve a BI-CRIT / TRI-CRIT instance through the solver registry.

    Parameters
    ----------
    solver:
        ``"auto"`` (default) for exact-first dispatch, or a registry name
        from :func:`repro.solvers.solver_names`.
    context:
        Optional precomputed :class:`SolverContext`; by default the
        problem's memoized context is used (and created on first call).
    validate:
        Check admissibility before running a *named* solver (auto dispatch
        only ever selects admissible solvers).  Disable to forward an
        instance to a solver the descriptors would reject, e.g. to study a
        heuristic outside its supported class.
    options:
        Extra keyword arguments for the underlying entry point, merged over
        the descriptor's ``default_options`` (this is how per-call
        ``max_tasks`` / ``method`` / ``backend`` overrides pass through).
        With ``"auto"`` only options every candidate understands should be
        used; prefer naming the solver when passing solver-specific knobs.
    """
    ctx = context if context is not None else SolverContext.for_problem(problem)
    if solver == "auto":
        descriptor = select_solver(problem, context=ctx)
    else:
        descriptor = get_solver(solver)
    result = descriptor(problem, context=ctx, validate=validate and solver != "auto",
                        **options)
    result.metadata.setdefault("dispatch", {
        "solver": descriptor.name,
        "auto": solver == "auto",
        "exactness": descriptor.exactness,
        **ctx.describe(),
    })
    return result
