"""The solver registry: every algorithm of the library as a typed descriptor.

The paper's contribution is a *family* of algorithms whose relative merits
per problem class are exactly what the experiments compare; this registry
makes that family first-class.  Every entry point of
:mod:`repro.continuous` and :mod:`repro.discrete` is registered here with
its capability metadata (problem kind, speed models, structures, exactness,
size limits), so the dispatcher (:mod:`repro.solvers.dispatch`), the
ablation experiment (E13), the CLI (``python -m repro solvers``) and the
README capability table all read from one source of truth.

Entry points are referenced lazily (``"module:callable"`` strings), so this
module imports none of the algorithm packages and can itself be imported by
them (for the shared limits) without cycles.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..core.problems import BiCritProblem
from . import limits
from .context import SolverContext
from .descriptors import EXACTNESS_ORDER, Solver

__all__ = [
    "register_solver",
    "get_solver",
    "iter_solvers",
    "solver_names",
    "solvers_for",
    "admissible_solvers",
    "capability_rows",
]

_REGISTRY: dict[str, Solver] = {}

#: All structures (general solvers).
_ANY = frozenset({"chain", "fork", "series-parallel", "dag"})
_CONTINUOUS = frozenset({"continuous"})
_VDD = frozenset({"vdd"})
#: One-mode-per-task models: DISCRETE proper plus its INCREMENTAL special case.
_MODAL = frozenset({"discrete", "incremental"})


def register_solver(solver: Solver) -> Solver:
    """Add a solver to the registry (names must be unique)."""
    if solver.name in _REGISTRY:
        raise ValueError(f"solver {solver.name!r} is already registered")
    _REGISTRY[solver.name] = solver
    return solver


def get_solver(name: str) -> Solver:
    """Look up a solver descriptor by name."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown solver {name!r}; known: {', '.join(solver_names())}")
    return _REGISTRY[key]


def iter_solvers() -> Iterator[Solver]:
    """All registered solvers, exact first, then by priority (stable)."""
    return iter(sorted(_REGISTRY.values(),
                       key=lambda s: (EXACTNESS_ORDER.index(s.exactness),
                                      s.priority, s.name)))


def solver_names() -> list[str]:
    """Registered solver names, in dispatch-preference order."""
    return [s.name for s in iter_solvers()]


def solvers_for(problem: BiCritProblem, *,
                context: SolverContext | None = None) -> list[tuple[Solver, bool, str | None]]:
    """Admissibility of every registered solver for one instance.

    Returns ``(solver, admissible, reason)`` triples in dispatch-preference
    order; ``reason`` is ``None`` for admissible solvers.
    """
    ctx = context if context is not None else SolverContext.for_problem(problem)
    out = []
    for solver in iter_solvers():
        ok, reason = solver.admissible(problem, ctx)
        out.append((solver, ok, reason))
    return out


def admissible_solvers(problem: BiCritProblem, *,
                       context: SolverContext | None = None) -> list[Solver]:
    """The admissible solvers for an instance, in dispatch-preference order."""
    return [s for s, ok, _ in solvers_for(problem, context=context) if ok]


def capability_rows() -> list[dict]:
    """Capability table rows (one per solver) for the CLI and the README."""
    return [solver.capabilities() for solver in iter_solvers()]


# ----------------------------------------------------------------------
# admissibility predicates that need an OR over mapping shapes
# ----------------------------------------------------------------------
def _closed_form_route(ctx: SolverContext) -> tuple[bool, str | None]:
    """Does any closed-form route of the CONTINUOUS front-end apply?

    Mirrors the routing of
    :func:`repro.continuous.bicrit.solve_bicrit_continuous`: a fully
    serialised mapping (chain formula), a fork with one task per processor
    (fork theorem), or a series-parallel graph whose mapping adds no
    serialisation (equivalent-weight recursion).
    """
    if ctx.is_single_processor:
        return True, None
    if ctx.is_fork and ctx.graph.num_tasks > 1 and ctx.one_task_per_processor:
        return True, None
    if ctx.sp_decomposition is not None and ctx.mapping_adds_no_edges:
        return True, None
    return False, ("no closed-form route: needs a single-processor mapping, a "
                   "fully parallel fork, or a series-parallel graph whose "
                   "mapping adds no edges")


# ----------------------------------------------------------------------
# BI-CRIT CONTINUOUS
# ----------------------------------------------------------------------
register_solver(Solver(
    name="bicrit-closed-form",
    impl="repro.continuous.bicrit:solve_bicrit_continuous",
    summary="Chain/fork/series-parallel closed forms (convex fallback on bound hits)",
    problem="bicrit", speed_models=_CONTINUOUS, structures=_ANY,
    exactness="exact", priority=10,
    extra_check=_closed_form_route,
    constraints="serialised mapping, fully parallel fork, or SP w/o extra edges",
))

register_solver(Solver(
    name="bicrit-convex",
    impl="repro.continuous.convex:solve_bicrit_continuous_dag",
    summary="Numerical convex program on the augmented DAG (global optimum)",
    problem="bicrit", speed_models=_CONTINUOUS, structures=_ANY,
    exactness="exact", priority=20,
))

# ----------------------------------------------------------------------
# BI-CRIT discrete-mode models
# ----------------------------------------------------------------------
register_solver(Solver(
    name="bicrit-vdd-lp",
    impl="repro.discrete.vdd_lp:solve_bicrit_vdd_lp",
    summary="Polynomial VDD-HOPPING linear program (two consecutive modes per task)",
    problem="bicrit", speed_models=_VDD, structures=_ANY,
    exactness="exact", priority=10,
))

register_solver(Solver(
    name="bicrit-discrete-milp",
    impl="repro.discrete.exact:solve_bicrit_discrete_milp",
    summary="Mixed-integer program, one binary per (task, mode)",
    problem="bicrit", speed_models=_MODAL, structures=_ANY,
    exactness="exact", priority=20,
))

register_solver(Solver(
    name="bicrit-discrete-bruteforce",
    impl="repro.discrete.exact:solve_bicrit_discrete_bruteforce",
    summary="Plain enumeration of the m^n mode assignments (tiny instances)",
    problem="bicrit", speed_models=_MODAL, structures=_ANY,
    exactness="exact", priority=30,
    max_tasks=limits.DISCRETE_BRUTEFORCE_MAX_TASKS,
    default_options={"max_assignments": limits.DISCRETE_BRUTEFORCE_MAX_ASSIGNMENTS},
))

register_solver(Solver(
    name="bicrit-incremental-approx",
    impl="repro.discrete.incremental_approx:solve_bicrit_incremental_approx",
    summary="Continuous relaxation rounded up: (1+delta/fmin)^2 (1+1/K)^2 guarantee",
    problem="bicrit", speed_models=_MODAL, structures=_ANY,
    exactness="approx", priority=40,
))

# ----------------------------------------------------------------------
# TRI-CRIT CONTINUOUS
# ----------------------------------------------------------------------
register_solver(Solver(
    name="tricrit-chain-exact",
    impl="repro.continuous.tricrit_chain:solve_tricrit_chain_exact",
    summary="Optimal re-execution subset by enumeration on one processor",
    problem="tricrit", speed_models=_CONTINUOUS, structures=_ANY,
    exactness="exact", priority=10,
    requires_single_processor=True,
    # Dispatch admissibility is capped at the shared enumeration limit, not
    # the function's own 22-task guard: past 14 positive tasks the pruned
    # branch-and-bound certifies the same optimum thousands of times faster,
    # so auto-dispatch must never pick a 2^n enumeration there.  Direct
    # calls (and validate=False) still honour CHAIN_EXACT_MAX_TASKS.
    max_tasks=limits.EXHAUSTIVE_SUBSET_MAX_TASKS,
    default_options={"max_tasks": limits.CHAIN_EXACT_MAX_TASKS},
))

register_solver(Solver(
    name="tricrit-fork-poly",
    impl="repro.continuous.tricrit_fork:solve_tricrit_fork",
    summary="Polynomial breakpoint-interval scan of the fork theorem",
    problem="tricrit", speed_models=_CONTINUOUS, structures=frozenset({"fork"}),
    exactness="exact", priority=12,
    requires_one_task_per_processor=True,
))

register_solver(Solver(
    name="tricrit-fork-bruteforce",
    impl="repro.continuous.tricrit_fork:solve_tricrit_fork_bruteforce",
    summary="Exhaustive re-execution configurations of a fork (reference)",
    problem="tricrit", speed_models=_CONTINUOUS, structures=frozenset({"fork"}),
    exactness="exact", priority=14,
    requires_one_task_per_processor=True,
    max_tasks=limits.FORK_BRUTEFORCE_MAX_TASKS,
    default_options={"max_tasks": limits.FORK_BRUTEFORCE_MAX_TASKS},
))

register_solver(Solver(
    name="tricrit-pruned",
    impl="repro.solvers.pruned:solve_tricrit_pruned",
    summary="Exact branch-and-bound over re-execution subsets (dual bounds + dominance)",
    problem="tricrit", speed_models=_CONTINUOUS, structures=_ANY,
    exactness="exact", priority=16,
    max_tasks=limits.PRUNED_EXACT_MAX_TASKS,
    default_options={"max_tasks": limits.PRUNED_EXACT_MAX_TASKS},
))

register_solver(Solver(
    name="tricrit-pruned-gap",
    impl="repro.solvers.pruned:solve_tricrit_pruned_gap",
    summary="Anytime branch-and-bound with a certified optimality gap (no size limit)",
    problem="tricrit", speed_models=_CONTINUOUS, structures=_ANY,
    exactness="approx", priority=30,
    default_options={"node_budget": limits.PRUNED_GAP_NODE_BUDGET},
))

register_solver(Solver(
    name="tricrit-exhaustive",
    impl="repro.continuous.exhaustive:solve_tricrit_exhaustive",
    summary="Global optimum by re-execution subset enumeration on any mapped DAG",
    problem="tricrit", speed_models=_CONTINUOUS, structures=_ANY,
    exactness="exact", priority=20,
    max_tasks=limits.EXHAUSTIVE_SUBSET_MAX_TASKS,
    default_options={"max_tasks": limits.EXHAUSTIVE_SUBSET_MAX_TASKS},
))

register_solver(Solver(
    name="tricrit-best-of",
    impl="repro.continuous.heuristics:best_of_heuristics",
    summary="Best of the energy-gain and parallel-slack heuristic families",
    problem="tricrit", speed_models=_CONTINUOUS, structures=_ANY,
    exactness="heuristic", priority=40,
))

register_solver(Solver(
    name="tricrit-chain-greedy",
    impl="repro.continuous.tricrit_chain:solve_tricrit_chain_greedy",
    summary="The paper's chain strategy: slow equally, then add re-executions",
    problem="tricrit", speed_models=_CONTINUOUS, structures=_ANY,
    exactness="heuristic", priority=41,
    requires_single_processor=True,
))

register_solver(Solver(
    name="tricrit-heuristic-energy-gain",
    impl="repro.continuous.heuristics:heuristic_energy_gain",
    summary="Chain-family heuristic driven by estimated re-execution energy gain",
    problem="tricrit", speed_models=_CONTINUOUS, structures=_ANY,
    exactness="heuristic", priority=42,
))

register_solver(Solver(
    name="tricrit-heuristic-parallel-slack",
    impl="repro.continuous.heuristics:heuristic_parallel_slack",
    summary="Fork-family heuristic preferring highly parallelisable (slack) tasks",
    problem="tricrit", speed_models=_CONTINUOUS, structures=_ANY,
    exactness="heuristic", priority=44,
))

register_solver(Solver(
    name="tricrit-no-reexec",
    impl="repro.continuous.heuristics:solve_tricrit_no_reexec",
    summary="Reliable baseline without re-execution (every task at >= f_rel)",
    problem="tricrit", speed_models=_CONTINUOUS, structures=_ANY,
    exactness="heuristic", priority=60,
))

# ----------------------------------------------------------------------
# TRI-CRIT VDD-HOPPING
# ----------------------------------------------------------------------
register_solver(Solver(
    name="tricrit-vdd-exact",
    impl="repro.discrete.tricrit_vdd:solve_tricrit_vdd_exact",
    summary="Subset enumeration + reliability-preserving rounding to VDD modes",
    problem="tricrit", speed_models=_VDD, structures=_ANY,
    exactness="exact", priority=20,
    max_tasks=limits.EXHAUSTIVE_SUBSET_MAX_TASKS,
    default_options={"max_tasks": limits.EXHAUSTIVE_SUBSET_MAX_TASKS},
))

register_solver(Solver(
    name="tricrit-vdd-heuristic",
    impl="repro.discrete.tricrit_vdd:solve_tricrit_vdd_heuristic",
    summary="Continuous best-of heuristic rounded to bracketing VDD modes",
    problem="tricrit", speed_models=_VDD, structures=_ANY,
    exactness="heuristic", priority=40,
))
