"""Tests of the dynamic-energy model (Section II.c of the paper)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.energy import (
    EnergyModel,
    continuous_lower_bound_single_chain,
    energy_for_duration,
    reexecution_energy,
    schedule_energy,
    task_energy,
)


class TestEnergyModel:
    def test_default_is_cube_law(self):
        model = EnergyModel()
        assert model.exponent == 3.0
        assert model.power(2.0) == pytest.approx(8.0)

    def test_task_energy_formula(self):
        # E = w * f^2 with the cube law.
        assert task_energy(4.0, 0.5) == pytest.approx(4.0 * 0.25)
        assert task_energy(1.0, 1.0) == pytest.approx(1.0)

    def test_task_energy_vectorised(self):
        model = EnergyModel()
        w = np.array([1.0, 2.0, 3.0])
        f = np.array([1.0, 0.5, 2.0])
        np.testing.assert_allclose(model.task_energy(w, f), w * f ** 2)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            EnergyModel(exponent=1.0)
        with pytest.raises(ValueError):
            EnergyModel(static_power=-1.0)

    def test_task_energy_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            task_energy(1.0, 0.0)

    def test_energy_for_duration_matches_constant_speed(self):
        # Executing w units in d time at constant speed w/d.
        w, d = 3.0, 2.0
        expected = w * (w / d) ** 2
        assert energy_for_duration(w, d) == pytest.approx(expected)

    def test_reexecution_counts_both_executions(self):
        assert reexecution_energy(2.0, 0.5, 0.8) == pytest.approx(
            2.0 * 0.25 + 2.0 * 0.64
        )

    def test_interval_energy(self):
        model = EnergyModel()
        intervals = [(0.5, 2.0), (1.0, 1.0)]
        assert model.interval_energy(intervals) == pytest.approx(0.125 * 2 + 1.0)
        with pytest.raises(ValueError):
            model.interval_energy([(0.5, -1.0)])

    def test_static_energy(self):
        model = EnergyModel(static_power=0.3)
        assert model.static_energy(4, 10.0) == pytest.approx(12.0)

    def test_schedule_energy_helper(self):
        records = [(2.0, [1.0]), (3.0, [0.5, 0.5])]
        assert schedule_energy(records) == pytest.approx(2.0 + 3.0 * 0.25 * 2)

    def test_chain_lower_bound(self):
        # (sum w)^3 / D^2
        assert continuous_lower_bound_single_chain([1.0, 2.0, 3.0], 4.0) == pytest.approx(
            6.0 ** 3 / 16.0
        )
        with pytest.raises(ValueError):
            continuous_lower_bound_single_chain([1.0], 0.0)

    def test_alternative_exponent(self):
        model = EnergyModel(exponent=2.0)
        assert model.task_energy(4.0, 0.5) == pytest.approx(2.0)
        assert model.energy_for_duration(4.0, 2.0) == pytest.approx(8.0)


class TestEnergyProperties:
    @given(st.floats(min_value=0.01, max_value=100.0),
           st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=80, deadline=None)
    def test_energy_increases_with_speed(self, weight, speed):
        assert task_energy(weight, speed * 1.1) > task_energy(weight, speed)

    @given(st.floats(min_value=0.01, max_value=100.0),
           st.floats(min_value=0.01, max_value=10.0),
           st.floats(min_value=1.01, max_value=3.0))
    @settings(max_examples=80, deadline=None)
    def test_energy_decreases_with_longer_duration(self, weight, duration, stretch):
        assert energy_for_duration(weight, duration * stretch) < energy_for_duration(
            weight, duration
        )

    @given(st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=0.1, max_value=1.0),
           st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=80, deadline=None)
    def test_splitting_work_at_two_speeds_never_beats_average(self, weight, f1, f2):
        """Convexity: running half the work at f1 and half at f2 costs at least
        as much energy as the single speed with the same total time."""
        model = EnergyModel()
        half = weight / 2.0
        split_energy = model.task_energy(half, f1) + model.task_energy(half, f2)
        total_time = half / f1 + half / f2
        uniform_energy = model.energy_for_duration(weight, total_time)
        assert split_energy >= uniform_energy - 1e-9 * max(1.0, uniform_energy)

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=6),
           st.floats(min_value=1.0, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_chain_lower_bound_is_below_any_uniform_speed_schedule(self, weights, deadline):
        total = sum(weights)
        bound = continuous_lower_bound_single_chain(weights, deadline)
        # Any speed that meets the deadline costs at least the bound.
        speed = total / deadline
        for factor in (1.0, 1.1, 1.5, 2.0):
            energy = sum(task_energy(w, speed * factor) for w in weights)
            assert energy >= bound - 1e-9 * max(1.0, bound)
