"""In-process smoke tests of the HTTP transport (``python -m repro serve``).

A real :class:`~repro.api.server.ApiServer` is bound to an ephemeral port
and driven over sockets with :mod:`http.client`, so the full stack --
request parsing, routing, engine, JSON encoding, status codes -- is
exercised exactly as an external client sees it.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from pathlib import Path

import pytest

from repro.api import Engine
from repro.api.server import make_server
from repro.core.problem_io import problem_to_dict


@pytest.fixture(scope="module")
def chain_payload():
    from repro.core import BiCritProblem, ContinuousSpeeds
    from repro.dag import generators
    from repro.platform import Mapping, Platform

    graph = generators.chain([2.0, 1.0, 3.0])
    platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
    mapping = Mapping.single_processor(graph)
    problem = BiCritProblem(mapping=mapping, platform=platform,
                            deadline=1.5 * graph.total_weight())
    return problem_to_dict(problem)


@pytest.fixture(scope="module")
def server():
    # Tight limits so the size_limit paths are reachable with tiny payloads;
    # the real defaults are exercised by tests/test_api.py.
    srv = make_server(port=0, engine=Engine(max_tasks=16, max_batch=4))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def _request(server, method, path, body=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if data else {}
        conn.request(method, path, body=data, headers=headers)
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload
    finally:
        conn.close()


class TestRoutes:
    def test_healthz(self, server):
        status, payload = _request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["api_version"] == "v1"
        assert payload["uptime_seconds"] >= 0

    def test_solvers_table(self, server):
        status, payload = _request(server, "GET", "/v1/solvers")
        assert status == 200
        names = [row["solver"] for row in payload["solvers"]]
        assert "bicrit-closed-form" in names
        assert all("exactness" in row for row in payload["solvers"])

    def test_solve_and_cached_repeat(self, server, chain_payload):
        status, first = _request(server, "POST", "/v1/solve",
                                 {"problem": chain_payload})
        assert status == 200
        for field in ("api_version", "energy", "status", "solver", "feasible",
                      "makespan", "speeds", "num_reexecuted", "dispatch",
                      "cached", "elapsed_ms"):
            assert field in first, f"missing response field {field}"
        assert first["api_version"] == "v1"
        assert first["feasible"] is True
        assert not first["cached"]
        status, second = _request(server, "POST", "/v1/solve",
                                  {"problem": chain_payload})
        assert status == 200
        assert second["cached"] is True
        assert second["energy"] == first["energy"]

    def test_solve_batch(self, server, chain_payload):
        status, payload = _request(server, "POST", "/v1/solve-batch",
                                   {"problems": [chain_payload, chain_payload]})
        assert status == 200
        assert payload["count"] == 2
        assert len(payload["results"]) == 2
        energies = {r["energy"] for r in payload["results"]}
        assert len(energies) == 1      # identical instances, identical answers

    def test_simulate(self, server, chain_payload):
        status, payload = _request(server, "POST", "/v1/simulate",
                                   {"problem": chain_payload, "trials": 100,
                                    "seed": 5})
        assert status == 200
        assert payload["trials"] == 100
        assert 0.0 <= payload["success_rate"] <= 1.0
        assert payload["solve"]["feasible"] is True

    def test_campaign(self, server, tmp_path):
        status, payload = _request(
            server, "POST", "/v1/campaign",
            {"scenario": "e1-fork-closed-form", "smoke": True,
             "cache_dir": str(tmp_path / "cache")})
        assert status == 200
        assert payload["scenario"] == "e1-fork-closed-form"
        assert payload["result"]

    def test_metrics_after_traffic(self, server, chain_payload):
        _request(server, "POST", "/v1/solve", {"problem": chain_payload})
        status, payload = _request(server, "GET", "/metrics")
        assert status == 200
        assert payload["requests"]["POST /v1/solve"] >= 1
        assert payload["cache"]["hits"] >= 1
        lat = payload["latency_ms"]["POST /v1/solve"]
        assert lat["count"] >= 1 and lat["p99_ms"] >= lat["p50_ms"] >= 0


class TestErrorPaths:
    def test_malformed_json(self, server):
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("POST", "/v1/solve", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["code"] == "invalid_json"

    def test_empty_body(self, server):
        status, payload = _request(server, "POST", "/v1/solve")
        assert status == 400
        assert payload["error"]["code"] == "invalid_json"

    def test_unknown_route(self, server):
        status, payload = _request(server, "GET", "/v2/solve")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        assert any("/v1/solve" in r for r in payload["error"]["detail"]["routes"])

    def test_wrong_method(self, server):
        status, payload = _request(server, "GET", "/v1/solve")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    def test_unknown_solver(self, server, chain_payload):
        status, payload = _request(server, "POST", "/v1/solve",
                                   {"problem": chain_payload, "solver": "nope"})
        assert status == 400
        assert payload["error"]["code"] == "unknown_solver"

    def test_invalid_problem(self, server):
        status, payload = _request(server, "POST", "/v1/solve",
                                   {"problem": {"kind": "bicrit"}})
        assert status == 400
        assert payload["error"]["code"] == "invalid_problem"

    def test_invalid_request_shape(self, server, chain_payload):
        status, payload = _request(server, "POST", "/v1/solve",
                                   {"problem": chain_payload, "bogus": 1})
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"

    def test_batch_size_limit(self, server, chain_payload):
        status, payload = _request(server, "POST", "/v1/solve-batch",
                                   {"problems": [chain_payload] * 5})
        assert status == 413
        assert payload["error"]["code"] == "size_limit"

    def test_oversize_instance(self, server):
        from repro.core import BiCritProblem, ContinuousSpeeds
        from repro.dag import generators
        from repro.platform import Mapping, Platform

        graph = generators.chain([1.0] * 17)    # engine capped at 16 tasks
        problem = BiCritProblem(
            mapping=Mapping.single_processor(graph),
            platform=Platform(1, ContinuousSpeeds(0.1, 1.0)),
            deadline=2.0 * graph.total_weight())
        status, payload = _request(server, "POST", "/v1/solve",
                                   {"problem": problem_to_dict(problem)})
        assert status == 413
        assert payload["error"]["code"] == "size_limit"
        assert payload["error"]["detail"]["max_tasks"] == 16


class TestConcurrency:
    def test_parallel_requests_share_one_engine(self, server, chain_payload):
        results: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def post():
            out = _request(server, "POST", "/v1/solve",
                           {"problem": chain_payload})
            with lock:
                results.append(out)

        threads = [threading.Thread(target=post) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(results) == 8
        energies = {payload["energy"] for status, payload in results}
        assert all(status == 200 for status, _ in results)
        assert len(energies) == 1


class TestHardening:
    """Request-size and stalled-client protections of the transport."""

    @pytest.fixture
    def hardened(self):
        srv = make_server(port=0, engine=Engine(),
                          max_body_bytes=1024, handler_timeout=0.5)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            yield srv
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)

    def test_oversized_body_is_rejected_with_413(self, hardened):
        big = {"problem": {"pad": "x" * 4096}}
        status, payload = _request(hardened, "POST", "/v1/solve", big)
        assert status == 413
        assert payload["error"]["code"] == "size_limit"
        assert payload["error"]["detail"]["max_body_bytes"] == 1024
        assert payload["error"]["detail"]["content_length"] > 1024

    def test_lying_content_length_is_rejected_before_reading(self, hardened):
        # Only headers go out: a Content-Length far beyond the limit must be
        # bounced without the server waiting for (or buffering) the body.
        import socket

        host, port = hardened.server_address[:2]
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"POST /v1/solve HTTP/1.1\r\n"
                         b"Host: test\r\n"
                         b"Content-Type: application/json\r\n"
                         b"Content-Length: 999999999\r\n\r\n")
            sock.settimeout(5)
            reply = b""
            # Headers and body go out as separate writes; read until the
            # body arrived (the server closes the connection afterwards).
            while b"size_limit" not in reply:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                reply += chunk
        assert b"413" in reply.split(b"\r\n", 1)[0]
        assert b"size_limit" in reply

    def test_under_limit_requests_still_served(self, hardened):
        status, payload = _request(hardened, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_stalled_client_is_disconnected_by_handler_timeout(self, hardened):
        import socket
        import time

        host, port = hardened.server_address[:2]
        with socket.create_connection((host, port), timeout=5) as sock:
            # Half a request line, then silence: the 0.5 s socket timeout
            # must free the handler thread and close the connection.
            sock.sendall(b"POST /v1/solve HTT")
            time.sleep(1.2)
            sock.settimeout(5)
            assert sock.recv(4096) == b""   # server hung up

    def test_timeout_zero_disables_the_knobs(self):
        # CLI maps 0 to None; None must mean "no cap / no timeout".
        srv = make_server(port=0, max_body_bytes=None, handler_timeout=None)
        try:
            assert srv.max_body_bytes is None
            assert srv.handler_timeout is None
        finally:
            srv.server_close()


class TestDrain:
    """Graceful shutdown: in-flight handlers finish inside the grace window."""

    @pytest.fixture
    def running(self):
        srv = make_server(port=0, engine=Engine(max_tasks=16, max_batch=4))
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            yield srv
        finally:
            if not srv.draining:
                srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)

    @staticmethod
    def _slow_health(srv, delay):
        real = srv.service.engine.health

        def slow():
            time.sleep(delay)
            return real()

        srv.service.engine.health = slow

    def test_worker_pid_header_is_stamped(self, server):
        import os

        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            response.read()
            assert response.getheader("X-Repro-Worker") == str(os.getpid())
        finally:
            conn.close()

    def test_drain_waits_for_inflight_request(self, running):
        import socket
        import time as _time

        self._slow_health(running, 0.6)
        host, port = running.server_address[:2]
        sock = socket.create_connection((host, port), timeout=10)
        try:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            deadline = _time.monotonic() + 5
            while running.inflight == 0:       # handler picked the request up
                assert _time.monotonic() < deadline, "request never started"
                _time.sleep(0.01)
            t0 = _time.monotonic()
            assert running.drain(grace=10.0) is True
            # drain() blocked until the slow handler finished, and the
            # client still got a full, well-formed response.
            assert _time.monotonic() - t0 > 0.2
            assert running.inflight == 0
            sock.settimeout(10)
            reply = b""
            while b'"status": "ok"' not in reply and b'"status":"ok"' \
                    not in reply:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                reply += chunk
            head = reply.split(b"\r\n\r\n", 1)[0].lower()
            assert b"200" in reply.split(b"\r\n", 1)[0]
            # Draining responses tell the client not to reuse the socket.
            assert b"connection: close" in head
        finally:
            sock.close()

    def test_drain_gives_up_after_grace(self, running):
        import socket
        import time as _time

        self._slow_health(running, 2.0)
        host, port = running.server_address[:2]
        sock = socket.create_connection((host, port), timeout=10)
        try:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            deadline = _time.monotonic() + 5
            while running.inflight == 0:
                assert _time.monotonic() < deadline, "request never started"
                _time.sleep(0.01)
            assert running.drain(grace=0.1) is False
            # The straggler still completes (daemon handler thread).
            deadline = _time.monotonic() + 10
            while running.inflight > 0 and _time.monotonic() < deadline:
                _time.sleep(0.05)
            assert running.inflight == 0
        finally:
            sock.close()

    def test_drain_is_immediate_when_idle(self, running):
        t0 = time.perf_counter()
        assert running.drain(grace=5.0) is True
        assert time.perf_counter() - t0 < 2.0


class TestFleet:
    """SO_REUSEPORT port sharing and the pass-through proxy fallback."""

    def test_reuse_port_servers_share_one_port(self):
        import socket

        from repro.api.server import reuse_port_supported
        if not reuse_port_supported():
            pytest.skip("SO_REUSEPORT unavailable on this platform")
        first = make_server(port=0, reuse_port=True)
        port = first.server_address[1]
        second = make_server(port=port, reuse_port=True)
        threads = []
        try:
            for srv in (first, second):
                t = threading.Thread(target=srv.serve_forever, daemon=True)
                t.start()
                threads.append((srv, t))
            status, payload = _request(first, "GET", "/healthz")
            assert status == 200 and payload["status"] == "ok"
        finally:
            for srv, t in threads:
                srv.shutdown()
            for srv in (first, second):
                srv.server_close()
            for _, t in threads:
                t.join(timeout=5)

    def test_reuse_port_without_kernel_support_raises(self, monkeypatch):
        import socket

        monkeypatch.delattr(socket, "SO_REUSEPORT", raising=False)
        with pytest.raises(OSError):
            make_server(port=0, reuse_port=True)

    @pytest.fixture
    def two_backends(self):
        servers = [make_server(port=0, engine=Engine(max_tasks=16))
                   for _ in range(2)]
        threads = []
        for srv in servers:
            t = threading.Thread(target=srv.serve_forever, daemon=True)
            t.start()
            threads.append(t)
        try:
            yield servers
        finally:
            for srv in servers:
                srv.shutdown()
                srv.server_close()
            for t in threads:
                t.join(timeout=5)

    @staticmethod
    def _via(address, path="/healthz"):
        host, port = address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_proxy_round_robins_whole_connections(self, two_backends):
        from repro.api.server import _PassThroughProxy

        backends = [srv.server_address[:2] for srv in two_backends]
        proxy = _PassThroughProxy("127.0.0.1", 0, backends)
        proxy.start()
        try:
            for _ in range(4):
                status, payload = self._via(proxy.address)
                assert status == 200 and payload["status"] == "ok"
        finally:
            proxy.stop()
        counts = [srv.service.engine.metrics()["requests_total"]
                  for srv in two_backends]
        assert sum(counts) == 4
        assert all(count == 2 for count in counts)   # strict round-robin

    def test_proxy_skips_dead_backends(self, two_backends):
        import socket

        from repro.api.server import _PassThroughProxy

        # A port that nothing listens on: bind-then-close reserves a number
        # that is very unlikely to be re-bound within the test.
        with socket.create_server(("127.0.0.1", 0)) as placeholder:
            dead = placeholder.getsockname()[:2]
        live = two_backends[0].server_address[:2]
        proxy = _PassThroughProxy("127.0.0.1", 0, [dead, live])
        proxy.start()
        try:
            for _ in range(3):
                status, payload = self._via(proxy.address)
                assert status == 200 and payload["status"] == "ok"
        finally:
            proxy.stop()


class TestFleetProcess:
    """End-to-end: ``python -m repro serve --workers 2`` as a subprocess."""

    def test_two_workers_share_port_and_store_then_drain(self, tmp_path):
        import os
        import re
        import signal
        import subprocess
        import sys

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH", "")) if p)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
             "--port", "0", "--workers", "2", "--max-tasks", "16",
             "--store-dir", str(tmp_path / "store"), "--drain-grace", "5"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        banner = re.compile(r"fleet listening on http://([\w.\-]+):(\d+)")
        try:
            deadline = time.monotonic() + 60
            match = None
            lines = []
            while match is None:
                assert time.monotonic() < deadline, "".join(lines)
                line = proc.stdout.readline()
                assert line, "fleet exited early:\n" + "".join(lines)
                lines.append(line)
                match = banner.search(line)
            host, port = match.group(1), int(match.group(2))

            def healthz():
                conn = http.client.HTTPConnection(host, port, timeout=10)
                try:
                    conn.request("GET", "/healthz")
                    response = conn.getresponse()
                    payload = json.loads(response.read())
                    return response.status, payload, \
                        response.getheader("X-Repro-Worker")
                finally:
                    conn.close()

            pids = set()
            deadline = time.monotonic() + 30
            while len(pids) < 2 and time.monotonic() < deadline:
                status, payload, worker = healthz()
                assert status == 200 and payload["status"] == "ok"
                assert worker == str(payload["pid"])
                pids.add(worker)
            # Both workers answer on the one advertised port.
            assert len(pids) == 2, f"only saw workers {pids}"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
