"""Tests of the continuous -> VDD-HOPPING rounding adapter."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reliability import ReliabilityModel
from repro.core.schedule import Execution, Schedule, TaskDecision
from repro.core.speeds import ContinuousSpeeds, VddHoppingSpeeds
from repro.dag import generators
from repro.discrete.rounding import round_execution_to_vdd, round_schedule_to_vdd
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform

MODES = VddHoppingSpeeds([0.2, 0.4, 0.6, 0.8, 1.0])


class TestRoundExecution:
    def test_preserves_work_and_time(self):
        execution = round_execution_to_vdd(3.0, 0.7, MODES)
        assert execution.work == pytest.approx(3.0)
        assert execution.duration == pytest.approx(3.0 / 0.7)

    def test_uses_bracketing_modes(self):
        execution = round_execution_to_vdd(3.0, 0.7, MODES)
        assert set(execution.speeds) <= {0.6, 0.8}

    def test_exact_mode_gives_single_interval(self):
        execution = round_execution_to_vdd(3.0, 0.6, MODES)
        assert execution.is_constant_speed
        assert execution.speeds[0] == pytest.approx(0.6)

    def test_speed_outside_range_clamped(self):
        execution = round_execution_to_vdd(3.0, 5.0, MODES)
        assert execution.speeds == (1.0,)
        execution = round_execution_to_vdd(3.0, 0.01, MODES)
        assert execution.speeds == (0.2,)

    def test_zero_weight(self):
        execution = round_execution_to_vdd(0.0, 0.5, MODES)
        assert execution.work == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            round_execution_to_vdd(-1.0, 0.5, MODES)

    def test_reliability_matching_shifts_towards_fast_mode(self):
        model = ReliabilityModel(fmin=0.2, fmax=1.0, lambda0=1e-2, sensitivity=4.0)
        weight, speed = 3.0, 0.7
        continuous_failure = model.failure_probability(weight, speed)
        plain = round_execution_to_vdd(weight, speed, MODES)
        matched = round_execution_to_vdd(weight, speed, MODES,
                                         reliability_model=model,
                                         failure_budget=continuous_failure)
        assert matched.failure_probability(model) <= continuous_failure + 1e-12
        # Matching the reliability can only shorten the execution.
        assert matched.duration <= plain.duration + 1e-12
        assert matched.work == pytest.approx(weight)

    @given(st.floats(min_value=0.21, max_value=0.99),
           st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_rounding_property(self, speed, weight):
        model = ReliabilityModel(fmin=0.2, fmax=1.0, lambda0=1e-3, sensitivity=3.0)
        budget = model.failure_probability(weight, speed)
        execution = round_execution_to_vdd(weight, speed, MODES,
                                           reliability_model=model,
                                           failure_budget=budget)
        assert execution.work == pytest.approx(weight, rel=1e-6)
        assert execution.duration <= weight / speed + 1e-9
        assert execution.failure_probability(model) <= budget + 1e-10


class TestRoundSchedule:
    def _continuous_schedule(self):
        graph = generators.chain([1.0, 2.0, 3.0])
        platform = Platform(1, ContinuousSpeeds(0.2, 1.0))
        mapping = Mapping.single_processor(graph)
        speeds = {"T0": 0.55, "T1": 0.7, "T2": 0.9}
        return Schedule.from_speeds(mapping, platform, speeds)

    def test_rounded_schedule_lives_on_vdd_platform(self):
        schedule = self._continuous_schedule()
        vdd_platform = Platform(1, MODES)
        rounded = round_schedule_to_vdd(schedule, vdd_platform)
        assert rounded.platform is vdd_platform
        assert not rounded.violations()

    def test_makespan_preserved(self):
        schedule = self._continuous_schedule()
        rounded = round_schedule_to_vdd(schedule, Platform(1, MODES))
        assert rounded.makespan() == pytest.approx(schedule.makespan(), rel=1e-9)

    def test_energy_increases_only_modestly(self):
        schedule = self._continuous_schedule()
        rounded = round_schedule_to_vdd(schedule, Platform(1, MODES))
        assert rounded.energy() >= schedule.energy() - 1e-9
        # With 5 evenly spaced modes the loss is well below the worst case
        # (next-mode-up rounding); mixing keeps it tight.
        assert rounded.energy() <= 1.25 * schedule.energy()

    def test_reexecutions_preserved(self):
        graph = generators.chain([2.0])
        platform = Platform(1, ContinuousSpeeds(0.2, 1.0))
        mapping = Mapping.single_processor(graph)
        decision = TaskDecision.reexecuted("T0", 2.0, 0.5, 0.5)
        schedule = Schedule(mapping, platform, {"T0": decision})
        rounded = round_schedule_to_vdd(schedule, Platform(1, MODES))
        assert rounded.decisions["T0"].is_reexecuted
        assert rounded.num_reexecuted() == 1

    def test_reliability_matching_mode(self):
        model = ReliabilityModel(fmin=0.2, fmax=1.0, lambda0=1e-2, sensitivity=4.0)
        schedule = self._continuous_schedule()
        vdd_platform = Platform(1, MODES, reliability_model=model)
        rounded = round_schedule_to_vdd(schedule, vdd_platform,
                                        reliability_model=model,
                                        match_reliability=True)
        for t in schedule.graph.tasks():
            original = schedule.task_reliability(t, model)
            assert rounded.task_reliability(t, model) >= original - 1e-10

    def test_requires_vdd_platform(self):
        schedule = self._continuous_schedule()
        with pytest.raises(TypeError):
            round_schedule_to_vdd(schedule, Platform(1, ContinuousSpeeds(0.2, 1.0)))
