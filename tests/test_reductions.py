"""Tests of the executable NP-hardness reductions (paper Sections III and IV)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.complexity.reductions import (
    partition_has_solution,
    partition_to_discrete_bicrit,
    subset_sum_to_tricrit_chain,
    verify_partition_reduction,
)
from repro.continuous.tricrit_chain import (
    solve_tricrit_chain_exact,
    solve_tricrit_chain_greedy,
)
from repro.core.speeds import DiscreteSpeeds


class TestPartitionOracle:
    def test_known_instances(self):
        assert partition_has_solution([1, 1])
        assert partition_has_solution([3, 1, 1, 2, 2, 1])
        assert not partition_has_solution([1, 2])
        assert not partition_has_solution([8, 6, 5, 4])
        assert not partition_has_solution([1, 1, 1])  # odd total


class TestPartitionReduction:
    def test_construction(self):
        reduction = partition_to_discrete_bicrit([3, 1, 2, 2])
        total, half = 8, 4
        assert reduction.deadline == pytest.approx(total - half / 2)
        assert reduction.energy_budget == pytest.approx(total + 3 * half)
        assert reduction.problem.graph.num_tasks == 4
        speed_model = reduction.problem.platform.speed_model
        assert isinstance(speed_model, DiscreteSpeeds)
        assert speed_model.speeds == (1.0, 2.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            partition_to_discrete_bicrit([])
        with pytest.raises(ValueError):
            partition_to_discrete_bicrit([1, -2])

    @pytest.mark.parametrize("integers,expected", [
        ([1, 1], True),
        ([3, 1, 1, 2, 2, 1], True),
        ([5, 5, 4, 3, 2, 1], True),
        ([1, 2], False),
        ([8, 6, 5, 4], False),
        ([9, 7, 5, 3, 1], False),
        ([2, 2, 2, 2], True),
    ])
    def test_reduction_answers_partition(self, integers, expected):
        outcome = verify_partition_reduction(integers, solver="bruteforce")
        assert outcome["partition_answer"] is expected
        assert outcome["scheduling_answer"] is expected
        assert outcome["agree"]

    def test_reduction_with_milp_solver(self):
        outcome = verify_partition_reduction([3, 1, 1, 2, 2, 1], solver="milp")
        assert outcome["agree"] and outcome["partition_answer"]
        with pytest.raises(ValueError):
            verify_partition_reduction([1, 1], solver="bogus")

    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=2, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_reduction_agreement_property(self, integers):
        outcome = verify_partition_reduction(integers, solver="bruteforce")
        assert outcome["agree"]


class TestSubsetSumTriCritInstances:
    def test_construction(self):
        problem = subset_sum_to_tricrit_chain([2, 3, 5], target=5)
        assert problem.graph.num_tasks == 3
        assert problem.graph.is_chain()
        assert problem.deadline == pytest.approx((10 + 5) / 1.0)
        assert problem.reliability().frel == pytest.approx(1.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            subset_sum_to_tricrit_chain([], target=1)
        with pytest.raises(ValueError):
            subset_sum_to_tricrit_chain([1, 2], target=0)
        with pytest.raises(ValueError):
            subset_sum_to_tricrit_chain([1, 2], target=10)

    def test_instances_are_solvable_and_use_reexecution(self):
        problem = subset_sum_to_tricrit_chain([2, 3, 4], target=4)
        exact = solve_tricrit_chain_exact(problem)
        assert exact.feasible
        # The slack of `target` time units makes at least one re-execution
        # energy-beneficial.
        assert len(exact.metadata["reexecuted"]) >= 1

    def test_greedy_runs_on_adversarial_instances(self):
        problem = subset_sum_to_tricrit_chain([2, 3, 4, 5], target=6)
        exact = solve_tricrit_chain_exact(problem)
        greedy = solve_tricrit_chain_greedy(problem)
        assert greedy.feasible
        assert greedy.energy >= exact.energy - 1e-9
