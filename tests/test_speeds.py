"""Unit and property tests for the speed (DVFS) models."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.speeds import (
    INTEL_XSCALE_SPEEDS,
    ContinuousSpeeds,
    DiscreteSpeeds,
    IncrementalSpeeds,
    VddHoppingSpeeds,
)


class TestContinuousSpeeds:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            ContinuousSpeeds(0.0, 1.0)
        with pytest.raises(ValueError):
            ContinuousSpeeds(2.0, 1.0)
        with pytest.raises(ValueError):
            ContinuousSpeeds(0.5, float("inf"))

    def test_admissibility(self):
        model = ContinuousSpeeds(0.2, 1.0)
        assert model.is_admissible(0.2)
        assert model.is_admissible(0.7351)
        assert model.is_admissible(1.0)
        assert not model.is_admissible(0.1)
        assert not model.is_admissible(1.2)

    def test_round_up_and_down_are_identity_inside_range(self):
        model = ContinuousSpeeds(0.2, 1.0)
        assert model.round_up(0.5) == pytest.approx(0.5)
        assert model.round_down(0.5) == pytest.approx(0.5)

    def test_round_up_clamps_to_fmin(self):
        model = ContinuousSpeeds(0.2, 1.0)
        assert model.round_up(0.05) == pytest.approx(0.2)

    def test_round_up_rejects_above_fmax(self):
        model = ContinuousSpeeds(0.2, 1.0)
        with pytest.raises(ValueError):
            model.round_up(1.5)

    def test_round_down_rejects_below_fmin(self):
        model = ContinuousSpeeds(0.2, 1.0)
        with pytest.raises(ValueError):
            model.round_down(0.01)

    def test_allows_intra_task_switching(self):
        assert ContinuousSpeeds(0.2, 1.0).allows_intra_task_switching
        assert not ContinuousSpeeds(0.2, 1.0).is_discrete

    def test_bracketing(self):
        model = ContinuousSpeeds(0.2, 1.0)
        lo, hi = model.bracketing_speeds(0.6)
        assert lo == pytest.approx(0.6)
        assert hi == pytest.approx(0.6)


class TestDiscreteSpeeds:
    def test_sorted_and_deduplicated(self):
        model = DiscreteSpeeds([1.0, 0.4, 0.4, 0.6])
        assert model.speeds == (0.4, 0.6, 1.0)
        assert model.num_modes == 3
        assert model.fmin == 0.4
        assert model.fmax == 1.0

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            DiscreteSpeeds([])
        with pytest.raises(ValueError):
            DiscreteSpeeds([0.5, -0.2])

    def test_admissibility_only_at_modes(self):
        model = DiscreteSpeeds(INTEL_XSCALE_SPEEDS)
        assert model.is_admissible(0.6)
        assert not model.is_admissible(0.5)

    def test_round_up(self):
        model = DiscreteSpeeds([0.2, 0.5, 1.0])
        assert model.round_up(0.3) == pytest.approx(0.5)
        assert model.round_up(0.5) == pytest.approx(0.5)
        assert model.round_up(0.01) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            model.round_up(1.01)

    def test_round_down(self):
        model = DiscreteSpeeds([0.2, 0.5, 1.0])
        assert model.round_down(0.3) == pytest.approx(0.2)
        assert model.round_down(1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            model.round_down(0.1)

    def test_bracketing_speeds(self):
        model = DiscreteSpeeds([0.2, 0.5, 1.0])
        assert model.bracketing_speeds(0.3) == (pytest.approx(0.2), pytest.approx(0.5))
        assert model.bracketing_speeds(0.5) == (pytest.approx(0.5), pytest.approx(0.5))
        # Values outside the range are clamped first.
        assert model.bracketing_speeds(5.0) == (pytest.approx(1.0), pytest.approx(1.0))

    def test_no_intra_task_switching(self):
        assert not DiscreteSpeeds([0.2, 1.0]).allows_intra_task_switching

    @given(st.lists(st.floats(min_value=0.05, max_value=5.0), min_size=1, max_size=8),
           st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_round_up_property(self, speeds, query):
        model = DiscreteSpeeds(speeds)
        query = min(query, model.fmax)
        rounded = model.round_up(query)
        assert rounded >= query - 1e-9
        assert model.is_admissible(rounded)


class TestVddHoppingSpeeds:
    def test_allows_switching(self):
        assert VddHoppingSpeeds([0.2, 1.0]).allows_intra_task_switching

    def test_consecutive_pairs(self):
        model = VddHoppingSpeeds([0.2, 0.5, 1.0])
        assert model.consecutive_pairs() == [(0.2, 0.5), (0.5, 1.0)]

    def test_hop_split_preserves_work_and_time(self):
        model = VddHoppingSpeeds([0.2, 0.5, 1.0])
        work = 3.0
        speed = 0.7
        parts = model.hop_split(speed, work)
        assert sum(f * t for f, t in parts) == pytest.approx(work)
        assert sum(t for _, t in parts) == pytest.approx(work / speed)
        used = {f for f, _ in parts}
        assert used <= {0.5, 1.0}

    def test_hop_split_exact_mode_uses_single_interval(self):
        model = VddHoppingSpeeds([0.2, 0.5, 1.0])
        parts = model.hop_split(0.5, 2.0)
        assert len(parts) == 1
        assert parts[0][0] == pytest.approx(0.5)

    def test_hop_split_zero_work(self):
        model = VddHoppingSpeeds([0.2, 0.5, 1.0])
        assert model.hop_split(0.5, 0.0) == []

    def test_hop_split_negative_work_rejected(self):
        model = VddHoppingSpeeds([0.2, 0.5, 1.0])
        with pytest.raises(ValueError):
            model.hop_split(0.5, -1.0)

    @given(st.floats(min_value=0.21, max_value=0.99),
           st.floats(min_value=0.1, max_value=20.0))
    @settings(max_examples=80, deadline=None)
    def test_hop_split_property(self, speed, work):
        model = VddHoppingSpeeds([0.2, 0.4, 0.6, 0.8, 1.0])
        parts = model.hop_split(speed, work)
        assert sum(f * t for f, t in parts) == pytest.approx(work, rel=1e-9)
        assert sum(t for _, t in parts) == pytest.approx(work / speed, rel=1e-9)
        assert all(t >= 0 for _, t in parts)
        # The mixture uses at most the two consecutive bracketing modes.
        assert len(parts) <= 2


class TestIncrementalSpeeds:
    def test_modes_are_regular(self):
        model = IncrementalSpeeds(0.2, 1.0, 0.2)
        assert model.speeds == pytest.approx((0.2, 0.4, 0.6, 0.8, 1.0))
        assert model.delta == pytest.approx(0.2)

    def test_range_not_multiple_of_delta(self):
        model = IncrementalSpeeds(0.2, 1.0, 0.3)
        assert model.speeds == pytest.approx((0.2, 0.5, 0.8))
        assert model.physical_fmax == pytest.approx(1.0)
        assert model.fmax == pytest.approx(0.8)

    def test_mode_index(self):
        model = IncrementalSpeeds(0.2, 1.0, 0.2)
        assert model.mode_index(0.6) == 2
        with pytest.raises(ValueError):
            model.mode_index(0.55)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            IncrementalSpeeds(0.2, 1.0, 0.0)

    @given(st.floats(min_value=0.01, max_value=0.5),
           st.floats(min_value=0.2, max_value=0.99))
    @settings(max_examples=60, deadline=None)
    def test_round_up_within_delta(self, delta, fraction):
        model = IncrementalSpeeds(0.1, 1.0, delta)
        query = 0.1 + fraction * (model.fmax - 0.1)
        rounded = model.round_up(query)
        assert query - 1e-9 <= rounded <= query + delta + 1e-9
