"""Tests of the synthetic task-graph generators."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import generators
from repro.dag.analysis import depth_layers


class TestElementaryStructures:
    def test_chain(self):
        g = generators.chain([1.0, 2.0, 3.0])
        assert g.is_chain()
        assert g.num_tasks == 3
        assert g.total_weight() == pytest.approx(6.0)
        assert g.chain_order() == ["T0", "T1", "T2"]

    def test_chain_rejects_empty(self):
        with pytest.raises(ValueError):
            generators.chain([])

    def test_fork(self):
        g = generators.fork(2.0, [1.0, 1.0, 1.0])
        ok, source = g.is_fork()
        assert ok and source == "T0"
        assert g.num_tasks == 4
        assert g.num_edges == 3

    def test_join(self):
        g = generators.join([1.0, 1.0], 2.0)
        ok, sink = g.is_join()
        assert ok and sink == "T2"

    def test_fork_join(self):
        g = generators.fork_join(1.0, [2.0, 3.0], 1.0)
        assert g.num_tasks == 4
        assert g.sources() == ["T0"]
        assert g.sinks() == ["T3"]
        assert g.num_edges == 4

    def test_out_tree(self):
        g = generators.out_tree(3, 2)
        assert g.num_tasks == 7
        assert len(g.sources()) == 1
        assert len(g.sinks()) == 4
        # Every non-root node has exactly one parent.
        for t in g.tasks():
            assert len(g.predecessors(t)) <= 1

    def test_out_tree_with_explicit_weights(self):
        g = generators.out_tree(2, 2, [1.0, 2.0, 3.0])
        assert g.weight("T1") == 2.0
        with pytest.raises(ValueError):
            generators.out_tree(2, 2, [1.0])

    def test_in_tree(self):
        g = generators.in_tree(3, 2)
        assert len(g.sinks()) == 1
        assert len(g.sources()) == 4

    def test_invalid_tree_parameters(self):
        with pytest.raises(ValueError):
            generators.out_tree(0, 2)


class TestRandomGenerators:
    def test_random_weights_range_and_reproducibility(self):
        w1 = generators.random_weights(10, seed=3, low=2.0, high=4.0)
        w2 = generators.random_weights(10, seed=3, low=2.0, high=4.0)
        assert (w1 == w2).all()
        assert (w1 >= 2.0).all() and (w1 <= 4.0).all()
        with pytest.raises(ValueError):
            generators.random_weights(5, low=0.0, high=1.0)

    def test_random_chain_and_fork(self):
        assert generators.random_chain(5, seed=1).is_chain()
        ok, _ = generators.random_fork(4, seed=1).is_fork()
        assert ok

    def test_random_series_parallel_is_series_parallel(self):
        from repro.dag.series_parallel import is_series_parallel

        for seed in range(5):
            g = generators.random_series_parallel(7, seed=seed)
            assert g.num_tasks == 7
            assert is_series_parallel(g)

    def test_random_layered_dag_structure(self):
        g = generators.random_layered_dag(4, 3, seed=2)
        assert g.num_tasks == 12
        layers = depth_layers(g)
        assert len(layers) == 4
        # With ensure_connected every non-top layer task has a predecessor.
        for t in g.tasks():
            if not t.startswith("L0"):
                assert g.predecessors(t)

    def test_random_layered_dag_validation(self):
        with pytest.raises(ValueError):
            generators.random_layered_dag(0, 3)
        with pytest.raises(ValueError):
            generators.random_layered_dag(2, 2, edge_probability=1.5)

    def test_random_dag_erdos_is_acyclic_and_reproducible(self):
        g1 = generators.random_dag_erdos(10, 0.3, seed=5)
        g2 = generators.random_dag_erdos(10, 0.3, seed=5)
        assert g1 == g2
        assert nx.is_directed_acyclic_graph(g1.graph)

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_random_series_parallel_property(self, n_leaves, seed):
        g = generators.random_series_parallel(n_leaves, seed=seed)
        assert g.num_tasks == n_leaves
        assert nx.is_directed_acyclic_graph(g.graph)


class TestApplicationDags:
    def test_fft_butterfly(self):
        g = generators.fft_butterfly(3)
        # (stages + 1) * 2^stages tasks.
        assert g.num_tasks == 4 * 8
        assert nx.is_directed_acyclic_graph(g.graph)
        # Each non-input task has exactly 2 predecessors.
        for t in g.tasks():
            if not t.startswith("fft_0"):
                assert len(g.predecessors(t)) == 2

    def test_stencil(self):
        g = generators.stencil_1d(4, 2)
        assert g.num_tasks == 4 * 3
        # Interior cells have 3 predecessors, border cells 2.
        assert len(g.predecessors("st_1_1")) == 3
        assert len(g.predecessors("st_1_0")) == 2

    def test_phase_fork_join(self):
        g = generators.phase_fork_join(3, 4, seed=1)
        assert g.num_tasks == 3 * (4 + 2)
        assert nx.is_directed_acyclic_graph(g.graph)
        assert len(g.sources()) == 1
        assert len(g.sinks()) == 1

    def test_generator_registry(self):
        assert set(generators.GENERATOR_REGISTRY) >= {"chain", "fork", "layered"}
        g = generators.GENERATOR_REGISTRY["chain"](4, seed=0)
        assert g.is_chain()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generators.fft_butterfly(0)
        with pytest.raises(ValueError):
            generators.stencil_1d(0, 1)
        with pytest.raises(ValueError):
            generators.phase_fork_join(0, 1)
