"""Tests of the optimisation substrate: bisection, allocation, projected gradient."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize.allocation import (
    allocate_durations,
    allocate_durations_with_bounds,
    equal_speed_durations,
)
from repro.optimize.bisection import (
    bisect_root,
    expand_bracket,
    solve_monotone_increasing,
)
from repro.optimize.projected_gradient import (
    minimize_projected_gradient,
    project_box_budget,
)


class TestBisection:
    def test_root_of_polynomial(self):
        root = bisect_root(lambda x: x ** 3 - 2.0, 0.0, 2.0)
        assert root == pytest.approx(2.0 ** (1.0 / 3.0), rel=1e-9)

    def test_endpoints_as_roots(self):
        assert bisect_root(lambda x: x, 0.0, 1.0) == 0.0
        assert bisect_root(lambda x: x - 1.0, 0.0, 1.0) == 1.0

    def test_invalid_bracket(self):
        with pytest.raises(ValueError):
            bisect_root(lambda x: x + 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            bisect_root(lambda x: x, 1.0, 0.0)

    def test_expand_bracket(self):
        lo, hi = expand_bracket(lambda x: x - 10.0, 1.0)
        assert lo == 1.0 and hi >= 10.0

    def test_solve_monotone_increasing(self):
        assert solve_monotone_increasing(lambda x: x ** 2, 4.0, 0.0, 10.0) == pytest.approx(2.0)

    def test_solve_monotone_saturates_at_bounds(self):
        assert solve_monotone_increasing(lambda x: x, -5.0, 0.0, 1.0) == 0.0
        assert solve_monotone_increasing(lambda x: x, 5.0, 0.0, 1.0) == 1.0


class TestAllocation:
    def test_unbounded_gives_equal_speed(self):
        weights = [1.0, 2.0, 3.0]
        result = allocate_durations(weights, 12.0)
        np.testing.assert_allclose(result.durations, [2.0, 4.0, 6.0])
        np.testing.assert_allclose(result.speeds, [0.5, 0.5, 0.5])
        # Energy = sum w * f^2 = 6 * 0.25.
        assert result.energy == pytest.approx(1.5)

    def test_equal_speed_helper(self):
        np.testing.assert_allclose(equal_speed_durations([1.0, 3.0], 8.0), [2.0, 6.0])
        np.testing.assert_allclose(equal_speed_durations([0.0, 0.0], 8.0), [0.0, 0.0])

    def test_fmax_saturation(self):
        # Deadline so tight that the required uniform speed exceeds fmax for
        # no task individually but the bound still binds overall.
        result = allocate_durations([4.0, 4.0], 8.0, fmax=1.0)
        np.testing.assert_allclose(result.durations, [4.0, 4.0])
        assert result.saturated_lower.all()

    def test_fmin_saturation_when_deadline_loose(self):
        result = allocate_durations([1.0, 1.0], 100.0, fmin=0.5, fmax=1.0)
        np.testing.assert_allclose(result.speeds, [0.5, 0.5])
        assert result.total_time < 100.0
        assert result.saturated_upper.all()

    def test_infeasible_deadline_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            allocate_durations([10.0, 10.0], 5.0, fmax=1.0)

    def test_zero_weights(self):
        result = allocate_durations([0.0, 2.0], 4.0)
        assert result.durations[0] == 0.0
        assert result.durations[1] == pytest.approx(4.0)

    def test_all_zero_weights(self):
        result = allocate_durations([0.0, 0.0], 4.0)
        assert result.energy == 0.0
        assert result.total_time == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_durations([1.0], 0.0)
        with pytest.raises(ValueError):
            allocate_durations([-1.0], 2.0)
        with pytest.raises(ValueError):
            allocate_durations([1.0], 2.0, exponent=1.0)
        with pytest.raises(ValueError):
            allocate_durations([1.0], 2.0, fmin=2.0, fmax=1.0)

    def test_per_task_bounds(self):
        weights = np.array([2.0, 2.0])
        lower = np.array([0.5, 2.0])   # second task forced to run fast at most 1.0
        upper = np.array([4.0, 2.0])   # and exactly duration 2
        result = allocate_durations_with_bounds(weights, 6.0, lower, upper)
        assert result.durations[1] == pytest.approx(2.0)
        assert 0.5 <= result.durations[0] <= 4.0

    def test_partial_clamping_with_heterogeneous_bounds(self):
        # Task 0 may not run faster than 1.0 (duration >= 4) while task 1 may
        # run up to speed 2.0; the optimum pins task 0 at its bound and gives
        # the remaining time to task 1.
        weights = np.array([4.0, 4.0])
        lower = np.array([4.0, 2.0])
        upper = np.array([40.0, 40.0])
        result = allocate_durations_with_bounds(weights, 7.0, lower, upper)
        assert result.durations[0] == pytest.approx(4.0)
        assert result.durations[1] == pytest.approx(3.0)
        assert result.saturated_lower[0]
        assert not result.saturated_lower[1]

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=6),
           st.floats(min_value=1.2, max_value=4.0))
    @settings(max_examples=50, deadline=None)
    def test_allocation_optimality_property(self, weights, slack):
        """The allocation never uses more than the deadline, meets the bounds,
        and has energy no larger than the uniform-speed feasible schedule."""
        weights = np.asarray(weights)
        deadline = slack * float(np.sum(weights))  # uniform speed 1/slack < 1 = fmax
        result = allocate_durations(weights, deadline, fmin=0.05, fmax=1.0)
        assert result.total_time <= deadline * (1 + 1e-9)
        speeds = result.speeds
        positive = weights > 0
        assert np.all(speeds[positive] <= 1.0 + 1e-9)
        assert np.all(speeds[positive] >= 0.05 - 1e-9)
        uniform_speed = max(float(np.sum(weights)) / deadline, 0.05)
        uniform_energy = float(np.sum(weights * uniform_speed ** 2))
        assert result.energy <= uniform_energy + 1e-6 * max(1.0, uniform_energy)


class TestProjectedGradient:
    def test_box_projection(self):
        x = np.array([2.0, -1.0, 0.5])
        lower, upper = np.zeros(3), np.ones(3)
        np.testing.assert_allclose(project_box_budget(x, lower, upper), [1.0, 0.0, 0.5])

    def test_budget_projection(self):
        x = np.array([1.0, 1.0, 1.0])
        lower, upper = np.zeros(3), np.ones(3)
        projected = project_box_budget(x, lower, upper, budget=1.5)
        assert np.sum(projected) == pytest.approx(1.5, abs=1e-6)
        assert np.all(projected >= -1e-12)

    def test_budget_below_lower_bounds_rejected(self):
        with pytest.raises(ValueError):
            project_box_budget(np.ones(2), np.ones(2), 2 * np.ones(2), budget=1.0)

    def test_quadratic_minimisation(self):
        target = np.array([0.3, 0.7, -0.2])
        lower = np.zeros(3)
        upper = np.ones(3)
        result = minimize_projected_gradient(
            lambda x: float(np.sum((x - target) ** 2)),
            lambda x: 2.0 * (x - target),
            np.full(3, 0.5), lower, upper,
        )
        expected = np.clip(target, 0.0, 1.0)
        np.testing.assert_allclose(result.x, expected, atol=1e-5)
        assert result.converged

    def test_energy_like_objective_with_budget(self):
        # min sum w^3/d^2 s.t. sum d <= D, d in [lo, hi]: compare with the
        # water-filling allocator.
        weights = np.array([1.0, 2.0, 4.0])
        deadline = 10.0
        lower = weights / 1.0
        upper = weights / 0.1
        reference = allocate_durations_with_bounds(weights, deadline, lower, upper)

        def objective(d):
            return float(np.sum(weights ** 3 / d ** 2))

        def gradient(d):
            return -2.0 * weights ** 3 / d ** 3

        result = minimize_projected_gradient(objective, gradient,
                                             np.clip(weights, lower, upper),
                                             lower, upper, budget=deadline,
                                             max_iter=5000, tol=1e-10)
        assert result.objective == pytest.approx(reference.energy, rel=1e-4)
