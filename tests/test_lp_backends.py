"""Cross-validation of the LP/MILP backends (scipy-HiGHS vs in-house)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import (
    LinearProgram,
    LPStatus,
    solve,
    solve_with_branch_and_bound,
    solve_with_scipy,
    solve_with_simplex,
)


def _diet_lp() -> LinearProgram:
    m = LinearProgram("diet")
    x = m.add_variable("x", lower=0.0)
    y = m.add_variable("y", lower=0.0)
    m.add_constraint(2 * x + y >= 8)
    m.add_constraint(x + 2 * y >= 6)
    m.set_objective(3 * x + 2 * y, "min")
    return m


class TestScipyBackend:
    def test_simple_lp(self):
        sol = solve_with_scipy(_diet_lp())
        assert sol.is_optimal
        # Optimum at the intersection (10/3, 4/3): 3*10/3 + 2*4/3 = 38/3.
        assert sol.objective == pytest.approx(38.0 / 3.0, rel=1e-6)

    def test_infeasible_detected(self):
        m = LinearProgram()
        x = m.add_variable("x", lower=0.0, upper=1.0)
        m.add_constraint(x >= 2)
        m.set_objective(x, "min")
        assert solve_with_scipy(m).status == LPStatus.INFEASIBLE

    def test_unbounded_detected(self):
        m = LinearProgram()
        x = m.add_variable("x", lower=0.0)
        m.set_objective(-1 * x, "min")
        status = solve_with_scipy(m).status
        assert status in (LPStatus.UNBOUNDED, LPStatus.ERROR)

    def test_maximisation_sign(self):
        m = LinearProgram()
        x = m.add_variable("x", lower=0.0, upper=3.0)
        m.set_objective(2 * x + 1, "max")
        sol = solve_with_scipy(m)
        assert sol.objective == pytest.approx(7.0)
        assert sol["x"] == pytest.approx(3.0)

    def test_milp(self):
        m = LinearProgram()
        x = m.add_variable("x", lower=0.0, upper=10.0, integer=True)
        m.add_constraint(2 * x <= 7)
        m.set_objective(x, "max")
        sol = solve_with_scipy(m)
        assert sol.objective == pytest.approx(3.0)


class TestSimplexBackend:
    def test_simple_lp_matches_scipy(self):
        model = _diet_lp()
        assert solve_with_simplex(model).objective == pytest.approx(
            solve_with_scipy(model).objective, rel=1e-7
        )

    def test_rejects_integer_models(self):
        m = LinearProgram()
        x = m.add_variable("x", integer=True)
        m.set_objective(x, "min")
        with pytest.raises(ValueError):
            solve_with_simplex(m)

    def test_infeasible(self):
        m = LinearProgram()
        x = m.add_variable("x", lower=0.0, upper=1.0)
        m.add_constraint(x >= 2)
        m.set_objective(x, "min")
        assert solve_with_simplex(m).status == LPStatus.INFEASIBLE

    def test_unbounded(self):
        m = LinearProgram()
        x = m.add_variable("x", lower=0.0)
        m.set_objective(-1 * x, "min")
        assert solve_with_simplex(m).status == LPStatus.UNBOUNDED

    def test_free_variable(self):
        m = LinearProgram()
        x = m.add_variable("x", lower=None)
        m.add_constraint(x >= -4)
        m.set_objective(x, "min")
        sol = solve_with_simplex(m)
        assert sol.objective == pytest.approx(-4.0)

    def test_upper_bounded_variable(self):
        m = LinearProgram()
        x = m.add_variable("x", lower=0.0, upper=2.5)
        m.set_objective(-1 * x, "min")
        sol = solve_with_simplex(m)
        assert sol.objective == pytest.approx(-2.5)

    def test_equality_constraints(self):
        m = LinearProgram()
        x = m.add_variable("x", lower=0.0)
        y = m.add_variable("y", lower=0.0)
        m.add_constraint(x + y == 4)
        m.add_constraint(x - y == 2)
        m.set_objective(x + 2 * y, "min")
        sol = solve_with_simplex(m)
        assert sol.values["x"] == pytest.approx(3.0)
        assert sol.values["y"] == pytest.approx(1.0)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_lps_agree_with_scipy(self, seed):
        rng = np.random.default_rng(seed)
        n_vars, n_cons = int(rng.integers(2, 5)), int(rng.integers(1, 5))
        m = LinearProgram()
        xs = [m.add_variable(f"x{i}", lower=0.0, upper=float(rng.uniform(1, 10)))
              for i in range(n_vars)]
        for _ in range(n_cons):
            coeffs = rng.uniform(-1, 2, size=n_vars)
            expr = sum((float(c) * x for c, x in zip(coeffs, xs)),
                       0.0 * xs[0])
            m.add_constraint(expr <= float(rng.uniform(1, 10)))
        cost = rng.uniform(-1, 3, size=n_vars)
        m.set_objective(sum((float(c) * x for c, x in zip(cost, xs)), 0.0 * xs[0]),
                        "min")
        scipy_sol = solve_with_scipy(m)
        simplex_sol = solve_with_simplex(m)
        assert scipy_sol.status == LPStatus.OPTIMAL
        assert simplex_sol.status == LPStatus.OPTIMAL
        assert simplex_sol.objective == pytest.approx(scipy_sol.objective,
                                                      rel=1e-6, abs=1e-6)


class TestBranchAndBound:
    def _knapsack(self, values, weights, capacity) -> LinearProgram:
        m = LinearProgram("knapsack")
        xs = [m.add_variable(f"x{i}", lower=0.0, upper=1.0, integer=True)
              for i in range(len(values))]
        m.add_constraint(
            sum((w * x for w, x in zip(weights, xs)), 0.0 * xs[0]) <= capacity
        )
        m.set_objective(sum((v * x for v, x in zip(values, xs)), 0.0 * xs[0]), "max")
        return m

    def test_knapsack_matches_scipy(self):
        model = self._knapsack([4, 3, 2, 5], [2, 3, 4, 5], 7)
        bnb = solve_with_branch_and_bound(model)
        assert bnb.objective == pytest.approx(solve_with_scipy(model).objective)

    def test_with_simplex_relaxation(self):
        model = self._knapsack([6, 5, 4], [3, 2, 4], 5)
        bnb = solve_with_branch_and_bound(model, lp_backend="simplex")
        assert bnb.objective == pytest.approx(11.0)

    def test_reports_node_statistics(self):
        model = self._knapsack([4, 3, 2, 5, 7, 1], [2, 3, 4, 5, 6, 1], 9)
        bnb = solve_with_branch_and_bound(model)
        assert bnb.iterations >= 1
        assert bnb.stats.nodes_explored == bnb.iterations

    def test_infeasible_milp(self):
        m = LinearProgram()
        x = m.add_variable("x", lower=0.0, upper=1.0, integer=True)
        m.add_constraint(x >= 2)
        m.set_objective(x, "min")
        assert solve_with_branch_and_bound(m).status == LPStatus.INFEASIBLE

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_knapsacks_agree_with_scipy(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 7))
        values = rng.integers(1, 10, size=n).tolist()
        weights = rng.integers(1, 8, size=n).tolist()
        capacity = float(rng.integers(5, 20))
        model = self._knapsack(values, weights, capacity)
        assert solve_with_branch_and_bound(model).objective == pytest.approx(
            solve_with_scipy(model).objective
        )

    def test_solve_dispatcher(self):
        model = _diet_lp()
        assert solve(model, backend="scipy").is_optimal
        assert solve(model, backend="simplex").is_optimal
        with pytest.raises(ValueError):
            solve(model, backend="bogus")
