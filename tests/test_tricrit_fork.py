"""Tests of the polynomial TRI-CRIT fork algorithm vs brute force (Section III)."""

from __future__ import annotations

import math

import pytest

from repro.continuous.tricrit_fork import (
    best_choice_for_budget,
    solve_tricrit_fork,
    solve_tricrit_fork_bruteforce,
)
from repro.core.problems import TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform


def fork_problem(source_weight, child_weights, slack, *, lambda0=1e-4) -> TriCritProblem:
    graph = generators.fork(source_weight, child_weights)
    model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=lambda0)
    platform = Platform(len(child_weights) + 1, ContinuousSpeeds(0.1, 1.0),
                        reliability_model=model)
    deadline = slack * graph.critical_path_weight()
    return TriCritProblem(Mapping.one_task_per_processor(graph), platform, deadline)


class TestBudgetChoice:
    @pytest.fixture
    def model(self):
        return ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-4)

    def test_tight_budget_forces_single_execution(self, model):
        choice = best_choice_for_budget(2.0, 2.1, model=model, fmin=0.1, fmax=1.0)
        assert not choice.reexecute
        assert choice.speed == pytest.approx(1.0)

    def test_loose_budget_prefers_reexecution(self, model):
        choice = best_choice_for_budget(2.0, 40.0, model=model, fmin=0.1, fmax=1.0)
        assert choice.reexecute
        assert choice.energy < 2.0  # cheaper than the single execution at frel=1

    def test_infeasible_budget(self, model):
        choice = best_choice_for_budget(2.0, 1.0, model=model, fmin=0.1, fmax=1.0)
        assert not choice.feasible
        assert choice.energy == math.inf

    def test_zero_weight_is_free(self, model):
        choice = best_choice_for_budget(0.0, 1.0, model=model, fmin=0.1, fmax=1.0)
        assert choice.feasible and choice.energy == 0.0

    def test_forced_decisions(self, model):
        forced_single = best_choice_for_budget(2.0, 40.0, model=model, fmin=0.1,
                                               fmax=1.0, force=False)
        forced_reexec = best_choice_for_budget(2.0, 40.0, model=model, fmin=0.1,
                                               fmax=1.0, force=True)
        assert not forced_single.reexecute
        assert forced_reexec.reexecute


class TestPolynomialAlgorithm:
    @pytest.mark.parametrize("n_children,slack,seed", [
        (2, 1.5, 0), (2, 3.0, 1), (3, 2.0, 2), (4, 2.5, 3), (5, 3.5, 4),
    ])
    def test_matches_bruteforce(self, n_children, slack, seed):
        weights = generators.random_weights(n_children + 1, seed=seed, low=1.0, high=4.0)
        problem = fork_problem(weights[0], list(weights[1:]), slack)
        poly = solve_tricrit_fork(problem)
        brute = solve_tricrit_fork_bruteforce(problem)
        assert poly.feasible and brute.feasible
        assert poly.energy == pytest.approx(brute.energy, rel=1e-4)

    def test_schedule_is_feasible_and_reliable(self):
        problem = fork_problem(2.0, [1.0, 3.0, 2.0], slack=2.5)
        result = solve_tricrit_fork(problem)
        report = problem.evaluate(result.require_schedule())
        assert report.feasible

    def test_tight_deadline_critical_tasks_not_reexecuted(self):
        # At slack 1.0 the source and the heaviest child saturate the deadline
        # at fmax, so neither can be re-executed; the light child may be.
        problem = fork_problem(2.0, [1.0, 3.0], slack=1.0)
        result = solve_tricrit_fork(problem)
        assert result.feasible
        reexecuted = set(result.metadata["reexecuted"])
        assert "T0" not in reexecuted
        assert "T2" not in reexecuted
        brute = solve_tricrit_fork_bruteforce(problem)
        assert result.energy == pytest.approx(brute.energy, rel=1e-4)

    def test_loose_deadline_reexecutes_children(self):
        problem = fork_problem(1.0, [2.0, 2.0], slack=4.0)
        result = solve_tricrit_fork(problem)
        assert len(result.metadata["reexecuted"]) >= 1
        no_reexec_energy = sum(w * 1.0 for w in (1.0, 2.0, 2.0))  # all at fmax
        assert result.energy < no_reexec_energy

    def test_infeasible_deadline(self):
        graph = generators.fork(5.0, [5.0])
        model = ReliabilityModel(fmin=0.1, fmax=1.0)
        platform = Platform(2, ContinuousSpeeds(0.1, 1.0), reliability_model=model)
        problem = TriCritProblem(Mapping.one_task_per_processor(graph), platform, 6.0)
        result = solve_tricrit_fork(problem)
        assert result.status == "infeasible"

    def test_rejects_non_fork_graphs(self, tricrit_chain_problem):
        with pytest.raises(ValueError):
            solve_tricrit_fork(tricrit_chain_problem)

    def test_bruteforce_rejects_large_instances(self):
        problem = fork_problem(1.0, [1.0] * 20, slack=2.0)
        with pytest.raises(ValueError):
            solve_tricrit_fork_bruteforce(problem, max_tasks=10)

    def test_bruteforce_configuration_count(self):
        problem = fork_problem(1.0, [1.0, 1.0], slack=2.0)
        brute = solve_tricrit_fork_bruteforce(problem)
        assert brute.metadata["configurations"] == 2 ** 3

    def test_parallel_children_preferred_for_reexecution(self):
        """The paper's insight: parallelizable tasks (children) are the ones
        picked for re-execution/deceleration rather than the serial source."""
        problem = fork_problem(3.0, [3.0, 3.0, 3.0, 3.0], slack=2.2)
        result = solve_tricrit_fork(problem)
        reexecuted = set(result.metadata["reexecuted"])
        if reexecuted:
            source = problem.graph.is_fork()[1]
            assert str(source) not in reexecuted
