"""Tests of the public API surface: exports, docstrings and version metadata.

A downstream user relies on the names re-exported by the package ``__init__``
modules; these tests pin that surface so refactors cannot silently drop or
rename public symbols, and check that every public callable carries a
docstring (the documentation deliverable).
"""

from __future__ import annotations

import importlib
import inspect
import subprocess
import sys

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.dag",
    "repro.platform",
    "repro.lp",
    "repro.optimize",
    "repro.continuous",
    "repro.discrete",
    "repro.complexity",
    "repro.simulation",
    "repro.baselines",
    "repro.experiments",
    "repro.solvers",
    "repro.campaign",
    "repro.api",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_reexports(self):
        for name in ("TaskGraph", "Platform", "Mapping", "Schedule",
                     "BiCritProblem", "TriCritProblem", "EnergyModel",
                     "ReliabilityModel", "ContinuousSpeeds", "DiscreteSpeeds",
                     "VddHoppingSpeeds", "IncrementalSpeeds", "SolveResult"):
            assert hasattr(repro, name), f"missing top-level export {name}"

    def test_all_subpackages_importable(self):
        for name in SUBPACKAGES:
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} has no module docstring"

    def test_all_lists_are_consistent(self):
        for name in SUBPACKAGES + ["repro"]:
            module = importlib.import_module(name)
            exported = getattr(module, "__all__", [])
            for symbol in exported:
                assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    def test_solver_errors_reexported_at_top_level(self):
        # The API error mapping has one canonical import for both.
        from repro.solvers import InadmissibleSolverError, NoAdmissibleSolverError

        assert repro.InadmissibleSolverError is InadmissibleSolverError
        assert repro.NoAdmissibleSolverError is NoAdmissibleSolverError

    def test_attribution_names_source_paper(self):
        assert "conf_ipps_Aupy12" in repro.__doc__
        assert "IPDPSW" not in repro.__doc__


class TestLazyImport:
    """`import repro` is PEP 562 lazy: subpackages load on first touch."""

    def test_bare_import_pulls_no_heavy_subpackages(self):
        # A fresh interpreter, so this test is independent of import order
        # in the test session.
        code = (
            "import sys\n"
            "import repro\n"
            "heavy = [m for m in ('repro.campaign', 'repro.experiments',\n"
            "                     'repro.simulation', 'repro.solvers',\n"
            "                     'repro.api', 'numpy')\n"
            "         if m in sys.modules]\n"
            "assert not heavy, f'eagerly imported: {heavy}'\n"
            "assert repro.__version__\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_lazy_attribute_access_loads_subpackage(self):
        code = (
            "import sys\n"
            "import repro\n"
            "assert 'repro.campaign' not in sys.modules\n"
            "assert repro.campaign.ResultCache is not None\n"
            "assert 'repro.campaign' in sys.modules\n"
            "assert repro.TaskGraph.__name__ == 'TaskGraph'\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_symbol  # noqa: B018

    def test_dir_covers_all(self):
        assert set(repro.__all__) <= set(dir(repro))


class TestDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_callables_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{module_name}.{symbol} is public but has no docstring"
                )

    def test_key_algorithms_documented(self):
        from repro.continuous import fork_bicrit, solve_bicrit_continuous
        from repro.discrete import solve_bicrit_vdd_lp

        for func in (fork_bicrit, solve_bicrit_continuous, solve_bicrit_vdd_lp):
            assert len(func.__doc__) > 80


class TestSolverRegistries:
    def test_mapping_heuristics_registry_callable(self):
        from repro.dag import generators
        from repro.platform import MAPPING_HEURISTICS

        graph = generators.random_chain(3, seed=0)
        for name, heuristic in MAPPING_HEURISTICS.items():
            result = heuristic(graph, 2)
            assert result.makespan > 0, name

    def test_tricrit_heuristics_registry_exposed(self):
        from repro.continuous import TRICRIT_HEURISTICS

        assert callable(TRICRIT_HEURISTICS["best_of"])

    def test_baseline_registry_exposed(self):
        from repro.baselines import BASELINES

        assert set(BASELINES) == {"no_dvfs", "uniform_slowdown", "local_slack_reclaiming"}
