"""Tests of the public API surface: exports, docstrings and version metadata.

A downstream user relies on the names re-exported by the package ``__init__``
modules; these tests pin that surface so refactors cannot silently drop or
rename public symbols, and check that every public callable carries a
docstring (the documentation deliverable).
"""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.dag",
    "repro.platform",
    "repro.lp",
    "repro.optimize",
    "repro.continuous",
    "repro.discrete",
    "repro.complexity",
    "repro.simulation",
    "repro.baselines",
    "repro.experiments",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_reexports(self):
        for name in ("TaskGraph", "Platform", "Mapping", "Schedule",
                     "BiCritProblem", "TriCritProblem", "EnergyModel",
                     "ReliabilityModel", "ContinuousSpeeds", "DiscreteSpeeds",
                     "VddHoppingSpeeds", "IncrementalSpeeds", "SolveResult"):
            assert hasattr(repro, name), f"missing top-level export {name}"

    def test_all_subpackages_importable(self):
        for name in SUBPACKAGES:
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} has no module docstring"

    def test_all_lists_are_consistent(self):
        for name in SUBPACKAGES + ["repro"]:
            module = importlib.import_module(name)
            exported = getattr(module, "__all__", [])
            for symbol in exported:
                assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


class TestDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_callables_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{module_name}.{symbol} is public but has no docstring"
                )

    def test_key_algorithms_documented(self):
        from repro.continuous import fork_bicrit, solve_bicrit_continuous
        from repro.discrete import solve_bicrit_vdd_lp

        for func in (fork_bicrit, solve_bicrit_continuous, solve_bicrit_vdd_lp):
            assert len(func.__doc__) > 80


class TestSolverRegistries:
    def test_mapping_heuristics_registry_callable(self):
        from repro.dag import generators
        from repro.platform import MAPPING_HEURISTICS

        graph = generators.random_chain(3, seed=0)
        for name, heuristic in MAPPING_HEURISTICS.items():
            result = heuristic(graph, 2)
            assert result.makespan > 0, name

    def test_tricrit_heuristics_registry_exposed(self):
        from repro.continuous import TRICRIT_HEURISTICS

        assert callable(TRICRIT_HEURISTICS["best_of"])

    def test_baseline_registry_exposed(self):
        from repro.baselines import BASELINES

        assert set(BASELINES) == {"no_dvfs", "uniform_slowdown", "local_slack_reclaiming"}
